"""Fork workers: snapshot-file attach versus CoW inheritance."""

import sys

import pytest

from repro.server import ServiceConfig
from repro.server.metrics import ServiceMetrics

pytestmark = pytest.mark.skipif(
    sys.platform.startswith("win"), reason="fork start method required"
)


@pytest.fixture(scope="module")
def warehouse():
    from repro.synth import LandscapeConfig, generate_landscape

    land = generate_landscape(LandscapeConfig.tiny(seed=2009))
    land.warehouse.build_entailment_index()
    return land.warehouse


PROBE = "SELECT ?s ?name WHERE { ?s dm:hasName ?name }"


def test_config_accepts_snapshot_dir(tmp_path):
    config = ServiceConfig(snapshot_dir=str(tmp_path))
    assert config.snapshot_dir == str(tmp_path)
    assert ServiceConfig().snapshot_dir is None


def test_fork_worker_attaches_published_snapshot(warehouse, tmp_path):
    config = ServiceConfig(
        max_workers=1, worker_mode="fork", snapshot_dir=str(tmp_path / "snaps")
    )
    with warehouse.serve(config) as service:
        rows = service.query(PROBE)
        snap = service.metrics_snapshot()
    assert len(rows) > 0
    assert snap["fork_workers"].get("attach", 0) >= 1
    assert snap["fork_workers"].get("cow", 0) == 0
    published = list((tmp_path / "snaps").glob("snapshot-*.mdws"))
    assert published, "publication wrote no snapshot file"


def test_fork_worker_falls_back_to_cow(warehouse):
    config = ServiceConfig(max_workers=1, worker_mode="fork")
    with warehouse.serve(config) as service:
        rows = service.query(PROBE)
        snap = service.metrics_snapshot()
    assert len(rows) > 0
    assert snap["fork_workers"].get("cow", 0) >= 1
    assert snap["fork_workers"].get("attach", 0) == 0


def test_attach_and_cow_answers_agree(warehouse, tmp_path):
    def answers(config):
        with warehouse.serve(config) as service:
            return sorted(
                str(b) for b in service.query(PROBE).iter_bindings()
            )

    thread = answers(ServiceConfig(max_workers=1))
    attach = answers(
        ServiceConfig(
            max_workers=1, worker_mode="fork", snapshot_dir=str(tmp_path / "s")
        )
    )
    cow = answers(ServiceConfig(max_workers=1, worker_mode="fork"))
    assert thread == attach == cow


def test_metrics_record_fork_worker_modes():
    metrics = ServiceMetrics(name="test-fork")
    metrics.on_fork_worker("attach")
    metrics.on_fork_worker("attach")
    metrics.on_fork_worker("cow")
    snap = metrics.snapshot()
    assert snap["fork_workers"] == {"attach": 2, "cow": 1}
