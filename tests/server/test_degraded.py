"""Degraded-mode serving: circuit breakers, health, stale-index flagging."""

import time

import pytest

from repro.resilience import FaultInjector
from repro.resilience.faults import fault_scope
from repro.server import CircuitOpen, QueryService, ServiceConfig
from repro.synth import LandscapeConfig, generate_landscape


@pytest.fixture()
def warehouse():
    mdw = generate_landscape(LandscapeConfig.tiny(seed=11)).warehouse
    mdw.build_entailment_index("OWLPRIME")
    return mdw


def service_of(warehouse, **overrides):
    defaults = dict(max_workers=2, max_queue=8)
    defaults.update(overrides)
    return QueryService(warehouse, ServiceConfig(**defaults))


class TestHealth:
    def test_healthy_service_reports_ok(self, warehouse):
        with service_of(warehouse) as service:
            health = service.health()
            assert health["status"] == "healthy"
            assert health["stale_indexes"] == []
            assert set(health["endpoints"]) == {
                "query", "sql", "search", "lineage", "frontier",
                "lookup", "update",
            }
            assert all(
                doc["breaker"]["state"] == "closed"
                for doc in health["endpoints"].values()
            )
            assert health["generation"] == service.snapshots.generation

    def test_closed_service_reports_closed(self, warehouse):
        service = service_of(warehouse)
        service.close()
        assert service.health()["status"] == "closed"

    def test_stale_index_degrades_health(self, warehouse):
        injector = FaultInjector()
        injector.arm("index.staleness", "corrupt", value=True)
        with service_of(warehouse) as service:
            with fault_scope(injector):
                health = service.health()
            assert health["status"] == "degraded"
            assert health["stale_indexes"] == ["OWLPRIME"]

    def test_open_breaker_degrades_health(self, warehouse):
        with service_of(warehouse, breaker_threshold=1) as service:
            service.breaker("search").on_failure()  # trips at threshold 1
            health = service.health()
            assert health["status"] == "degraded"
            assert health["endpoints"]["search"]["breaker"]["state"] == "open"


class TestDegradedResults:
    def test_search_flagged_when_indexes_stale(self, warehouse):
        injector = FaultInjector()
        injector.arm("index.staleness", "corrupt", value=True)
        with service_of(warehouse) as service:
            assert service.search("a", regex=True).degraded is False
            with fault_scope(injector):
                results = service.search("a", regex=True)
            assert results.degraded is True
            assert service.metrics_snapshot()["degraded_responses"] >= 1

    def test_lineage_flagged_when_indexes_stale(self, warehouse):
        from repro.core import TERMS

        start = next(
            iter(warehouse.graph.triples(None, TERMS.is_mapped_to, None))
        ).subject
        injector = FaultInjector()
        injector.arm("index.staleness", "corrupt", value=True)
        with service_of(warehouse) as service:
            with fault_scope(injector):
                trace = service.lineage(start)
            assert trace.degraded is True

    def test_query_results_never_carry_the_flag(self, warehouse):
        # SPARQL answers are exact over whatever view was requested;
        # only the index-dependent services degrade
        injector = FaultInjector()
        injector.arm("index.staleness", "corrupt", value=True)
        with service_of(warehouse) as service:
            with fault_scope(injector):
                rows = service.query("SELECT ?s WHERE { ?s dm:hasName ?n }")
            assert not hasattr(rows, "degraded")


class TestCircuitBreaker:
    def test_fault_storm_trips_the_breaker(self, warehouse):
        injector = FaultInjector()
        injector.arm("worker.execute", "raise")
        with service_of(warehouse, breaker_threshold=3, breaker_cooldown=60.0) as service:
            with fault_scope(injector):
                for _ in range(3):
                    ticket = service.submit("search", term="a", regex=True)
                    with pytest.raises(Exception):
                        ticket.result(timeout=5)
                # breaker now open: submission is shed instantly
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    try:
                        service.submit("search", term="a", regex=True)
                    except CircuitOpen as exc:
                        assert exc.kind == "search"
                        assert exc.retry_after > 0
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("breaker never opened")
            assert service.metrics_snapshot()["breaker_shed"] >= 1
            assert service.health()["endpoints"]["search"]["breaker"]["state"] == "open"

    def test_other_endpoints_unaffected_by_one_open_breaker(self, warehouse):
        with service_of(warehouse, breaker_threshold=1) as service:
            service.breaker("search").on_failure()
            with pytest.raises(CircuitOpen):
                service.submit("search", term="a")
            rows = service.query("SELECT ?s WHERE { ?s dm:hasName ?n }")
            assert len(rows) > 0

    def test_half_open_probe_recovers_the_endpoint(self, warehouse):
        injector = FaultInjector()
        injector.arm("worker.execute", "raise", times=2)
        with service_of(
            warehouse, max_workers=1, breaker_threshold=2, breaker_cooldown=0.05
        ) as service:
            with fault_scope(injector):
                for _ in range(2):
                    ticket = service.submit("search", term="a", regex=True)
                    with pytest.raises(Exception):
                        ticket.result(timeout=5)
            # wait out the cooldown; the fault budget is spent, so the
            # half-open probe succeeds and closes the circuit
            time.sleep(0.06)
            results = service.search("a", regex=True)
            assert len(results) >= 0
            assert service.health()["endpoints"]["search"]["breaker"]["state"] == "closed"

    def test_user_errors_do_not_trip_the_breaker(self, warehouse):
        with service_of(warehouse, breaker_threshold=2) as service:
            for _ in range(5):
                with pytest.raises(Exception):
                    service.lineage("no-such-item-anywhere")
            assert service.health()["endpoints"]["lineage"]["breaker"]["state"] == "closed"

    def test_update_breaker_guards_the_write_path(self, warehouse):
        with service_of(warehouse, breaker_threshold=1) as service:
            service.breaker("update").on_failure()
            with pytest.raises(CircuitOpen) as err:
                service.update("DELETE WHERE { ?s ?p ?o }")
            assert err.value.kind == "update"

    def test_operator_reset_reopens_the_endpoint(self, warehouse):
        with service_of(warehouse, breaker_threshold=1) as service:
            service.breaker("search").on_failure()
            with pytest.raises(CircuitOpen):
                service.submit("search", term="a")
            service.breaker("search").reset()
            assert len(service.search("a", regex=True)) >= 0


class TestConfigValidation:
    def test_breaker_knobs_validated(self, warehouse):
        with pytest.raises(ValueError):
            ServiceConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_cooldown=0.0)
