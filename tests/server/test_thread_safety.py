"""Multi-thread hammering of the shared caches and the audit journal.

Satellite coverage for the concurrency work: the plan cache, the
module-level regex/pattern caches, and the audit ring buffer must stay
consistent when hit from many threads at once.
"""

import threading

import pytest

from repro.core.audit import AuditJournal
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.plancache import PlanCache
from repro.synth import LandscapeConfig, generate_landscape

THREADS = 8
ROUNDS = 60


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` in ``threads`` threads; re-raise errors."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
    assert not errors, errors


@pytest.fixture(scope="module")
def warehouse():
    return generate_landscape(LandscapeConfig.tiny(seed=31)).warehouse


class TestPlanCache:
    QUERIES = [
        "SELECT ?s WHERE { ?s dm:hasName ?n }",
        "SELECT ?s ?n WHERE { ?s dm:hasName ?n } ORDER BY ?n",
        "SELECT ?a WHERE { ?a dt:isMappedTo ?b }",
        "ASK { ?s dm:hasName ?n }",
    ]

    def test_shared_cache_under_contention(self, warehouse):
        cache = PlanCache(maxsize=8)
        nsm = warehouse.namespaces
        view = warehouse.view()

        def worker(index):
            for round_number in range(ROUNDS):
                text = self.QUERIES[(index + round_number) % len(self.QUERIES)]
                prepared = cache.prepare(view, text, nsm=nsm)
                assert prepared.query is not None
                assert cache.parse(text, nsm=nsm) is not None

        hammer(worker)
        stats = cache.stats()
        total = THREADS * ROUNDS
        # every call was either a hit or a miss — no lost updates;
        # prepare() only consults parse() on a plan miss
        assert stats["plan_hits"] + stats["plan_misses"] == total
        assert (
            stats["parse_hits"] + stats["parse_misses"]
            == total + stats["plan_misses"]
        )
        assert 0.0 <= cache.hit_rate() <= 1.0

    def test_eviction_under_contention_keeps_bound(self, warehouse):
        cache = PlanCache(maxsize=4)
        nsm = warehouse.namespaces

        def worker(index):
            for round_number in range(ROUNDS):
                text = f"SELECT ?s WHERE {{ ?s dm:hasName \"t{index}_{round_number}\" }}"
                assert cache.parse(text, nsm=nsm) is not None

        hammer(worker)
        assert len(cache) <= 4

    def test_concurrent_results_identical(self, warehouse):
        """Queries through the shared cache return the same rows as a
        cold, single-threaded evaluation."""
        expected = sorted(
            tuple(sorted((k, v.n3()) for k, v in row.asdict().items()))
            for row in warehouse.query(self.QUERIES[0])
        )
        observed = []
        lock = threading.Lock()

        def worker(index):
            for _ in range(10):
                rows = warehouse.query(self.QUERIES[0])
                result = sorted(
                    tuple(sorted((k, v.n3()) for k, v in row.asdict().items()))
                    for row in rows
                )
                with lock:
                    observed.append(result)

        hammer(worker)
        assert all(result == expected for result in observed)


class TestRegexCaches:
    def test_expression_regex_cache(self):
        from repro.sparql.expressions import compile_regex

        def worker(index):
            for round_number in range(ROUNDS * 4):
                pattern = f"item_{(index * 31 + round_number) % 600}"
                compiled = compile_regex(pattern, "i")
                assert compiled.search(pattern.upper()) is not None

        hammer(worker)

    def test_search_pattern_cache(self):
        from repro.services.search import _compiled_pattern

        def worker(index):
            for round_number in range(ROUNDS * 4):
                pattern = f"name_{(index * 17 + round_number) % 600}"
                compiled = _compiled_pattern(pattern)
                assert compiled.search(f"xx{pattern}yy") is not None

        hammer(worker)

    def test_search_thesaurus_single_instance(self, warehouse):
        from repro.services.search import SearchService

        service = SearchService(warehouse)
        seen = []
        lock = threading.Lock()

        def worker(index):
            thesaurus = service.thesaurus
            with lock:
                seen.append(thesaurus)

        hammer(worker)
        assert len({id(t) for t in seen}) == 1  # built exactly once


class TestAuditJournal:
    def _triple(self, index, round_number):
        return Triple(
            IRI(f"urn:item:{index}"),
            IRI("urn:p:changed"),
            Literal(f"v{round_number}"),
        )

    def test_concurrent_appends_no_lost_or_duplicate_sequences(self):
        graph = Graph(name="audit-hammer")
        journal = AuditJournal(graph, capacity=THREADS * ROUNDS + 10)

        def worker(index):
            for round_number in range(ROUNDS):
                action = "add" if round_number % 2 == 0 else "remove"
                journal._on_change(action, self._triple(index, round_number))

        hammer(worker)
        total = THREADS * ROUNDS
        assert journal.total_changes == total
        entries = journal.entries()
        assert len(entries) == total
        sequences = [entry.sequence for entry in entries]
        assert sorted(sequences) == list(range(1, total + 1))  # dense, unique
        summary = journal.epoch_summary()
        assert summary["initial"]["add"] + summary["initial"]["remove"] == total

    def test_ring_eviction_under_contention(self):
        graph = Graph(name="audit-ring")
        journal = AuditJournal(graph, capacity=50)

        def worker(index):
            for round_number in range(ROUNDS):
                journal._on_change("add", self._triple(index, round_number))

        hammer(worker)
        assert len(journal) == 50  # bounded
        assert journal.total_changes == THREADS * ROUNDS  # aggregates complete
        retained = journal.entries()
        # the ring retains the *latest* entries, contiguously
        assert [e.sequence for e in retained] == list(
            range(THREADS * ROUNDS - 49, THREADS * ROUNDS + 1)
        )

    def test_request_attribution_filter(self):
        graph = Graph(name="audit-request")
        journal = AuditJournal(graph, capacity=100)
        with journal.request_context("w-42"):
            journal._on_change("add", self._triple(1, 1))
        journal._on_change("add", self._triple(2, 2))
        attributed = journal.entries(request_id="w-42")
        assert len(attributed) == 1
        assert attributed[0].request_id == "w-42"
        assert journal.entries()[1].request_id is None
