"""The sharded scatter-gather gateway.

Cross-shard lineage frontier exchange (multi-hop chains, cycles that
span shards, deadline expiry mid-round), bit-identity of search and
lineage against the single-node services, degraded partial answers when
a shard dies, and the replace/rebalance operational paths. Unit tests
run the shards in thread mode (fork-mode behaviour — supervision,
SIGKILL recovery — is the chaos harness's job).
"""

import time

import pytest

from repro.core import MetadataWarehouse, TERMS
from repro.etl import SynonymThesaurus
from repro.obs import parse_exposition, render_prometheus
from repro.rdf.terms import Literal
from repro.server import (
    DeadlineExceeded,
    QueryServiceError,
    ServiceClosed,
    ShardedConfig,
    ShardedQueryService,
)
from repro.server.service import dispatch
from repro.storage import shard_of
from repro.synth import make_scatter_workload


def thread_service(mdw, **overrides):
    base = dict(
        n_shards=2,
        workers_per_shard=1,
        worker_mode="thread",
        supervise=False,
    )
    base.update(overrides)
    return ShardedQueryService(mdw, ShardedConfig(**base))


def mint_instances(mdw, cls, shards_wanted, n_shards):
    """Instances whose routing hash lands on the requested shards.

    Probes candidate names with the same :func:`shard_of` hash the
    partitioner uses, so a test can place consecutive chain links on
    different shards deterministically.
    """
    items, names = [], []
    k = 0
    for want in shards_wanted:
        while True:
            name = f"n{k:03d}"
            k += 1
            if shard_of(mdw.facts.namespace.term(name), n_shards) == want:
                items.append(mdw.facts.add_instance(name, cls))
                names.append(name)
                break
    return items, names


@pytest.fixture
def chain():
    """a -> b -> c -> d -> e alternating between the two shards."""
    mdw = MetadataWarehouse()
    node = mdw.schema.declare_class("Node")
    items, names = mint_instances(mdw, node, [0, 1, 0, 1, 0], 2)
    for i, (a, b) in enumerate(zip(items, items[1:])):
        mdw.facts.add_mapping(a, b, rule=f"rule-{i}", condition=f"cond-{i}")
    return mdw, items, names


def assert_same_trace(got, want):
    """Bit-identity: same edges in the same order, same depths."""
    assert got.start == want.start
    assert got.direction == want.direction
    assert got.edges == want.edges
    assert got.depth == want.depth


class TestFrontierExchange:
    def test_chain_actually_crosses_shards(self, chain):
        _, items, _ = chain
        placements = [shard_of(t, 2) for t in items]
        assert placements == [0, 1, 0, 1, 0]

    def test_downstream_bit_identical(self, chain):
        mdw, items, _ = chain
        with thread_service(mdw) as svc:
            got = svc.lineage(items[0], direction="downstream")
        want = mdw.lineage.trace(items[0], "downstream")
        assert_same_trace(got, want)
        assert not got.degraded
        # rule/condition meta-data crossed the shard boundary intact
        assert {e.rule for e in got.edges} == {f"rule-{i}" for i in range(4)}

    def test_upstream_bit_identical(self, chain):
        mdw, items, _ = chain
        with thread_service(mdw) as svc:
            got = svc.lineage(items[-1], direction="upstream")
        assert_same_trace(got, mdw.lineage.trace(items[-1], "upstream"))

    def test_max_depth_cuts_identically(self, chain):
        mdw, items, _ = chain
        with thread_service(mdw) as svc:
            got = svc.lineage(items[0], direction="downstream", max_depth=2)
        want = mdw.lineage.trace(items[0], "downstream", max_depth=2)
        assert_same_trace(got, want)
        assert len(got.edges) == 2

    def test_lineage_by_name_resolves_across_shards(self, chain):
        mdw, items, names = chain
        with thread_service(mdw) as svc:
            got = svc.execute("lineage", item=names[1], direction="downstream")
        want = dispatch(
            mdw, "lineage", {"item": names[1], "direction": "downstream"}
        )
        assert_same_trace(got, want)

    def test_unknown_name_is_an_error_when_healthy(self, chain):
        mdw, _, _ = chain
        with thread_service(mdw) as svc:
            with pytest.raises(QueryServiceError, match="no item named"):
                svc.lineage("no_such_item")

    def test_cycle_spanning_shards_terminates(self):
        mdw = MetadataWarehouse()
        node = mdw.schema.declare_class("Node")
        (a, b, c), _ = mint_instances(mdw, node, [0, 1, 0], 2)
        mdw.facts.add_mapping(a, b, rule="fwd")
        mdw.facts.add_mapping(b, a, rule="back")  # a <-> b crosses shards
        mdw.facts.add_mapping(b, c, rule="out")
        with thread_service(mdw) as svc:
            for direction in ("downstream", "upstream"):
                got = svc.lineage(a, direction=direction)
                assert_same_trace(got, mdw.lineage.trace(a, direction))
                assert not got.degraded

    def test_deadline_expiry_mid_round_is_typed(self, chain):
        mdw, items, _ = chain
        with thread_service(mdw) as svc:
            # first make sure the slow-shard wrapper is not the only
            # reason the trace completes
            baseline = svc.lineage(items[-1], direction="upstream")
            assert len(baseline.edges) == 4
            slow = svc.shard_service(0)
            original = slow.submit

            def delayed_submit(kind, **payload):
                time.sleep(0.06)
                return original(kind, **payload)

            slow.submit = delayed_submit
            try:
                # upstream scatters to both shards every round; the slow
                # shard burns ~0.06s per round against a 0.1s budget, so
                # the deadline expires after the first round — inside
                # the frontier loop, not at admission
                with pytest.raises(DeadlineExceeded):
                    svc.lineage(items[-1], direction="upstream", timeout=0.1)
            finally:
                slow.submit = original

    def test_round_bound_cuts_short_and_degrades(self, chain):
        mdw, items, _ = chain
        with thread_service(mdw, max_rounds=2) as svc:
            got = svc.lineage(items[0], direction="downstream")
        assert got.degraded
        assert len(got.edges) == 2  # two rounds of a four-hop chain


@pytest.fixture
def landscape():
    """A richer warehouse: shared name fragments and a thesaurus."""
    mdw = MetadataWarehouse()
    column = mdw.schema.declare_class("Column")
    table = mdw.schema.declare_class("Table")
    for k in range(8):
        mdw.facts.add_instance(f"customer_{k}", column)
        mdw.facts.add_instance(f"client_{k}", column)
        mdw.facts.add_instance(f"trade_{k}", table)
    items = [
        mdw.facts.add_instance(f"link_{k}", column) for k in range(6)
    ]
    for a, b in zip(items, items[1:]):
        mdw.facts.add_mapping(a, b, rule="copy")
    thesaurus = SynonymThesaurus()
    thesaurus.add_synonym("customer", "client")
    thesaurus.materialize(mdw.graph)
    return mdw


def canonical(kind, result):
    if kind == "search":
        return [(h.instance, h.name, h.all_classes) for h in result.hits]
    return [(e.source, e.target, e.rule, e.condition) for e in result.edges]


class TestSearchAndLookup:
    def test_search_merge_bit_identical(self, landscape):
        want = dispatch(landscape, "search", {"term": "customer"})
        with thread_service(landscape, n_shards=3) as svc:
            got = svc.search("customer")
        assert canonical("search", got) == canonical("search", want)
        assert got.expanded_terms == want.expanded_terms
        assert got.homonym_warnings == want.homonym_warnings
        assert got.groups() == want.groups()
        assert not got.degraded

    def test_synonym_expansion_merges(self, landscape):
        want = dispatch(
            landscape, "search", {"term": "customer", "expand_synonyms": True}
        )
        with thread_service(landscape, n_shards=3) as svc:
            got = svc.search("customer", expand_synonyms=True)
        assert canonical("search", got) == canonical("search", want)
        assert got.expanded_terms == ["customer", "client"]

    def test_lookup_routes_to_matches(self, landscape):
        want = dispatch(landscape, "lookup", {"name": "trade_3"})
        with thread_service(landscape, n_shards=3) as svc:
            assert svc.execute("lookup", name="trade_3") == want

    def test_workload_bit_identical_at_every_scale(self, landscape):
        """The acceptance-criterion identity: 1, 2 and 3 shards answer a
        mixed search/lineage stream exactly like the single-node
        services."""
        ops = make_scatter_workload(landscape, n_ops=20, seed=7)
        want = [
            canonical(op.kind, dispatch(landscape, op.kind, dict(op.payload)))
            for op in ops
        ]
        for n in (1, 2, 3):
            with thread_service(landscape, n_shards=n) as svc:
                got = [
                    canonical(op.kind, svc.execute(op.kind, **op.payload))
                    for op in ops
                ]
            assert got == want, f"divergence at n_shards={n}"

    def test_non_gateway_kind_rejected(self, landscape):
        with thread_service(landscape) as svc:
            with pytest.raises(QueryServiceError, match="cannot route"):
                svc.execute("query", text="SELECT ?s WHERE { ?s ?p ?o }")

    def test_closed_gateway_raises(self, landscape):
        svc = thread_service(landscape)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.search("customer")


class TestDegradedMode:
    def test_dead_shard_degrades_never_errors(self, landscape):
        with thread_service(landscape, shard_breaker_threshold=2) as svc:
            want = dispatch(landscape, "search", {"term": "customer"})
            svc.shard_service(0).close()
            first = svc.search("customer")
            assert first.degraded
            assert len(first.hits) < len(want.hits)
            second = svc.search("customer")  # second failure trips it
            assert second.degraded
            assert svc.shard_breaker(0).snapshot()["state"] == "open"
            # breaker open: the shard is skipped outright, still no error
            third = svc.search("customer")
            assert third.degraded
            assert canonical("search", third) == canonical("search", second)

    def test_lineage_to_dead_owner_is_empty_degraded(self, chain):
        mdw, items, names = chain
        owner = shard_of(items[0], 2)
        with thread_service(mdw, shard_breaker_threshold=2) as svc:
            svc.shard_service(owner).close()
            got = svc.lineage(names[0], direction="downstream")
        assert got.degraded
        assert got.edges == []
        assert got.start == Literal(names[0])

    def test_health_aggregates_worst_status(self, landscape):
        with thread_service(landscape, shard_breaker_threshold=1) as svc:
            assert svc.health()["status"] == "healthy"
            svc.shard_service(1).close()
            svc.search("customer")  # one failure opens the breaker
            health = svc.health()
        assert health["status"] == "degraded"
        assert health["n_shards"] == 2
        assert health["shards"]["1"]["gateway_breaker"]["state"] == "open"
        assert health["shards"]["0"]["gateway_breaker"]["state"] == "closed"

    def test_health_schema_is_stable(self, landscape):
        with thread_service(landscape) as svc:
            doc = svc.health()["shards"]["0"]
        assert {
            "status",
            "shard",
            "generation",
            "queue_depth",
            "workers",
            "endpoints",
            "stale_indexes",
            "supervisor",
            "gateway_breaker",
        } <= set(doc)
        assert doc["shard"] == "0"
        assert {"configured", "mode", "supervised", "alive_children"} <= set(
            doc["workers"]
        )
        assert "breaker" in doc["endpoints"]["search"]


class TestOperations:
    def test_replace_shard_restores_full_answers(self, landscape):
        want = dispatch(landscape, "search", {"term": "customer"})
        with thread_service(landscape, shard_breaker_threshold=1) as svc:
            svc.shard_service(0).close()
            svc.search("customer")  # trips the breaker
            assert svc.shard_breaker(0).snapshot()["state"] == "open"
            svc.replace_shard(0)
            assert svc.shard_breaker(0).snapshot()["state"] == "closed"
            got = svc.search("customer")
            health = svc.health()
        assert not got.degraded
        assert canonical("search", got) == canonical("search", want)
        assert health["status"] == "healthy"

    def test_rebalance_replaces_only_changed_shards(self, landscape):
        with thread_service(landscape) as svc:
            column = landscape.schema.declare_class("Column")
            fresh = landscape.facts.add_instance("fresh_column", column)
            outcome = svc.rebalance(landscape.store)
            assert outcome["changed"] == [shard_of(fresh, 2)]
            assert len(outcome["changed"]) + len(outcome["unchanged"]) == 2
            assert svc.execute("lookup", name="fresh_column") == [fresh]

    def test_owner_of_matches_partitioner(self, landscape):
        with thread_service(landscape, n_shards=3) as svc:
            term = landscape.facts.namespace.term("trade_0")
            assert svc.owner_of(term) == shard_of(term, 3)


class TestShardMetricLabels:
    def test_shard_labels_round_trip_through_exposition(self, landscape):
        with thread_service(landscape, name="shard-label-test") as svc:
            svc.search("customer")
            svc.lineage("link_0", direction="downstream")
            families = parse_exposition(render_prometheus())
        requests = [
            labels
            for _, labels, value in families["mdw_service_requests_total"]["samples"]
            if labels["service"].startswith("shard-label-test") and value > 0
        ]
        assert requests
        assert {labels["shard"] for labels in requests} == {"0", "1", "gateway"}
        for labels in requests:
            if labels["shard"] == "gateway":
                assert labels["service"] == "shard-label-test"
            else:
                assert (
                    labels["service"]
                    == f"shard-label-test-shard{labels['shard']}"
                )
        breaker_labels = [
            labels
            for _, labels, _ in families["mdw_breaker_state"]["samples"]
            if labels["service"].startswith("shard-label-test")
        ]
        assert breaker_labels
        assert {labels["shard"] for labels in breaker_labels} == {"0", "1"}
