"""Snapshot isolation: readers vs. concurrent writes.

The acceptance property of the serving tier: a reader pinned to a
snapshot gets **bit-identical** results to a fresh single-threaded run
over the same state, no matter how many writes land while it reads.
"""

import threading

import pytest

from repro.server import SnapshotManager
from repro.synth import LandscapeConfig, generate_landscape

NAMES_QUERY = "SELECT ?s ?n WHERE { ?s dm:hasName ?n } ORDER BY ?s ?n"

PREFIXES = (
    "PREFIX cs: <http://www.credit-suisse.com/dwh/> "
    "PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#> "
)


def canonical(rows):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in row.asdict().items())) for row in rows
    )


def insert_item(number: int) -> str:
    return (
        PREFIXES + "INSERT DATA { "
        f'cs:iso_item_{number} dm:hasName "iso_item_{number}" '
        "}"
    )


@pytest.fixture()
def warehouse():
    return generate_landscape(LandscapeConfig.tiny(seed=23)).warehouse


class TestPinnedReaders:
    def test_pinned_snapshot_ignores_later_writes(self, warehouse):
        manager = SnapshotManager(warehouse)
        baseline = canonical(warehouse.query(NAMES_QUERY))
        with manager.read() as snap:
            manager.update(insert_item(1))
            # the pinned facade still answers as of the pin
            assert canonical(snap.warehouse.query(NAMES_QUERY)) == baseline
        # a fresh pin sees the write
        with manager.read() as snap:
            after = canonical(snap.warehouse.query(NAMES_QUERY))
        assert len(after) == len(baseline) + 1

    def test_pinned_reader_bit_identical_to_single_threaded_run(self, warehouse):
        """The acceptance check: interleaved update()/query() from threads,
        the pinned reader's rows equal a fresh single-threaded reference."""
        reference = canonical(warehouse.query(NAMES_QUERY))  # pre-write truth
        manager = SnapshotManager(warehouse)
        pinned = manager.pin()
        results = []
        errors = []
        pinned_once = threading.Event()

        def reader():
            try:
                for _ in range(10):
                    results.append(canonical(pinned.warehouse.query(NAMES_QUERY)))
                    pinned_once.set()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                pinned_once.set()

        def writer():
            pinned_once.wait(timeout=10)
            for number in range(5):
                manager.update(insert_item(number))

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        manager.release(pinned)

        assert not errors, errors
        assert len(results) == 10
        for rows in results:
            assert rows == reference  # bit-identical, every read
        # and the live warehouse holds all five writes
        assert len(canonical(warehouse.query(NAMES_QUERY))) == len(reference) + 5

    def test_concurrent_readers_each_see_one_consistent_generation(self, warehouse):
        """Hammer: every concurrent read equals the canonical result of
        *some* published generation — never a torn in-between state."""
        manager = SnapshotManager(warehouse)
        base = len(canonical(warehouse.query(NAMES_QUERY)))
        valid = {base}
        sizes = []
        sizes_lock = threading.Lock()
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    with manager.read() as snap:
                        rows = canonical(snap.warehouse.query(NAMES_QUERY))
                    with sizes_lock:
                        sizes.append(len(rows))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for number in range(8):
            manager.update(insert_item(100 + number))
            valid.add(base + number + 1)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)

        assert not errors, errors
        assert sizes, "readers never completed a query"
        # each insert adds exactly one named item: any intermediate count
        # corresponds to a published snapshot, anything else is a tear
        assert set(sizes) <= valid


class TestPlanCacheAcrossSnapshots:
    def test_plan_reused_but_results_track_generation(self, warehouse):
        """The shared plan cache must not leak stale *results* across
        snapshots: same query text, different generations, fresh rows."""
        manager = SnapshotManager(warehouse)
        with manager.read() as snap:
            before = canonical(snap.warehouse.query(NAMES_QUERY))
        manager.update(insert_item(7))
        with manager.read() as snap:
            after = canonical(snap.warehouse.query(NAMES_QUERY))
        assert len(after) == len(before) + 1
        stats = warehouse.plan_cache.stats()
        assert stats["parse_hits"] >= 1  # the text itself was reused

    def test_snapshot_facade_shares_live_plan_cache(self, warehouse):
        manager = SnapshotManager(warehouse)
        with manager.read() as snap:
            assert snap.warehouse.plan_cache is warehouse.plan_cache


class TestSnapshotBookkeeping:
    def test_pin_counts(self, warehouse):
        manager = SnapshotManager(warehouse)
        snap = manager.pin()
        assert snap.pins == 1
        with manager.read() as inner:
            assert inner is snap
            assert snap.pins == 2
        assert snap.pins == 1
        manager.release(snap)
        assert snap.pins == 0

    def test_write_without_change_does_not_republish(self, warehouse):
        manager = SnapshotManager(warehouse)
        published = manager.stats()["publications"]
        # a DELETE matching nothing leaves the generation unchanged
        manager.update(PREFIXES + 'DELETE DATA { cs:ghost dm:hasName "ghost" }')
        assert manager.stats()["publications"] == published

    def test_entailment_indexes_copied_into_snapshot(self, warehouse):
        warehouse.build_entailment_index("OWLPRIME")
        manager = SnapshotManager(warehouse)
        with manager.read() as snap:
            assert "OWLPRIME" in snap.rulebases
            live = canonical(
                warehouse.query(NAMES_QUERY, rulebases=["OWLPRIME"])
            )
            frozen = canonical(
                snap.warehouse.query(NAMES_QUERY, rulebases=["OWLPRIME"])
            )
        assert frozen == live
