"""The self-healing worker fleet: supervision, failover, and hedging.

Crash and hang faults are armed on the *ambient* injector before the
service spawns its fork workers — children inherit the injector state
at fork time, so every freshly spawned child carries its own unfired
copy of the plan. That makes the failover ladder deterministic: each
execution attempt lands on a worker that will die, until the attempt
budget is spent and the in-process fallback answers (degraded).
"""

import os
import signal
import sys
import time

import pytest

from repro.resilience.faults import FaultInjector, fault_scope
from repro.server import ServiceConfig, WorkerLost

pytestmark = pytest.mark.skipif(
    sys.platform.startswith("win"), reason="fork start method required"
)

PROBE = "SELECT ?s ?name WHERE { ?s dm:hasName ?name }"


@pytest.fixture(scope="module")
def warehouse():
    from repro.synth import LandscapeConfig, generate_landscape

    land = generate_landscape(LandscapeConfig.tiny(seed=2009))
    land.warehouse.build_entailment_index()
    return land.warehouse


def _supervised_config(tmp_path, **overrides) -> ServiceConfig:
    settings = dict(
        max_workers=2,
        worker_mode="fork",
        snapshot_dir=str(tmp_path / "snaps"),
        supervise=True,
        heartbeat_interval=0.1,
        hang_timeout=5.0,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def _wait_full_pool(service, timeout=5.0):
    deadline = time.monotonic() + timeout
    while service.supervisor.alive_children() < service.config.max_workers:
        assert time.monotonic() < deadline, "pool never reached full size"
        time.sleep(0.01)


class TestRespawn:
    def test_killed_idle_worker_respawns_within_three_heartbeats(
        self, warehouse, tmp_path
    ):
        config = _supervised_config(tmp_path)
        with warehouse.serve(config) as service:
            _wait_full_pool(service)
            victim = service.supervisor.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # wait until the death is observable, then start the clock
            deadline = time.monotonic() + 5.0
            while victim in service.supervisor.worker_pids():
                assert time.monotonic() < deadline, "kill never registered"
                time.sleep(0.002)
            deadline = time.monotonic() + 3 * config.heartbeat_interval
            while service.supervisor.deficit() > 0:
                assert time.monotonic() < deadline, (
                    "pool not back at size within 3 heartbeat intervals"
                )
                time.sleep(0.005)
            assert victim not in service.supervisor.worker_pids()
            snap = service.metrics_snapshot()
            assert snap["worker_restarts"].get("crash", 0) >= 1
            # and the fleet still answers
            assert len(service.query(PROBE)) > 0

    def test_health_reports_recovering_then_healthy(self, warehouse, tmp_path):
        # delay the respawn fault site so the "recovering" window is
        # wide enough to observe deterministically
        injector = FaultInjector(seed=5)
        injector.arm("supervisor.respawn", "delay", delay=0.4, times=2)
        config = _supervised_config(tmp_path)
        with fault_scope(injector):
            with warehouse.serve(config) as service:
                _wait_full_pool(service)
                assert service.health()["status"] == "healthy"
                for pid in service.supervisor.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                deadline = time.monotonic() + 5.0
                while service.supervisor.deficit() == 0:
                    assert time.monotonic() < deadline, "kills never registered"
                    time.sleep(0.002)
                assert service.health()["status"] == "recovering"
                _wait_full_pool(service)
                assert service.health()["status"] == "healthy"
                assert service.health()["supervisor"]["alive_children"] == 2


class TestFailover:
    def test_crash_ladder_requeues_then_degrades(self, warehouse, tmp_path):
        """Every child inherits an armed crash: the request burns its
        whole attempt budget on dying workers, then the in-process
        fallback answers it — degraded, but correct and never lost."""
        injector = FaultInjector(seed=1)
        injector.arm("worker.crash", "raise", times=1)
        config = _supervised_config(
            tmp_path, max_workers=1, max_attempts=3
        )
        with fault_scope(injector):
            with warehouse.serve(config) as service:
                rows = service.query(PROBE, timeout=60)
                assert len(rows) > 0
                assert getattr(rows, "degraded", False) is True
                snap = service.metrics_snapshot()
        assert snap["worker_lost"] == 3
        assert snap["requeued"] == 2
        assert snap["completed"] == 1
        assert snap["failed"] == 0

    def test_hung_worker_is_killed_and_request_recovers(
        self, warehouse, tmp_path
    ):
        """A stuck child (stale progress watermark) is SIGKILLed by the
        supervisor; the owner sees an ordinary death and fails over."""
        injector = FaultInjector(seed=2)
        injector.arm("worker.hang", "delay", delay=30.0, times=1)
        config = _supervised_config(
            tmp_path,
            max_workers=1,
            max_attempts=2,
            heartbeat_interval=0.1,
            hang_timeout=0.4,
        )
        with fault_scope(injector):
            with warehouse.serve(config) as service:
                start = time.monotonic()
                rows = service.query(PROBE, timeout=60)
                elapsed = time.monotonic() - start
                assert len(rows) > 0
                assert getattr(rows, "degraded", False) is True
                snap = service.metrics_snapshot()
        # both attempts hung and were killed, well before the 30s stall
        assert elapsed < 10
        assert snap["worker_restarts"].get("hang", 0) >= 2
        assert snap["worker_lost"] == 2
        assert snap["requeued"] == 1

    def test_lagging_request_is_hedged(self, warehouse, tmp_path):
        """A slow (but alive) worker gets its request duplicated; the
        first completion wins and the caller never sees the straggler."""
        injector = FaultInjector(seed=3)
        injector.arm("worker.hang", "delay", delay=0.8, times=1)
        config = _supervised_config(
            tmp_path,
            max_workers=2,
            heartbeat_interval=0.05,
            hang_timeout=10.0,
            hedge_after=0.15,
        )
        with fault_scope(injector):
            with warehouse.serve(config) as service:
                _wait_full_pool(service)
                rows = service.query(PROBE, timeout=60)
                assert len(rows) > 0
                snap = service.metrics_snapshot()
        assert snap["hedged"] >= 1
        assert snap["completed"] == 1


class TestWorkerLostTyping:
    def test_unsupervised_death_raises_typed_error(self, warehouse, tmp_path):
        """Without a supervisor the caller still gets a typed
        :class:`WorkerLost` with request attribution — not an opaque
        pipe error — and the slow-query log records the casualty."""
        injector = FaultInjector(seed=4)
        injector.arm("worker.crash", "raise", times=1)
        config = ServiceConfig(
            max_workers=1,
            worker_mode="fork",
            snapshot_dir=str(tmp_path / "snaps"),
        )
        with fault_scope(injector):
            with warehouse.serve(config) as service:
                ticket = service.submit("query", text=PROBE)
                with pytest.raises(WorkerLost) as excinfo:
                    ticket.result(timeout=60)
                entries = service.metrics.slow_queries.entries()
        assert excinfo.value.request_id == ticket.request_id
        assert excinfo.value.exitcode == 70
        assert ticket.request_id in str(excinfo.value)
        lost = [e for e in entries if e.statement.startswith("[worker lost")]
        assert lost and lost[0].request_id == ticket.request_id

    def test_worker_lost_pickles_round_trip(self):
        import pickle

        original = WorkerLost("q-7", exitcode=-9, detail="EOFError()")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.request_id == "q-7"
        assert clone.exitcode == -9
        assert clone.detail == "EOFError()"


class TestGenerationCatchUp:
    def test_restart_across_publish_serves_new_generation(
        self, warehouse, tmp_path
    ):
        """A worker restarted across a snapshot publish re-attaches the
        generation current at respawn time — never a stale pin."""
        config = _supervised_config(tmp_path, heartbeat_interval=0.05)
        with warehouse.serve(config) as service:
            _wait_full_pool(service)
            victim = service.supervisor.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            service.update(
                'INSERT DATA { dm:freshly_published dm:hasName "freshly_published" }'
            )
            current = service.snapshots.generation
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                workers = [slot.fork_worker for slot in service._slots]
                if (
                    service.supervisor.deficit() == 0
                    and all(w is not None and w.alive for w in workers)
                    and all(w.generation == current for w in workers)
                ):
                    break
                time.sleep(0.01)
            workers = [slot.fork_worker for slot in service._slots]
            assert all(
                w is not None and w.generation == current for w in workers
            ), "a worker is pinned to a superseded generation"
            # every query from here on sees the published triple
            for _ in range(4):
                rows = service.query(
                    'SELECT ?s WHERE { ?s dm:hasName "freshly_published" }'
                )
                assert len(rows) == 1
            snap = service.metrics_snapshot()
            restarts = snap["worker_restarts"]
            assert restarts.get("crash", 0) + restarts.get("stale", 0) >= 1
