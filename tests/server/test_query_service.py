"""The concurrent query service: admission, deadlines, lifecycle."""

import threading
import time

import pytest

from repro.server import (
    DeadlineExceeded,
    Overloaded,
    QueryService,
    QueryServiceError,
    ServiceClosed,
    ServiceConfig,
)
from repro.synth import LandscapeConfig, generate_landscape

NAMES_QUERY = "SELECT ?s ?n WHERE { ?s dm:hasName ?n } ORDER BY ?s ?n"

#: A cross product over every named item — long enough to outlive short
#: deadlines even on the tiny landscape, but cancellable cooperatively.
HOG_QUERY = (
    "SELECT ?a ?b ?c WHERE { ?a dm:hasName ?n1 . ?b dm:hasName ?n2 . "
    "?c dm:hasName ?n3 }"
)

LISTING1_SQL = """
    SELECT object FROM TABLE(SEM_MATCH(
        {?object dm:hasName ?term},
        SEM_MODELS('DWH_CURR'),
        null,
        SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
        null))
    WHERE regexp_like(term, 'a', 'i')
    GROUP BY object
"""


def canonical(rows):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in row.asdict().items())) for row in rows
    )


@pytest.fixture(scope="module")
def warehouse():
    return generate_landscape(LandscapeConfig.tiny(seed=11)).warehouse


@pytest.fixture()
def service(warehouse):
    svc = warehouse.serve(max_workers=2, max_queue=8)
    yield svc
    svc.close(wait=False)


class TestSubmitExecute:
    def test_submit_returns_ticket_with_correct_result(self, warehouse, service):
        ticket = service.submit("query", text=NAMES_QUERY)
        assert ticket.request_id.startswith("q-")
        rows = ticket.result(timeout=30)
        assert canonical(rows) == canonical(warehouse.query(NAMES_QUERY))

    def test_every_read_kind_dispatches(self, warehouse, service):
        assert len(service.query(NAMES_QUERY)) > 0
        assert len(service.sem_sql(LISTING1_SQL)) > 0
        results = service.search("a")
        assert results is not None
        from repro.core.vocabulary import TERMS

        name = next(iter(warehouse.graph.objects(None, TERMS.has_name))).lexical
        trace = service.lineage(name)
        assert trace.start is not None

    def test_lineage_by_unknown_name_is_typed_error(self, service):
        with pytest.raises(QueryServiceError, match="no item named"):
            service.lineage("no-such-item-name-anywhere")

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(QueryServiceError, match="unknown request kind"):
            service.submit("drop-tables")

    def test_results_identical_to_direct_warehouse(self, warehouse, service):
        direct = canonical(warehouse.query(NAMES_QUERY))
        served = [canonical(service.query(NAMES_QUERY)) for _ in range(4)]
        assert all(result == direct for result in served)


class TestAdmissionControl:
    def test_overloaded_is_raised_not_blocked(self, warehouse):
        svc = warehouse.serve(max_workers=1, max_queue=2)
        try:
            tickets = []
            rejections = []
            # one request occupies the worker, two fill the queue; the
            # submitter must get a typed rejection immediately after
            for _ in range(12):
                try:
                    tickets.append(svc.submit("query", text=HOG_QUERY, timeout=20))
                except Overloaded as exc:
                    rejections.append(exc)
            assert rejections, "queue bound never enforced"
            assert all(exc.max_queue == 2 for exc in rejections)
            assert all(exc.queue_depth >= 1 for exc in rejections)
            assert svc.metrics.snapshot()["rejected"] == len(rejections)
            for ticket in tickets:
                ticket.cancel()
        finally:
            svc.close(wait=False)

    def test_queue_time_counts_against_deadline(self, warehouse):
        svc = warehouse.serve(max_workers=1, max_queue=4)
        try:
            blocker = svc.submit("query", text=HOG_QUERY, timeout=20)
            # admitted behind the hog with a deadline shorter than the
            # hog's runtime: must fail queue-expired, not run to completion
            starved = svc.submit("query", text=NAMES_QUERY, timeout=0.05)
            with pytest.raises(DeadlineExceeded):
                starved.result(timeout=30)
            blocker.cancel()
        finally:
            svc.close(wait=False)


class TestDeadlines:
    def test_deadline_returns_typed_error_within_budget(self, service):
        timeout = 0.1
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            service.query(HOG_QUERY, timeout=timeout)
        wall = time.monotonic() - started
        assert excinfo.value.timeout == timeout
        # the acceptance bound: typed error in at most 1.5x the deadline
        assert wall <= timeout * 1.5, f"took {wall:.3f}s for a {timeout}s deadline"

    def test_service_keeps_serving_after_timeout(self, warehouse, service):
        with pytest.raises(DeadlineExceeded):
            service.query(HOG_QUERY, timeout=0.05)
        rows = service.query(NAMES_QUERY, timeout=10)
        assert canonical(rows) == canonical(warehouse.query(NAMES_QUERY))
        assert service.metrics.snapshot()["timeouts"] >= 1

    def test_cancel_aborts_inflight_query(self, service):
        ticket = service.submit("query", text=HOG_QUERY, timeout=30)
        time.sleep(0.05)  # let a worker pick it up
        ticket.cancel()
        exc = ticket.exception(timeout=10)
        assert exc is not None


class TestWrites:
    def test_update_visible_to_later_queries(self, warehouse):
        svc = warehouse.serve(max_workers=2)
        try:
            generation = svc.snapshots.generation
            svc.update(
                'PREFIX cs: <http://www.credit-suisse.com/dwh/> '
                'PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#> '
                'INSERT DATA { cs:write_probe dm:hasName "write_probe" }'
            )
            assert svc.snapshots.generation > generation
            rows = svc.query('SELECT ?s WHERE { ?s dm:hasName "write_probe" }')
            assert len(rows) == 1
        finally:
            svc.close()

    def test_update_attributed_in_audit_journal(self, warehouse):
        journal = warehouse.enable_audit()
        svc = warehouse.serve(max_workers=1)
        try:
            svc.update(
                'PREFIX cs: <http://www.credit-suisse.com/dwh/> '
                'PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#> '
                'INSERT DATA { cs:audited_probe dm:hasName "audited_probe" }'
            )
            attributed = journal.entries(request_id="w-1")
            assert attributed, "audit entries not attributed to the request"
            assert all(e.request_id == "w-1" for e in attributed)
        finally:
            svc.close()


class TestLifecycle:
    def test_closed_service_rejects_submissions(self, warehouse):
        svc = warehouse.serve(max_workers=1)
        svc.close()
        assert svc.closed
        with pytest.raises(ServiceClosed):
            svc.submit("query", text=NAMES_QUERY)
        with pytest.raises(ServiceClosed):
            svc.update("INSERT DATA { <urn:a> <urn:b> <urn:c> }")
        svc.close()  # idempotent

    def test_context_manager_drains(self, warehouse):
        with warehouse.serve(max_workers=2) as svc:
            tickets = [svc.submit("query", text=NAMES_QUERY) for _ in range(6)]
        assert all(ticket.done() for ticket in tickets)
        assert all(len(ticket.result()) > 0 for ticket in tickets)

    def test_close_without_wait_fails_queued_requests(self, warehouse):
        svc = warehouse.serve(max_workers=1, max_queue=8)
        blocker = svc.submit("query", text=HOG_QUERY, timeout=20)
        queued = [svc.submit("query", text=NAMES_QUERY) for _ in range(4)]
        svc.close(wait=False)
        for ticket in queued:
            exc = ticket.exception(timeout=10)
            assert exc is None or isinstance(exc, ServiceClosed) or ticket.future.cancelled()
        blocker.cancel()


class TestMetrics:
    def test_latency_and_counters_recorded(self, warehouse):
        svc = warehouse.serve(max_workers=2)
        try:
            for _ in range(5):
                svc.query(NAMES_QUERY)
            snap = svc.metrics_snapshot()
            assert snap["completed"] >= 5
            assert snap["endpoints"]["query"]["count"] >= 5
            assert snap["endpoints"]["query"]["p50"] > 0
            assert 0.0 <= snap["plan_cache_hit_rate"] <= 1.0
            assert snap["plan_cache"]["plan_hits"] > 0  # repeated text reuses the plan
            report = svc.metrics_report()
            assert "query service metrics" in report
            assert "plan cache hit rate" in report
        finally:
            svc.close()

    def test_slow_query_log_captures_plan(self, warehouse):
        svc = QueryService(
            warehouse, ServiceConfig(max_workers=1, slow_query_threshold=0.0)
        )
        try:
            svc.query(NAMES_QUERY)
            entries = svc.metrics.slow_queries.entries()
            assert entries
            assert entries[0].kind == "query"
            assert entries[0].plan and "PLAN" in entries[0].plan.upper()
        finally:
            svc.close()


class TestForkMode:
    def test_fork_results_match_thread_results(self, warehouse):
        with warehouse.serve(max_workers=2, worker_mode="fork") as svc:
            forked = canonical(svc.query(NAMES_QUERY, timeout=60))
            searched = svc.search("a", timeout=60)
        assert forked == canonical(warehouse.query(NAMES_QUERY))
        assert searched is not None

    def test_fork_workers_respawn_after_write(self, warehouse):
        with warehouse.serve(max_workers=2, worker_mode="fork") as svc:
            svc.query(NAMES_QUERY, timeout=60)
            svc.update(
                'PREFIX cs: <http://www.credit-suisse.com/dwh/> '
                'PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#> '
                'INSERT DATA { cs:fork_probe dm:hasName "fork_probe" }'
            )
            rows = svc.query(
                'SELECT ?s WHERE { ?s dm:hasName "fork_probe" }', timeout=60
            )
            assert len(rows) == 1
