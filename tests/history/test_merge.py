"""Unit tests for the model-merge operator (Rondo connection)."""

import pytest

from repro.core import MetadataWarehouse, TERMS
from repro.history import MergeConflictError, merge_graphs
from repro.rdf import Graph, IRI, Literal, Namespace, Triple

EX = Namespace("http://x/")


def g(*triples):
    return Graph(triples)


def name_of(graph, subject):
    return sorted(l.lexical for l in graph.objects(subject, TERMS.has_name))


class TestCleanMerge:
    def test_disjoint_union(self):
        left = g(Triple(EX.a, EX.p, EX.b))
        right = g(Triple(EX.c, EX.p, EX.d))
        result = merge_graphs(left, right)
        assert result.clean
        assert len(result.merged) == 2
        assert result.left_only == 1 and result.right_only == 1 and result.common == 0

    def test_overlapping_union(self):
        shared = Triple(EX.a, EX.p, EX.b)
        left = g(shared, Triple(EX.a, EX.q, EX.c))
        right = g(shared)
        result = merge_graphs(left, right)
        assert result.common == 1
        assert len(result.merged) == 2

    def test_inputs_untouched(self):
        left = g(Triple(EX.a, EX.p, EX.b))
        right = g(Triple(EX.c, EX.p, EX.d))
        merge_graphs(left, right)
        assert len(left) == 1 and len(right) == 1

    def test_same_functional_value_no_conflict(self):
        t = Triple(EX.item, TERMS.has_name, Literal("customer_id"))
        result = merge_graphs(g(t), g(t))
        assert result.clean

    def test_only_one_side_has_value(self):
        left = g(Triple(EX.item, TERMS.has_name, Literal("customer_id")))
        right = g(Triple(EX.item, EX.other, EX.x))
        result = merge_graphs(left, right)
        assert result.clean
        assert name_of(result.merged, EX.item) == ["customer_id"]

    def test_summary(self):
        result = merge_graphs(g(Triple(EX.a, EX.p, EX.b)), g())
        assert "0 conflict(s)" in result.summary()


class TestConflicts:
    def left_right(self):
        left = g(Triple(EX.item, TERMS.has_name, Literal("customer_id")))
        right = g(Triple(EX.item, TERMS.has_name, Literal("cust_id")))
        return left, right

    def test_diverging_names_conflict(self):
        result = merge_graphs(*self.left_right())
        assert not result.clean
        [conflict] = result.conflicts
        assert conflict.subject == EX.item
        assert conflict.predicate == TERMS.has_name
        assert "customer_id" in conflict.describe()

    def test_report_keeps_both(self):
        result = merge_graphs(*self.left_right())
        assert name_of(result.merged, EX.item) == ["cust_id", "customer_id"]

    def test_resolve_left(self):
        result = merge_graphs(*self.left_right(), resolve="left")
        assert name_of(result.merged, EX.item) == ["customer_id"]
        assert result.conflicts  # still reported

    def test_resolve_right(self):
        result = merge_graphs(*self.left_right(), resolve="right")
        assert name_of(result.merged, EX.item) == ["cust_id"]

    def test_resolve_strict_raises(self):
        with pytest.raises(MergeConflictError):
            merge_graphs(*self.left_right(), resolve="strict")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            merge_graphs(g(), g(), resolve="coin-flip")

    def test_non_functional_properties_never_conflict(self):
        left = g(Triple(EX.item, EX.tag, Literal("a")))
        right = g(Triple(EX.item, EX.tag, Literal("b")))
        result = merge_graphs(left, right)
        assert result.clean
        assert len(result.merged) == 2

    def test_custom_functional_properties(self):
        left = g(Triple(EX.item, EX.tag, Literal("a")))
        right = g(Triple(EX.item, EX.tag, Literal("b")))
        result = merge_graphs(left, right, functional_properties=[EX.tag])
        assert len(result.conflicts) == 1


class TestThreeWay:
    def test_change_beats_kept_base(self):
        base_triple = Triple(EX.item, TERMS.has_name, Literal("old_name"))
        base = g(base_triple)
        left = g(base_triple)  # kept the base value
        right = g(Triple(EX.item, TERMS.has_name, Literal("new_name")))  # renamed
        result = merge_graphs(left, right, base=base)
        assert result.clean
        assert name_of(result.merged, EX.item) == ["new_name"]

    def test_symmetric(self):
        base_triple = Triple(EX.item, TERMS.has_name, Literal("old_name"))
        base = g(base_triple)
        left = g(Triple(EX.item, TERMS.has_name, Literal("new_name")))
        right = g(base_triple)
        result = merge_graphs(left, right, base=base)
        assert result.clean
        assert name_of(result.merged, EX.item) == ["new_name"]

    def test_both_changed_differently_conflicts(self):
        base = g(Triple(EX.item, TERMS.has_name, Literal("old")))
        left = g(Triple(EX.item, TERMS.has_name, Literal("left_name")))
        right = g(Triple(EX.item, TERMS.has_name, Literal("right_name")))
        result = merge_graphs(left, right, base=base)
        assert len(result.conflicts) == 1

    def test_both_changed_identically_ok(self):
        base = g(Triple(EX.item, TERMS.has_name, Literal("old")))
        new = Triple(EX.item, TERMS.has_name, Literal("new"))
        result = merge_graphs(g(new), g(new), base=base)
        assert result.clean


class TestWarehouseScenario:
    def test_parallel_rollout_merge(self):
        """Two areas extend a common base warehouse in parallel
        (Section V: the roll-out to master data management)."""
        base_mdw = MetadataWarehouse()
        cls = base_mdw.schema.declare_class("Item")
        shared = base_mdw.facts.add_instance("shared_item", cls)
        base = base_mdw.graph.copy()

        dwh = base.copy()
        dwh_mdw_item = IRI("http://www.credit-suisse.com/dwh/dwh_new")
        dwh.add(Triple(dwh_mdw_item, TERMS.has_name, Literal("dwh_new")))

        mdm = base.copy()
        mdm_item = IRI("http://www.credit-suisse.com/dwh/mdm_new")
        mdm.add(Triple(mdm_item, TERMS.has_name, Literal("mdm_new")))
        # master data team renames the shared item
        mdm.remove_pattern(shared, TERMS.has_name, None)
        mdm.add(Triple(shared, TERMS.has_name, Literal("golden_item")))

        result = merge_graphs(dwh, mdm, base=base)
        assert result.clean  # only one side touched the shared name
        assert name_of(result.merged, shared) == ["golden_item"]
        assert (dwh_mdw_item, TERMS.has_name, Literal("dwh_new")) in result.merged
        assert (mdm_item, TERMS.has_name, Literal("mdm_new")) in result.merged
