"""Unit tests for historization: snapshots, diffs, release simulation."""

import pytest

from repro.core import MetadataWarehouse
from repro.history import (
    GrowthProfile,
    HistorizationError,
    Historizer,
    ReleaseCycleSimulator,
    Version,
    VersionDiff,
    diff_graphs,
)
from repro.rdf import Graph, IRI, Namespace, ReadOnlyGraphError, Triple

EX = Namespace("http://x/")


@pytest.fixture
def mdw():
    mdw = MetadataWarehouse()
    cls = mdw.schema.declare_class("Thing")
    mdw.facts.add_instance("t1", cls)
    return mdw


@pytest.fixture
def hist(mdw):
    return Historizer(mdw.store)


class TestSnapshot:
    def test_snapshot_copies_current(self, mdw, hist):
        version = hist.snapshot("2009.R1")
        assert version.edge_count == len(mdw.graph)
        assert version.graph == mdw.graph

    def test_snapshot_is_frozen(self, mdw, hist):
        version = hist.snapshot("2009.R1")
        with pytest.raises(ReadOnlyGraphError):
            version.graph.add(Triple(EX.a, EX.p, EX.b))

    def test_snapshot_isolated_from_later_changes(self, mdw, hist):
        version = hist.snapshot("2009.R1")
        before = version.edge_count
        cls = mdw.schema.declare_class("Later")
        mdw.facts.add_instance("l1", cls)
        assert version.edge_count == before
        assert len(mdw.graph) > before

    def test_snapshot_queryable_through_store(self, mdw, hist):
        hist.snapshot("2009.R1")
        assert mdw.store.has_model("HIST_2009.R1")
        view = mdw.store.view(["HIST_2009.R1"])
        assert len(view) == len(mdw.graph)

    def test_duplicate_name_rejected(self, mdw, hist):
        hist.snapshot("2009.R1")
        with pytest.raises(HistorizationError):
            hist.snapshot("2009.R1")

    def test_empty_name_rejected(self, hist):
        with pytest.raises(HistorizationError):
            hist.snapshot("")

    def test_sequence_and_parent(self, mdw, hist):
        v1 = hist.snapshot("R1")
        v2 = hist.snapshot("R2")
        assert (v1.sequence, v2.sequence) == (1, 2)
        assert v1.parent is None
        assert v2.parent == "R1"

    def test_version_requires_frozen_graph(self):
        with pytest.raises(ValueError):
            Version(1, "x", Graph(), 0, 0)

    def test_lookup(self, mdw, hist):
        hist.snapshot("R1")
        assert hist.get("R1").name == "R1"
        assert "R1" in hist
        assert len(hist) == 1
        assert hist.latest().name == "R1"
        with pytest.raises(HistorizationError):
            hist.get("R9")

    def test_latest_none_when_empty(self, hist):
        assert hist.latest() is None

    def test_restore(self, mdw, hist):
        hist.snapshot("R1")
        size = len(mdw.graph)
        cls = mdw.schema.declare_class("Extra")
        mdw.facts.add_instance("e1", cls)
        hist.restore("R1")
        assert len(mdw.graph) == size

    def test_storage_cost_sums_versions(self, mdw, hist):
        v1 = hist.snapshot("R1")
        v2 = hist.snapshot("R2")
        assert hist.storage_cost() == v1.edge_count + v2.edge_count


class TestDiff:
    def test_diff_empty_for_identical(self, mdw, hist):
        hist.snapshot("R1")
        hist.snapshot("R2")
        diff = hist.diff("R1", "R2")
        assert diff.is_empty
        assert diff.churn == 0

    def test_diff_detects_additions(self, mdw, hist):
        hist.snapshot("R1")
        cls = mdw.schema.declare_class("Added")
        mdw.facts.add_instance("a1", cls)
        hist.snapshot("R2")
        diff = hist.diff("R1", "R2")
        assert len(diff.added) > 0
        assert len(diff.removed) == 0

    def test_apply_reproduces_target(self, mdw, hist):
        v1 = hist.snapshot("R1")
        cls = mdw.schema.declare_class("Added")
        mdw.facts.add_instance("a1", cls)
        v2 = hist.snapshot("R2")
        assert hist.diff("R1", "R2").apply(v1.graph) == v2.graph

    def test_invert(self):
        old = Graph([Triple(EX.a, EX.p, EX.b)])
        new = Graph([Triple(EX.a, EX.p, EX.c)])
        diff = diff_graphs(old, new)
        assert diff.invert().apply(new) == old

    def test_diff_to_current(self, mdw, hist):
        hist.snapshot("R1")
        cls = mdw.schema.declare_class("Live")
        mdw.facts.add_instance("x", cls)
        diff = hist.diff_to_current("R1")
        assert len(diff.added) > 0

    def test_summary(self):
        diff = diff_graphs(Graph(), Graph([Triple(EX.a, EX.p, EX.b)]))
        assert diff.summary() == "+1 / -0 triples"

    def test_growth_series(self, mdw, hist):
        hist.snapshot("R1")
        cls = mdw.schema.declare_class("G")
        for i in range(5):
            mdw.facts.add_instance(f"g{i}", cls)
        hist.snapshot("R2")
        series = hist.growth_series()
        assert series[0]["edge_growth"] is None
        assert series[1]["edge_growth"] > 0


class TestGrowthProfile:
    def test_paper_defaults(self):
        profile = GrowthProfile()
        assert profile.releases_per_year == 8
        assert profile.annual_growth_low == 0.20
        assert profile.annual_growth_high == 0.30

    def test_per_release_growth_compounds_to_annual(self):
        import random

        profile = GrowthProfile(releases_per_year=8)
        g = profile.per_release_growth(random.Random(1))
        annual = (1 + g) ** 8 - 1
        assert 0.20 <= annual <= 0.30

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            GrowthProfile(annual_growth_low=0.5, annual_growth_high=0.2)
        with pytest.raises(ValueError):
            GrowthProfile(releases_per_year=0)


class TestReleaseSimulator:
    def make(self, releases_per_year=4):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Thing")
        for i in range(50):
            mdw.facts.add_instance(f"seed{i}", cls)
        counter = [0]

        def grower(fraction):
            # each instance adds two triples (rdf:type + dm:hasName)
            for _ in range(max(1, round(len(mdw.graph) * fraction / 2))):
                counter[0] += 1
                mdw.facts.add_instance(f"grown{counter[0]}", cls)

        hist = Historizer(mdw.store)
        return ReleaseCycleSimulator(
            hist, grower, GrowthProfile(releases_per_year=releases_per_year), seed=7
        )

    def test_versions_per_year(self):
        sim = self.make(releases_per_year=4)
        records = sim.run(2)
        assert len(records) == 8
        names = [r.version.name for r in records]
        assert names[0] == "2009.R1"
        assert names[-1] == "2010.R4"

    def test_monotone_growth(self):
        sim = self.make()
        records = sim.run(2)
        sizes = [r.version.edge_count for r in records]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_annual_growth_in_band(self):
        sim = self.make(releases_per_year=8)
        sim.run(3)
        for entry in sim.annual_growth():
            if "growth" in entry:
                # lumpy integer growth widens the band slightly
                assert 0.10 <= entry["growth"] <= 0.45

    def test_deterministic_per_seed(self):
        a, b = self.make(), self.make()
        ra, rb = a.run(1), b.run(1)
        assert [r.version.edge_count for r in ra] == [r.version.edge_count for r in rb]
