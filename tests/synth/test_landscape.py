"""Unit tests for the synthetic landscape generator and figure builders."""

import pytest

from repro.core import TERMS, validate_graph
from repro.rdf import RDF
from repro.synth import (
    LandscapeConfig,
    NamePool,
    generate_landscape,
    generate_pipeline,
    make_search_workload,
)
from repro.synth.figures import build_figure2_example, build_figure3_snippet


@pytest.fixture(scope="module")
def landscape():
    return generate_landscape(LandscapeConfig.small(seed=7))


class TestNamePool:
    def test_deterministic(self):
        a, b = NamePool(1), NamePool(1)
        assert [a.legacy_table_name() for _ in range(5)] == [
            b.legacy_table_name() for _ in range(5)
        ]

    def test_application_names_unique(self):
        pool = NamePool(1)
        names = [pool.application_name(i) for i in range(300)]
        assert len(set(names)) == 300

    def test_person_names_unique(self):
        pool = NamePool(1)
        names = [pool.person(i) for i in range(500)]
        assert len(set(names)) == 500

    def test_legacy_names_look_legacy(self):
        pool = NamePool(2)
        name = pool.legacy_table_name()
        assert name[0] == "T" and name[-3:].isdigit()

    def test_column_names(self):
        pool = NamePool(3)
        name = pool.column_name("customer")
        assert name.startswith("customer_")


class TestLandscapeGeneration:
    def test_deterministic_per_seed(self):
        a = generate_landscape(LandscapeConfig.tiny(seed=3))
        b = generate_landscape(LandscapeConfig.tiny(seed=3))
        assert len(a.graph) == len(b.graph)
        assert a.graph == b.graph

    def test_different_seeds_differ(self):
        a = generate_landscape(LandscapeConfig.tiny(seed=3))
        b = generate_landscape(LandscapeConfig.tiny(seed=4))
        assert a.graph != b.graph

    def test_conformant(self, landscape):
        report = validate_graph(landscape.graph, max_issues=5)
        assert report.conformant, [i.describe() for i in report.issues]

    def test_configured_application_count(self, landscape):
        # configured apps + dwh_core + marts
        config = landscape.config
        assert (
            len(landscape.applications) == config.applications + 1
        )
        assert landscape.subject_area_counts["applications"] == (
            config.applications + 1 + config.marts
        )

    def test_mapping_chains_reach_reports(self, landscape):
        mdw = landscape.warehouse
        reached = 0
        for attr in landscape.report_attributes[:10]:
            trace = mdw.lineage.upstream(attr)
            if trace.max_depth() >= 3:
                reached += 1
        assert reached > 0  # app column -> staging -> integration -> report

    def test_areas_populated(self, landscape):
        graph = landscape.graph
        for area in (TERMS.area_inbound, TERMS.area_integration, TERMS.area_mart):
            assert graph.count(None, TERMS.in_area, area) > 0

    def test_roles_linked(self, landscape):
        graph = landscape.graph
        assert graph.count(None, TERMS.plays_role, None) > 0
        assert graph.count(None, TERMS.for_application, None) > 0

    def test_search_has_hits(self, landscape):
        assert len(landscape.warehouse.search.search("customer")) > 0

    def test_synonyms_materialized(self, landscape):
        assert landscape.subject_area_counts.get("synonym edges", 0) > 0

    def test_extended_scope_adds_subject_areas(self):
        base = generate_landscape(LandscapeConfig.tiny(seed=5))
        extended = generate_landscape(LandscapeConfig.tiny(seed=5).with_extended_scope())
        assert "log files" not in base.subject_area_counts
        assert extended.subject_area_counts["log files"] > 0
        assert extended.subject_area_counts["technical components"] > 0
        assert extended.subject_area_counts["governance links"] > 0
        # still conformant: the graph absorbed new kinds without DDL
        assert validate_graph(extended.graph, max_issues=3).conformant

    def test_summary(self, landscape):
        text = landscape.summary()
        assert "nodes" in text and "applications" in text

    def test_grows_with_config(self):
        small = generate_landscape(LandscapeConfig.tiny(seed=5))
        bigger = generate_landscape(LandscapeConfig.small(seed=5))
        assert len(bigger.graph) > len(small.graph)


class TestWorkload:
    def test_workload_shape(self, landscape):
        workload = make_search_workload(landscape, n_terms=5, n_lineage=3)
        assert len(workload.terms) == 5
        assert len(workload.lineage_targets) <= 3
        assert workload.business_terms

    def test_deterministic(self, landscape):
        a = make_search_workload(landscape, seed=9)
        b = make_search_workload(landscape, seed=9)
        assert a.terms == b.terms
        assert a.lineage_targets == b.lineage_targets

    def test_targets_are_report_attributes(self, landscape):
        workload = make_search_workload(landscape)
        for target in workload.lineage_targets:
            assert target in landscape.report_attributes


class TestPipelineGenerator:
    def test_structure(self):
        pipeline = generate_pipeline(stages=3, items_per_stage=2, fan=1)
        assert pipeline.depth == 3
        assert len(pipeline.stages) == 4
        assert all(len(layer) == 2 for layer in pipeline.stages)

    def test_conformant(self):
        pipeline = generate_pipeline(stages=3)
        assert validate_graph(pipeline.warehouse.graph).conformant

    def test_fan_one_is_linear(self):
        pipeline = generate_pipeline(stages=5, items_per_stage=1, fan=1)
        assert pipeline.warehouse.lineage.count_paths(pipeline.source) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_pipeline(stages=0)
        with pytest.raises(ValueError):
            generate_pipeline(stages=2, fan=0)

    def test_source_in_inbound_area(self):
        pipeline = generate_pipeline(stages=2)
        graph = pipeline.warehouse.graph
        assert graph.value(pipeline.source, TERMS.in_area, None) == TERMS.area_inbound


class TestFigureBuilders:
    def test_figure2_chain(self):
        fig2 = build_figure2_example()
        trace = fig2.warehouse.lineage.upstream(fig2.mart_client_id)
        assert trace.max_depth() == 2
        assert fig2.staging_customer_id in trace.items()

    def test_figure2_generalization(self):
        fig2 = build_figure2_example()
        hierarchy = fig2.warehouse.hierarchy
        partner = fig2.classes["Partner"]
        individual = fig2.warehouse.schema.class_by_label("Individual")
        institution = fig2.warehouse.schema.class_by_label("Institution")
        assert hierarchy.is_subclass_of(individual, partner)
        assert hierarchy.is_subclass_of(institution, partner)

    def test_figure2_rule_text(self):
        fig2 = build_figure2_example()
        edge = fig2.warehouse.lineage.edge(
            fig2.staging_customer_id, fig2.integration_partner_id
        )
        assert "string" in edge.rule and "integer" in edge.rule

    def test_figure3_layers_conformant(self):
        snippet = build_figure3_snippet()
        assert validate_graph(snippet.warehouse.graph).conformant

    def test_figure3_multiple_inheritance(self):
        snippet = build_figure3_snippet()
        hierarchy = snippet.warehouse.hierarchy
        classes = hierarchy.classes_of(snippet.customer_id)
        assert snippet.classes["Application1 Item"] in classes
        assert snippet.classes["Interface Item"] in classes
        assert snippet.classes["Attribute"] in classes

    def test_figure2_areas(self):
        fig2 = build_figure2_example()
        graph = fig2.warehouse.graph
        assert graph.value(fig2.staging_customer_id, TERMS.in_area, None) == TERMS.area_inbound
        assert graph.value(fig2.integration_partner_id, TERMS.in_area, None) == TERMS.area_integration
        assert graph.value(fig2.mart_client_id, TERMS.in_area, None) == TERMS.area_mart
