"""Unit tests for the SQL-wrapped SEM_MATCH executor, including the
verbatim listings from the paper."""

import pytest

from repro.oracle import SemSqlError, execute_sem_sql, parse_sem_sql
from repro.rdf import DM, DT, Graph, IRI, Literal, RDF, RDFS, Triple, TripleStore

LISTING_1 = """
SELECT class, object
FROM TABLE(
  SEM_MATCH(
    {?object rdf:type ?c .
    ?c rdfs:label ?class .
    ?c rdfs:subClassOf dm:Application1_Item .
    ?c rdfs:subClassOf dm:Interface_Item .
    ?object dm:hasName ?term} ,
    SEM_MODELS('DWH_CURR') ,
    SEM_RULEBASES('OWLPRIME') ,
    SEM_ALIASES( SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#') ,
                 SEM_ALIAS('owl', 'http://www.w3.org/2002/07/owl#')) ,
    null )
WHERE regexp_like(term, 'customer', 'i')
GROUP BY class, object
"""

LISTING_2 = """
SELECT source_id, target_id, target_name
FROM TABLE (SEM_MATCH(
    {?source_id dt:isMappedTo ?target_id .
    ?target_id rdf:type dm:Application1_Item .
    ?target_id rdf:type dm:Interface_Item .
    ?target_id dm:hasName ?target_name}
    SEM_MODELS('DWH_CURR'),
    SEM_RULEBASES('OWLPRIME'),
    SEM_ALIASES(
        SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
        SEM_ALIAS('dt', 'http://www.credit-suisse.com/dwh/mdm/data_transfer#')),
        null)
WHERE source_id = 'http://www.credit-suisse.com/dwh/client_information_id'
GROUP BY source_id, target_id, target_name
"""


@pytest.fixture
def store():
    s = TripleStore()
    g = s.create_model("DWH_CURR")
    col = DM.Application1_View_Column
    g.add(Triple(col, RDFS.label, Literal("Column")))
    g.add(Triple(col, RDFS.subClassOf, DM.Application1_Item))
    g.add(Triple(col, RDFS.subClassOf, DM.Interface_Item))
    customer = IRI("http://www.credit-suisse.com/dwh/customer_id")
    g.add(Triple(customer, RDF.type, col))
    g.add(Triple(customer, DM.hasName, Literal("customer_id")))
    account = IRI("http://www.credit-suisse.com/dwh/account_id")
    g.add(Triple(account, RDF.type, col))
    g.add(Triple(account, DM.hasName, Literal("account_id")))
    source = IRI("http://www.credit-suisse.com/dwh/client_information_id")
    g.add(Triple(source, DT.isMappedTo, customer))
    # entailment index: type membership inherited through subClassOf
    derived = Graph()
    derived.add(Triple(customer, RDF.type, DM.Application1_Item))
    derived.add(Triple(customer, RDF.type, DM.Interface_Item))
    derived.add(Triple(account, RDF.type, DM.Application1_Item))
    derived.add(Triple(account, RDF.type, DM.Interface_Item))
    s.attach_index("DWH_CURR", "OWLPRIME", derived)
    return s


class TestPaperListings:
    def test_listing1_runs_verbatim(self, store):
        rows = execute_sem_sql(store, LISTING_1)
        assert rows.columns == ["class", "object"]
        assert rows.to_dicts() == [
            {"class": "Column", "object": "http://www.credit-suisse.com/dwh/customer_id"}
        ]

    def test_listing2_runs_verbatim(self, store):
        rows = execute_sem_sql(store, LISTING_2)
        assert len(rows) == 1
        d = rows.to_dicts()[0]
        assert d["source_id"].endswith("client_information_id")
        assert d["target_id"].endswith("customer_id")
        assert d["target_name"] == "customer_id"

    def test_listing2_empty_without_rulebase(self, store):
        # the rdf:type dm:Application1_Item facts only exist in the
        # entailment index; dropping the rulebase must yield nothing
        sql = LISTING_2.replace("SEM_RULEBASES('OWLPRIME'),", "")
        rows = execute_sem_sql(store, sql)
        assert len(rows) == 0


class TestParser:
    def test_parse_components(self):
        q = parse_sem_sql(LISTING_1)
        assert q.columns == ["class", "object"]
        assert q.models == ["DWH_CURR"]
        assert q.rulebases == ["OWLPRIME"]
        assert [a.prefix for a in q.aliases] == ["dm", "owl"]
        assert q.group_by == ["class", "object"]
        assert q.where is not None
        assert q.pattern.startswith("{") and q.pattern.endswith("}")

    def test_missing_sem_models(self):
        with pytest.raises(SemSqlError):
            parse_sem_sql("SELECT a FROM TABLE(SEM_MATCH({?a ?b ?c}, null))")

    def test_missing_pattern(self):
        with pytest.raises(SemSqlError):
            parse_sem_sql("SELECT a FROM TABLE(SEM_MATCH(SEM_MODELS('M')))")

    def test_missing_select(self):
        with pytest.raises(SemSqlError):
            parse_sem_sql("TABLE(SEM_MATCH({?a ?b ?c}, SEM_MODELS('M')))")

    def test_unbalanced_braces(self):
        with pytest.raises(SemSqlError):
            parse_sem_sql("SELECT a FROM TABLE(SEM_MATCH({?a ?b {?c, SEM_MODELS('M')))")

    def test_count_select_item(self):
        q = parse_sem_sql(
            "SELECT class, COUNT(*) AS n FROM TABLE(SEM_MATCH({?a ?b ?c}, SEM_MODELS('M'))) GROUP BY class"
        )
        assert q.count_columns == [("*", "n")]

    def test_bad_select_item(self):
        with pytest.raises(SemSqlError):
            parse_sem_sql("SELECT a+b FROM TABLE(SEM_MATCH({?a ?b ?c}, SEM_MODELS('M')))")


class TestSqlSemantics:
    def test_group_by_deduplicates(self, store):
        sql = """
        SELECT term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term . ?o rdf:type ?c},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        GROUP BY term
        """
        rows = execute_sem_sql(store, sql)
        assert len(rows) == len(set(rows.values("term")))

    def test_where_and(self, store):
        sql = """
        SELECT term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        WHERE regexp_like(term, 'id') AND NOT regexp_like(term, 'account')
        """
        rows = execute_sem_sql(store, sql)
        assert rows.values("term") == ["customer_id"]

    def test_where_or(self, store):
        sql = """
        SELECT term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        WHERE term = 'customer_id' OR term = 'account_id'
        ORDER BY term
        """
        rows = execute_sem_sql(store, sql)
        assert rows.values("term") == ["account_id", "customer_id"]

    def test_not_equal_sql_style(self, store):
        sql = """
        SELECT term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        WHERE term <> 'account_id'
        """
        rows = execute_sem_sql(store, sql)
        assert rows.values("term") == ["customer_id"]

    def test_count_group_by(self, store):
        sql = """
        SELECT class, COUNT(*) AS n FROM TABLE(SEM_MATCH(
            {?o rdf:type ?cls . ?cls rdfs:label ?class . ?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        GROUP BY class
        """
        rows = execute_sem_sql(store, sql)
        assert rows.to_dicts() == [{"class": "Column", "n": 2}]

    def test_order_by(self, store):
        sql = """
        SELECT term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        ORDER BY term
        """
        rows = execute_sem_sql(store, sql)
        assert rows.values("term") == sorted(rows.values("term"))


class TestEqualityPushdown:
    """WHERE `col = 'const'` conjuncts pushed into SEM_MATCH as bindings."""

    def test_hint_extraction(self):
        from repro.oracle.sql import _equality_hints

        query = parse_sem_sql(LISTING_2)
        assert _equality_hints(query.where) == {
            "source_id": "http://www.credit-suisse.com/dwh/client_information_id"
        }
        regex_query = parse_sem_sql(LISTING_1)
        assert _equality_hints(regex_query.where) == {}

    def test_all_strategies_agree_on_listing2(self, store):
        baseline = execute_sem_sql(store, LISTING_2, strategy="nested-loop")
        for strategy in (None, "auto", "hash-join"):
            rows = execute_sem_sql(store, LISTING_2, strategy=strategy)
            assert rows.to_dicts() == baseline.to_dicts(), strategy
        assert baseline.values("source_id") == [
            "http://www.credit-suisse.com/dwh/client_information_id"
        ]

    def test_subject_equality_on_absent_iri_is_empty(self, store):
        sql = LISTING_2.replace("client_information_id", "no_such_source")
        assert len(execute_sem_sql(store, sql)) == 0
        assert len(execute_sem_sql(store, sql, strategy="nested-loop")) == 0

    def test_object_position_column_not_pushed(self, store):
        # target_name sits in object position: it may match literals of
        # any shape, so the equality must stay a post-filter. An IRI
        # binding here would find nothing; the filter must still match.
        sql = """
        SELECT o, term FROM TABLE(SEM_MATCH(
            {?o dm:hasName ?term},
            SEM_MODELS('DWH_CURR'),
            SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
        WHERE term = 'customer_id'
        """
        rows = execute_sem_sql(store, sql)
        assert rows.values("term") == ["customer_id"]
        assert rows.to_dicts() == execute_sem_sql(
            store, sql, strategy="nested-loop"
        ).to_dicts()
