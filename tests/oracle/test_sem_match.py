"""Unit tests for the programmatic SEM_MATCH facade."""

import pytest

from repro.oracle import SEM_ALIAS, SEM_ALIASES, SEM_MODELS, SEM_RULEBASES, sem_match
from repro.rdf import DM, Graph, IRI, Literal, RDF, RDFS, Triple, TripleStore


@pytest.fixture
def store():
    s = TripleStore()
    g = s.create_model("DWH_CURR")
    col = DM.Application1_View_Column
    g.add(Triple(col, RDFS.label, Literal("Column")))
    node = IRI("http://www.credit-suisse.com/dwh/customer_id")
    g.add(Triple(node, RDF.type, col))
    g.add(Triple(node, DM.hasName, Literal("customer_id")))
    other = IRI("http://www.credit-suisse.com/dwh/trade_id")
    g.add(Triple(other, RDF.type, col))
    g.add(Triple(other, DM.hasName, Literal("trade_id")))
    return s


ALIASES = SEM_ALIASES(SEM_ALIAS("dm", DM.base))


class TestSemMatch:
    def test_basic_pattern(self, store):
        rows = sem_match(
            "{?object rdf:type ?c . ?object dm:hasName ?term}",
            store,
            SEM_MODELS("DWH_CURR"),
            aliases=ALIASES,
        )
        assert len(rows) == 2

    def test_filter_condition(self, store):
        rows = sem_match(
            "{?object dm:hasName ?term}",
            store,
            SEM_MODELS("DWH_CURR"),
            aliases=ALIASES,
            filter_condition='regex(?term, "customer", "i")',
        )
        assert rows.values("term") == ["customer_id"]

    def test_projection(self, store):
        rows = sem_match(
            "{?object rdf:type ?c . ?object dm:hasName ?term}",
            store,
            SEM_MODELS("DWH_CURR"),
            aliases=ALIASES,
            projection=["term"],
        )
        assert rows.columns == ["term"]

    def test_distinct(self, store):
        rows = sem_match(
            "{?object rdf:type ?c}",
            store,
            SEM_MODELS("DWH_CURR"),
            aliases=ALIASES,
            projection=["c"],
            distinct=True,
        )
        assert len(rows) == 1

    def test_rulebase_index_visibility(self, store):
        derived = Graph([Triple(IRI("http://x/d"), DM.hasName, Literal("derived customer"))])
        store.attach_index("DWH_CURR", "OWLPRIME", derived)
        without = sem_match(
            "{?o dm:hasName ?term}", store, SEM_MODELS("DWH_CURR"), aliases=ALIASES
        )
        with_rb = sem_match(
            "{?o dm:hasName ?term}",
            store,
            SEM_MODELS("DWH_CURR"),
            rulebases=SEM_RULEBASES("OWLPRIME"),
            aliases=ALIASES,
        )
        assert len(with_rb) == len(without) + 1

    def test_multiple_models(self, store):
        g2 = store.create_model("DWH_PREV")
        g2.add(Triple(IRI("http://x/old"), DM.hasName, Literal("old_name")))
        rows = sem_match(
            "{?o dm:hasName ?term}",
            store,
            SEM_MODELS("DWH_CURR", "DWH_PREV"),
            aliases=ALIASES,
        )
        assert len(rows) == 3

    def test_pattern_must_be_braced(self, store):
        with pytest.raises(ValueError):
            sem_match("?s ?p ?o", store, SEM_MODELS("DWH_CURR"))

    def test_unknown_model_fails(self, store):
        with pytest.raises(KeyError):
            sem_match("{?s ?p ?o}", store, SEM_MODELS("NOPE"))

    def test_sem_models_requires_name(self):
        with pytest.raises(ValueError):
            SEM_MODELS()
