"""End-to-end observability through the serving tier.

Trace-context propagation across the thread pool and the fork worker
pool, Prometheus exposition validity of a live service's registry,
query profiles in the slow-query log, and the resilience machinery's
registry wiring.
"""

import sys

import pytest

from repro.obs import (
    Tracer,
    parse_exposition,
    render_prometheus,
    trace_scope,
)
from repro.obs.registry import MetricsRegistry, get_registry
from repro.server import ServiceConfig
from repro.synth import LandscapeConfig, generate_landscape

NAMES_QUERY = "SELECT ?s ?n WHERE { ?s dm:hasName ?n } ORDER BY ?s ?n"
JOIN_QUERY = (
    "SELECT ?t ?n WHERE { ?t rdf:type dm:Table . ?t dm:hasName ?n }"
)


@pytest.fixture(scope="module")
def warehouse():
    return generate_landscape(LandscapeConfig.tiny(seed=11)).warehouse


def spans_by_name(tracer):
    out = {}
    for s in tracer.spans():
        out.setdefault(s.name, []).append(s)
    return out


def children_of(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


class TestThreadModePropagation:
    def test_request_plan_operator_nesting(self, warehouse):
        with trace_scope() as tracer:
            with warehouse.serve(max_workers=2) as service:
                service.query(JOIN_QUERY)
        named = spans_by_name(tracer)
        (request,) = named["request"]
        plans = children_of(tracer.spans(), request)
        assert any(p.name == "plan" for p in plans)
        (plan,) = [p for p in plans if p.name == "plan"]
        operators = children_of(tracer.spans(), plan)
        assert [o.name for o in operators].count("operator") == 2
        for op in [o for o in operators if o.name == "operator"]:
            assert op.attrs["op"] in ("scan", "hash-join", "bind-join", "no-match")
            assert "rows_out" in op.attrs

    def test_submit_context_parents_the_request_span(self, warehouse):
        # client-side capture() at submit: a client span becomes the
        # request span's parent even though a worker thread runs it
        with trace_scope() as tracer:
            with warehouse.serve(max_workers=2) as service:
                with tracer.span("client"):
                    ticket = service.submit("query", text=NAMES_QUERY)
                ticket.result()
        named = spans_by_name(tracer)
        (client,) = named["client"]
        (request,) = named["request"]
        assert request.parent_id == client.span_id
        assert request.tid != client.tid  # really crossed the pool

    def test_untraced_service_records_nothing(self, warehouse):
        with warehouse.serve(max_workers=2) as service:
            rows = service.query(NAMES_QUERY)
        assert len(rows) > 0  # no tracer installed: plain results, no spans


@pytest.mark.skipif(sys.platform == "win32", reason="fork workers are POSIX-only")
class TestForkModePropagation:
    def test_child_spans_graft_under_the_request(self, warehouse):
        config = ServiceConfig(max_workers=2, worker_mode="fork")
        with trace_scope() as tracer:
            with warehouse.serve(config) as service:
                service.query(JOIN_QUERY)
        spans = tracer.spans()
        named = spans_by_name(tracer)
        (request,) = named["request"]
        (dispatch,) = named["fork-dispatch"]
        assert dispatch.parent_id == request.span_id
        assert dispatch.pid != request.pid  # recorded in the child process
        (plan,) = [s for s in spans if s.name == "plan"]
        assert plan.parent_id == dispatch.span_id
        assert plan.pid == dispatch.pid

    def test_fork_profile_ships_back_to_slow_query_log(self, warehouse):
        config = ServiceConfig(
            max_workers=1, worker_mode="fork", slow_query_threshold=0.0
        )
        with warehouse.serve(config) as service:
            service.query(JOIN_QUERY)
            entries = service.metrics.slow_queries.entries()
        assert entries, "threshold 0 must log every query"
        profile = entries[-1].profile
        assert profile is not None
        assert "runtime profile" in profile
        assert "->" in profile  # operator rows in/out crossed the fork


class TestPrometheusFromService:
    def test_live_registry_scrape_is_valid_exposition(self, warehouse):
        with warehouse.serve(max_workers=2) as service:
            service.query(NAMES_QUERY)
            text = render_prometheus()
            families = parse_exposition(text)  # validates the grammar
        assert "mdw_service_requests_total" in families
        events = {
            labels["event"]: value
            for _, labels, value in families["mdw_service_requests_total"]["samples"]
            if labels["service"] == service.config.name
        }
        assert events.get("submitted", 0) >= 1
        assert "mdw_request_latency_seconds" in families
        assert families["mdw_request_latency_seconds"]["type"] == "histogram"

    def test_plan_cache_and_snapshot_gauges_exposed(self, warehouse):
        with warehouse.serve(max_workers=2) as service:
            service.query(NAMES_QUERY)
            service.query(NAMES_QUERY)  # second run hits the plan cache
            families = parse_exposition(render_prometheus())
            name = service.config.name
        hit_rate = {
            labels["service"]: value
            for _, labels, value in families["mdw_plan_cache_hit_rate"]["samples"]
        }[name]
        assert 0.0 < hit_rate <= 1.0
        generation = {
            labels["service"]: value
            for _, labels, value in families["mdw_snapshot_generation"]["samples"]
        }[name]
        assert generation >= 0
        pins = {
            labels["service"]: value
            for _, labels, value in families["mdw_snapshot_pins"]["samples"]
        }[name]
        assert pins >= 0
        states = {
            labels["endpoint"]: value
            for _, labels, value in families["mdw_breaker_state"]["samples"]
            if labels["service"] == name
        }
        assert states and all(value == 0.0 for value in states.values())  # closed


class TestResilienceWiring:
    def test_fault_injector_activation_counts(self):
        from repro.resilience.faults import FaultInjector, InjectedFault

        counter = get_registry().counter(
            "mdw_fault_injections_total", labels=("site", "mode")
        )
        before = counter.child(site="index.refresh", mode="raise").value
        injector = FaultInjector(seed=3)
        injector.arm("index.refresh", mode="raise", times=1)
        with pytest.raises(InjectedFault):
            injector.fire("index.refresh")
        injector.fire("index.refresh")  # exhausted plan: no activation
        after = counter.child(site="index.refresh", mode="raise").value
        assert after == before + 1

    def test_breaker_transitions_reach_the_registry(self):
        from repro.resilience.breaker import CircuitBreaker

        clock = [0.0]
        breaker = CircuitBreaker(
            "obs-test", threshold=2, cooldown=5.0, clock=lambda: clock[0]
        )
        counter = get_registry().counter(
            "mdw_breaker_transitions_total", labels=("name", "to", "shard")
        )

        def count(to):
            return counter.child(name="obs-test", to=to, shard="").value

        breaker.on_failure()
        assert count("open") == 0
        breaker.on_failure()  # threshold reached: trips open
        assert count("open") == 1
        clock[0] = 10.0
        assert breaker.allow()  # cooldown elapsed: half-open probe
        assert count("half-open") == 1
        breaker.on_success()  # probe succeeded: closes
        assert count("closed") == 1
        breaker.on_failure()
        breaker.on_failure()
        assert count("open") == 2
        clock[0] = 20.0
        assert breaker.allow()
        breaker.on_failure()  # failed probe: straight back to open
        assert count("open") == 3

    def test_retry_attempts_and_exhaustion_counted(self):
        from repro.resilience.retry import RetryExhausted, RetryPolicy

        retries = get_registry().counter("mdw_retry_retries_total", labels=("error",))
        exhausted = get_registry().counter(
            "mdw_retry_exhausted_total", labels=("error",)
        )
        r0 = retries.child(error="KeyError").value
        e0 = exhausted.child(error="KeyError").value
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

        def always_fails():
            raise KeyError("nope")

        with pytest.raises(RetryExhausted):
            policy.call(always_fails, retry_on=(KeyError,), sleep=lambda _: None)
        assert retries.child(error="KeyError").value == r0 + 2  # attempts 2 and 3
        assert exhausted.child(error="KeyError").value == e0 + 1

        # a first-try success touches neither counter
        policy.call(lambda: 42, sleep=lambda _: None)
        assert retries.child(error="KeyError").value == r0 + 2
        assert exhausted.child(error="KeyError").value == e0 + 1


class TestExplainAnalyze:
    def test_warehouse_explain_analyze_appends_profile(self, warehouse):
        text = warehouse.explain(JOIN_QUERY, analyze=True)
        assert "runtime profile" in text
        assert "hash-join" in text or "bind-join" in text or "scan" in text

    def test_plain_explain_has_no_profile(self, warehouse):
        assert "runtime profile" not in warehouse.explain(JOIN_QUERY)


class TestEtlAndReasoningSpans:
    def test_release_apply_emits_the_etl_span_taxonomy(self):
        from repro.etl.pipeline import EtlOrchestrator

        scape = generate_landscape(LandscapeConfig.tiny(seed=5))
        mdw = scape.warehouse
        mdw.build_entailment_index()
        desired = mdw.graph.copy(name="desired")
        from repro.rdf.terms import IRI, Literal, Triple
        from repro.core.vocabulary import TERMS

        item = IRI("http://example.org/obs_new_item")
        desired.add(Triple(item, TERMS.has_name, Literal("obs_new_item")))

        with trace_scope() as tracer:
            result = EtlOrchestrator(mdw, validate=False).apply_release(
                desired=desired, mode="incremental"
            )
        assert result.ok
        names = {s.name for s in tracer.spans()}
        assert {"etl.release", "etl.diff", "etl.apply", "dred.maintain"} <= names
        named = spans_by_name(tracer)
        (release,) = named["etl.release"]
        assert release.parent_id is None
        assert release.attrs["added"] == 1
        (diff,) = named["etl.diff"]
        assert diff.parent_id == release.span_id

    def test_closure_emits_reasoning_span(self, warehouse):
        with trace_scope() as tracer:
            warehouse.build_entailment_index()
        names = {s.name for s in tracer.spans()}
        assert "index.build" in names
        assert "reasoning.closure" in names
        named = spans_by_name(tracer)
        closure_span = named["reasoning.closure"][0]
        assert closure_span.attrs["rounds"] >= 1


class TestOverheadGate:
    def test_disabled_hooks_are_cheap_noops(self, warehouse):
        # not a timing assertion (the benchmark owns that) — this pins
        # the structural property: with nothing installed, the ambient
        # helpers return shared singletons and the evaluator profile
        # hook reads None
        from repro.obs.profile import current_profile
        from repro.obs.trace import span, tracing

        assert not tracing()
        assert current_profile() is None
        assert span("x") is span("y")
