"""The tracer: nesting, sampling, propagation, Chrome export."""

import json
import pickle
import threading

import pytest

from repro.obs.trace import (
    Tracer,
    active_tracer,
    capture,
    span,
    trace_scope,
    tracing,
)


def by_name(tracer):
    out = {}
    for s in tracer.spans():
        out.setdefault(s.name, []).append(s)
    return out


class TestNesting:
    def test_parentage_follows_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("request", "service"):
            with tracer.span("plan", "sparql"):
                with tracer.span("operator", "sparql"):
                    pass
            with tracer.span("operator", "sparql"):
                pass
        spans = {s.name: s for s in tracer.spans() if s.name != "operator"}
        operators = [s for s in tracer.spans() if s.name == "operator"]
        assert spans["request"].parent_id is None
        assert spans["plan"].parent_id == spans["request"].span_id
        assert operators[0].parent_id == spans["plan"].span_id
        assert operators[1].parent_id == spans["request"].span_id

    def test_attrs_dict_is_written_through(self):
        tracer = Tracer()
        with tracer.span("request", kind="query") as attrs:
            attrs["rows"] = 17
        (recorded,) = tracer.spans()
        assert recorded.attrs == {"kind": "query", "rows": 17}

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("request"):
                raise RuntimeError("boom")
        (recorded,) = tracer.spans()
        assert recorded.end is not None


class TestSampling:
    def test_unsampled_root_suppresses_descendants(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("request"):
            assert capture() is None or True  # no ambient tracer here
            with tracer.span("plan"):
                pass
        assert tracer.spans() == []

    def test_sample_rate_partitions_whole_traces(self):
        tracer = Tracer(sample_rate=0.5, seed=7)
        for _ in range(200):
            with tracer.span("request"):
                with tracer.span("plan"):
                    pass
        spans = tracer.spans()
        roots = [s for s in spans if s.parent_id is None]
        children = [s for s in spans if s.parent_id is not None]
        # every sampled trace is complete: one plan per request
        assert len(roots) == len(children)
        assert 0 < len(roots) < 200

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestAmbientHelpers:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing()
        cm1 = span("anything", irrelevant=1)
        cm2 = span("else")
        assert cm1 is cm2  # the shared no-op — no allocation when disabled
        with cm1 as attrs:
            attrs["write"] = "discarded"
        assert dict(attrs) == {}

    def test_trace_scope_installs_and_restores(self):
        assert active_tracer() is None
        with trace_scope() as tracer:
            assert active_tracer() is tracer
            with span("request"):
                assert capture() is not None
        assert active_tracer() is None
        assert [s.name for s in tracer.spans()] == ["request"]

    def test_capture_is_none_outside_any_span(self):
        with trace_scope():
            assert capture() is None


class TestCrossThread:
    def test_explicit_parent_bridges_a_thread_pool_hop(self):
        # the service pattern: capture() at submit time on the client
        # thread, open the request span with parent= on the worker thread
        with trace_scope() as tracer:
            with tracer.span("client"):
                ctx = capture()

            done = threading.Event()

            def worker():
                with tracer.span("request", parent=ctx):
                    with tracer.span("plan"):
                        pass
                done.set()

            threading.Thread(target=worker).start()
            assert done.wait(5.0)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["request"].parent_id == spans["client"].span_id
        assert spans["plan"].parent_id == spans["request"].span_id
        assert spans["plan"].tid != spans["client"].tid

    def test_contextvar_does_not_leak_across_unrelated_threads(self):
        with trace_scope() as tracer:
            seen = []

            def worker():
                seen.append(capture())

            with tracer.span("client"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
            assert seen == [None]  # fresh thread, fresh context


class TestCrossProcess:
    def test_spans_and_contexts_pickle(self):
        tracer = Tracer()
        with tracer.span("request", kind="query"):
            ctx = pickle.loads(pickle.dumps(_ambient_ctx(tracer)))
        (recorded,) = tracer.spans()
        clone = pickle.loads(pickle.dumps(recorded))
        assert clone.span_id == recorded.span_id
        assert clone.attrs == recorded.attrs
        assert ctx.span_id == recorded.span_id

    def test_drain_and_adopt_graft_foreign_spans(self):
        parent = Tracer()
        child = Tracer()
        with parent.span("request"):
            ctx = _ambient_ctx(parent)
        with child.span("fork-dispatch", parent=ctx):
            pass
        shipped = pickle.loads(pickle.dumps(child.drain()))
        assert child.spans() == []
        parent.adopt(shipped)
        spans = {s.name: s for s in parent.spans()}
        assert spans["fork-dispatch"].parent_id == spans["request"].span_id


def _ambient_ctx(tracer):
    """capture() needs the tracer installed; shortcut for tests that
    drive a Tracer directly."""
    from repro.obs import trace as trace_mod

    previous = trace_mod._active
    trace_mod._active = tracer
    try:
        return capture()
    finally:
        trace_mod._active = previous


class TestChromeExport:
    def test_chrome_trace_shape_and_ordering(self):
        tracer = Tracer()
        with tracer.span("request", "service", kind="query"):
            with tracer.span("plan", "sparql", strategy="auto"):
                pass
        data = tracer.to_chrome()
        text = json.dumps(data)  # must be JSON-serializable
        assert json.loads(text)["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert [e["name"] for e in events] == ["request", "plan"]  # ts-sorted
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        request, plan = events
        assert plan["args"]["parent_id"] == request["args"]["span_id"]
        assert plan["args"]["strategy"] == "auto"

    def test_capacity_drops_new_spans_not_old(self):
        tracer = Tracer(capacity=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]
        assert tracer.dropped == 1
