"""Prometheus exposition rendering and the validating parser."""

import math

import pytest

from repro.obs.exporter import (
    ExpositionError,
    parse_exposition,
    render_prometheus,
    snapshot_json,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    counter = reg.counter("mdw_events_total", "Lifecycle events", labels=("event",))
    counter.inc(3, event="completed")
    counter.inc(event="failed")
    gauge = reg.gauge("mdw_depth", "Queue depth")
    gauge.set(4)
    hist = reg.histogram("mdw_latency_seconds", "Latency", labels=("kind",))
    for value in (0.002, 0.002, 0.04, 3.0):
        hist.observe(value, kind="query")
    return reg


def test_round_trip_parses_and_validates(registry):
    text = render_prometheus(registry)
    families = parse_exposition(text)
    assert set(families) == {"mdw_events_total", "mdw_depth", "mdw_latency_seconds"}
    assert families["mdw_events_total"]["type"] == "counter"
    samples = {
        sample[1]["event"]: sample[2]
        for sample in families["mdw_events_total"]["samples"]
    }
    assert samples == {"completed": 3.0, "failed": 1.0}
    assert families["mdw_depth"]["samples"][0][2] == 4.0


def test_histogram_buckets_are_cumulative_with_terminal_inf(registry):
    text = render_prometheus(registry)
    families = parse_exposition(text)
    buckets = [
        (float(labels["le"]) if labels["le"] != "+Inf" else math.inf, value)
        for name, labels, value in families["mdw_latency_seconds"]["samples"]
        if name == "mdw_latency_seconds_bucket"
    ]
    buckets.sort(key=lambda pair: pair[0])
    assert math.isinf(buckets[-1][0])
    assert buckets[-1][1] == 4  # _count == +Inf bucket
    counts = [count for _, count in buckets]
    assert counts == sorted(counts)  # cumulative
    # the two 2ms observations are visible at the 0.0025 bound already
    at_25ms = dict(buckets)[0.0025]
    assert at_25ms == 2
    count = [
        value
        for name, _, value in families["mdw_latency_seconds"]["samples"]
        if name == "mdw_latency_seconds_count"
    ]
    assert count == [4]


def test_help_and_label_escaping_round_trips():
    reg = MetricsRegistry()
    reg.counter("mdw_tricky_total", 'help with \\ and\nnewline', labels=("q",)).inc(
        q='va"lue\nwith\\stuff'
    )
    families = parse_exposition(render_prometheus(reg))
    _, labels, value = families["mdw_tricky_total"]["samples"][0]
    assert labels["q"] == 'va"lue\nwith\\stuff'
    assert value == 1.0


def test_integer_values_render_bare(registry):
    text = render_prometheus(registry)
    assert "mdw_depth 4\n" in text  # not 4.0


def test_parser_rejects_malformed_documents():
    with pytest.raises(ExpositionError):
        parse_exposition("mdw_orphan_total 1\n")  # no TYPE declaration
    with pytest.raises(ExpositionError):
        parse_exposition("# TYPE mdw_x banana\nmdw_x 1\n")
    with pytest.raises(ExpositionError):
        parse_exposition("# TYPE mdw_x counter\nmdw_x{oops} 1\n")
    with pytest.raises(ExpositionError):
        parse_exposition("# TYPE mdw_x counter\nmdw_x not-a-number\n")


def test_parser_rejects_broken_histograms():
    base = "# TYPE mdw_h histogram\n"
    # no +Inf bucket
    with pytest.raises(ExpositionError):
        parse_exposition(
            base + 'mdw_h_bucket{le="0.1"} 1\nmdw_h_sum 0.05\nmdw_h_count 1\n'
        )
    # non-cumulative buckets
    with pytest.raises(ExpositionError):
        parse_exposition(
            base
            + 'mdw_h_bucket{le="0.1"} 5\nmdw_h_bucket{le="+Inf"} 3\n'
            + "mdw_h_sum 0.05\nmdw_h_count 3\n"
        )
    # missing _sum/_count
    with pytest.raises(ExpositionError):
        parse_exposition(base + 'mdw_h_bucket{le="+Inf"} 1\n')
    # _count disagrees with +Inf
    with pytest.raises(ExpositionError):
        parse_exposition(
            base + 'mdw_h_bucket{le="+Inf"} 2\nmdw_h_sum 0.1\nmdw_h_count 3\n'
        )


def test_empty_registry_renders_empty_document():
    reg = MetricsRegistry()
    assert render_prometheus(reg) == "\n"
    assert parse_exposition(render_prometheus(reg)) == {}


def test_snapshot_json_matches_registry(registry):
    snap = snapshot_json(registry)
    assert snap["mdw_latency_seconds"]["type"] == "histogram"
    assert snap["mdw_latency_seconds"]["samples"][0]["count"] == 4
