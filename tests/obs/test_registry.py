"""The metrics registry: families, children, and the latency histogram."""

import math
import threading

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS,
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
)


class TestLatencyHistogram:
    def test_empty_percentile_and_mean_are_zero(self):
        hist = LatencyHistogram()
        assert hist.mean() == 0.0
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.percentile(q) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p50"] == 0.0
        assert summary["min"] == 0.0 and summary["max"] == 0.0

    def test_quantile_out_of_range_raises(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_observation_exactly_on_bucket_boundary(self):
        # bucket membership is "seconds <= bound": a boundary observation
        # lands in the bucket it names, not the next one
        hist = LatencyHistogram()
        for bound in LATENCY_BUCKETS:
            hist.observe(bound)
        state = hist.state()
        # one observation per finite bucket, none in +Inf
        assert state["counts"][:-1] == [1] * len(LATENCY_BUCKETS)
        assert state["counts"][-1] == 0
        assert state["count"] == len(LATENCY_BUCKETS)

    def test_observation_just_past_boundary_goes_to_next_bucket(self):
        hist = LatencyHistogram()
        hist.observe(LATENCY_BUCKETS[0] * 1.0001)
        state = hist.state()
        assert state["counts"][0] == 0
        assert state["counts"][1] == 1

    def test_percentile_zero_reports_first_occupied_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.3)  # falls in the 0.5 bucket
        assert hist.percentile(0.0) == 0.5
        assert hist.percentile(1.0) == 0.5  # bucket upper bound, not raw max

    def test_percentiles_on_known_distribution(self):
        hist = LatencyHistogram()
        for _ in range(90):
            hist.observe(0.002)  # 0.0025 bucket
        for _ in range(10):
            hist.observe(0.2)  # 0.25 bucket
        assert hist.percentile(0.5) == 0.0025
        assert hist.percentile(0.95) == 0.25
        assert hist.mean() == pytest.approx((90 * 0.002 + 10 * 0.2) / 100)

    def test_observation_beyond_last_bound_lands_in_inf_bucket(self):
        hist = LatencyHistogram()
        hist.observe(120.0)
        state = hist.state()
        assert state["counts"][-1] == 1
        # p100 comes back as the recorded max, not a bucket bound
        assert hist.percentile(1.0) == 120.0

    def test_bounds_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(0.5, 0.1))


class TestRegistry:
    def test_counter_gauge_histogram_lifecycle(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", "help", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        gauge = reg.gauge("t_gauge", "help", labels=())
        gauge.set(7)
        hist = reg.histogram("t_seconds", "help", labels=("kind",))
        hist.observe(0.004, kind="a")
        snap = reg.snapshot()
        assert snap["t_total"]["type"] == "counter"
        by_labels = {
            tuple(sorted(s["labels"].items())): s for s in snap["t_total"]["samples"]
        }
        assert by_labels[(("kind", "a"),)]["value"] == 3.0
        assert by_labels[(("kind", "b"),)]["value"] == 1.0
        assert snap["t_gauge"]["samples"][0]["value"] == 7.0
        assert snap["t_seconds"]["samples"][0]["count"] == 1

    def test_registration_is_idempotent_but_mismatch_raises(self):
        reg = MetricsRegistry()
        first = reg.counter("t_total", "help", labels=("a",))
        assert reg.counter("t_total", "other help", labels=("a",)) is first
        with pytest.raises(ValueError):
            reg.gauge("t_total", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("t_total", labels=("b",))

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labels=("0bad",))

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc(other="x")
        with pytest.raises(ValueError):
            counter.inc()  # missing the label entirely

    def test_callback_gauge_and_broken_callback(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("t_gauge", labels=("which",))
        gauge.set_function(lambda: 42.0, which="ok")
        gauge.set_function(lambda: 1 / 0, which="broken")
        samples = {s["labels"]["which"]: s["value"] for s in
                   reg.snapshot()["t_gauge"]["samples"]}
        assert samples["ok"] == 42.0
        assert math.isnan(samples["broken"])  # broken callback -> NaN, no raise

    def test_callback_gauge_last_registration_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("t_gauge")
        gauge.set_function(lambda: 1.0)
        gauge.set_function(lambda: 2.0)
        assert reg.snapshot()["t_gauge"]["samples"][0]["value"] == 2.0
        gauge.set(9.0)  # a plain set clears the callback
        assert reg.snapshot()["t_gauge"]["samples"][0]["value"] == 9.0

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("t_total").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_after_fork_reinstalls_locks(self):
        reg = MetricsRegistry()
        family = reg.counter("t_total", labels=("k",))
        child = family.child(k="x")
        old_locks = (reg._lock, family._lock, child._lock)
        reg._after_fork()
        assert reg._lock is not old_locks[0]
        assert family._lock is not old_locks[1]
        assert child._lock is not old_locks[2]
        child.inc()  # still functional
        assert child.value == 1.0

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", labels=("k",))

        def hammer():
            for _ in range(500):
                counter.inc(k="x")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.child(k="x").value == 4000.0

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
