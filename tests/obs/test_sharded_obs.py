"""Fleet-wide observability through the sharded gateway.

Cross-shard trace propagation (gateway request ⊃ per-round frontier
spans ⊃ per-shard request spans ⊃ operator spans), span grafting under
failure (hedged losers, WorkerLost requeues), the unified gateway
slow-query log, per-shard degraded attribution, and the SLO report
riding the fleet health document.
"""

import sys

import pytest

from repro.core import MetadataWarehouse
from repro.obs import get_journal, trace_scope, validate_chrome_trace
from repro.obs.registry import get_registry
from repro.server import ServiceConfig, ShardedConfig, ShardedQueryService
from repro.storage import shard_of


def thread_service(mdw, **overrides):
    base = dict(
        n_shards=2,
        workers_per_shard=1,
        worker_mode="thread",
        supervise=False,
    )
    base.update(overrides)
    return ShardedQueryService(mdw, ShardedConfig(**base))


def mint_instances(mdw, cls, shards_wanted, n_shards):
    """Instances whose routing hash lands on the requested shards."""
    items, names = [], []
    k = 0
    for want in shards_wanted:
        while True:
            name = f"n{k:03d}"
            k += 1
            if shard_of(mdw.facts.namespace.term(name), n_shards) == want:
                items.append(mdw.facts.add_instance(name, cls))
                names.append(name)
                break
    return items, names


def three_shard_chain():
    """a -> b -> c -> d -> e spread over all three shards."""
    mdw = MetadataWarehouse()
    node = mdw.schema.declare_class("Node")
    items, names = mint_instances(mdw, node, [0, 1, 2, 0, 1], 3)
    for i, (a, b) in enumerate(zip(items, items[1:])):
        mdw.facts.add_mapping(a, b, rule=f"rule-{i}")
    return mdw, items, names


def spans_by_name(tracer):
    out = {}
    for s in tracer.spans():
        out.setdefault(s.name, []).append(s)
    return out


def children_of(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


class TestCrossShardTracePropagation:
    def test_lineage_nests_gateway_frontier_shard_operator(self):
        """The acceptance shape: one sampled Listing-2 lineage against a
        3-shard fleet yields a single trace tree, gateway request ⊃
        per-round frontier spans ⊃ per-shard request spans ⊃ operator
        spans — and it round-trips the structural validator."""
        mdw, items, _names = three_shard_chain()
        with trace_scope() as tracer:
            with thread_service(mdw, n_shards=3) as svc:
                got = svc.lineage(items[0], direction="downstream")
        assert len(got.edges) == 4 and not got.degraded
        spans = tracer.spans()
        named = spans_by_name(tracer)
        (gateway,) = [
            s for s in named["request"] if s.attrs.get("kind") == "lineage"
        ]
        assert gateway.parent_id is None
        assert gateway.attrs["request_id"].startswith("g-")
        frontiers = sorted(named["frontier"], key=lambda s: s.attrs["round"])
        # 5 BFS levels: 4 edge-bearing rounds + the terminal empty one
        assert [f.attrs["round"] for f in frontiers] == [1, 2, 3, 4, 5]
        shard_requests = []
        for frontier in frontiers:
            assert frontier.parent_id == gateway.span_id
            assert frontier.attrs["direction"] == "downstream"
            level = [
                s
                for s in children_of(spans, frontier)
                if s.name == "request"
            ]
            # downstream rounds point-route: one owner shard per round
            assert len(level) == frontier.attrs["fan_out"] == 1
            shard_requests.extend(level)
        for request in shard_requests:
            assert request.attrs["kind"] == "frontier"
            operators = [
                s
                for s in children_of(spans, request)
                if s.name == "operator" and s.attrs.get("op") == "frontier"
            ]
            assert len(operators) == 1
        summary = validate_chrome_trace(tracer.to_chrome())
        assert {"request", "frontier", "operator"} <= set(summary["names"])

    def test_upstream_rounds_fan_out_to_every_shard(self):
        mdw, items, _names = three_shard_chain()
        with trace_scope() as tracer:
            with thread_service(mdw, n_shards=3) as svc:
                svc.lineage(items[-1], direction="upstream")
        named = spans_by_name(tracer)
        spans = tracer.spans()
        for frontier in named["frontier"]:
            level = [
                s for s in children_of(spans, frontier) if s.name == "request"
            ]
            assert len(level) == 3  # upstream scatters to all shards
        validate_chrome_trace(tracer.to_chrome())

    def test_search_scatter_nests_under_gateway_request(self):
        mdw, _items, _names = three_shard_chain()
        with trace_scope() as tracer:
            with thread_service(mdw, n_shards=3) as svc:
                svc.search("n0", regex=True)
        spans = tracer.spans()
        named = spans_by_name(tracer)
        (gateway,) = [
            s
            for s in named["request"]
            if s.attrs.get("kind") == "search"
            and s.attrs.get("request_id", "").startswith("g-")
        ]
        shard_level = [
            s for s in children_of(spans, gateway) if s.name == "request"
        ]
        assert len(shard_level) == 3
        assert {s.attrs["shard"] for s in shard_level} == {"0", "1", "2"}
        validate_chrome_trace(tracer.to_chrome())

    def test_unsampled_gateway_emits_nothing(self):
        from repro.obs import Tracer

        mdw, items, _names = three_shard_chain()
        tracer = Tracer(sample_rate=0.0)
        with trace_scope(tracer):
            with thread_service(mdw, n_shards=3) as svc:
                svc.lineage(items[0], direction="downstream")
        assert tracer.spans() == []


@pytest.mark.skipif(sys.platform == "win32", reason="fork workers are POSIX-only")
class TestForkShardPropagation:
    def test_shard_spans_cross_the_process_boundary(self, tmp_path):
        mdw, items, _names = three_shard_chain()
        with trace_scope() as tracer:
            with thread_service(
                mdw,
                n_shards=3,
                worker_mode="fork",
                supervise=False,
                snapshot_dir=str(tmp_path / "shards"),
            ) as svc:
                got = svc.lineage(items[0], direction="downstream")
        assert len(got.edges) == 4
        summary = validate_chrome_trace(tracer.to_chrome())
        assert summary["pids"] >= 2  # child-process spans grafted in
        named = spans_by_name(tracer)
        spans = tracer.spans()
        (gateway,) = [
            s for s in named["request"] if s.attrs.get("kind") == "lineage"
        ]
        for dispatch in named["fork-dispatch"]:
            assert dispatch.pid != gateway.pid


@pytest.mark.skipif(sys.platform == "win32", reason="fork workers are POSIX-only")
class TestGraftingUnderFailure:
    def test_hedged_loser_never_grafts(self, warehouse, tmp_path):
        """The losing twin of a hedged request completes late: its
        request span is marked hedge-lost and its child spans are
        dropped — only the winning attempt's children graft, and the
        exported trace stays orphan-free."""
        from repro.resilience.faults import FaultInjector, fault_scope

        injector = FaultInjector(seed=3)
        injector.arm("worker.hang", "delay", delay=0.8, times=1)
        config = ServiceConfig(
            max_workers=2,
            worker_mode="fork",
            snapshot_dir=str(tmp_path / "snaps"),
            supervise=True,
            heartbeat_interval=0.05,
            hang_timeout=10.0,
            hedge_after=0.15,
        )
        with fault_scope(injector):
            with trace_scope() as tracer:
                with warehouse.serve(config) as service:
                    import time

                    deadline = time.monotonic() + 5.0
                    while (
                        service.supervisor.alive_children()
                        < config.max_workers
                    ):
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    rows = service.query(
                        "SELECT ?s ?n WHERE { ?s dm:hasName ?n }", timeout=60
                    )
                    assert len(rows) > 0
                    snap = service.metrics_snapshot()
        assert snap["hedged"] >= 1
        spans = tracer.spans()
        named = spans_by_name(tracer)
        attempts = named["request"]
        winners = [
            s for s in attempts if s.attrs.get("outcome") != "hedge-lost"
        ]
        losers = [
            s for s in attempts if s.attrs.get("outcome") == "hedge-lost"
        ]
        assert len(winners) == 1 and len(losers) >= 1
        # exactly one dispatch, grafted under the winner; losers childless
        (dispatch,) = named["fork-dispatch"]
        assert dispatch.parent_id == winners[0].span_id
        for loser in losers:
            assert children_of(spans, loser) == []
        validate_chrome_trace(tracer.to_chrome())

    def test_worker_lost_requeue_leaves_no_orphans(self, warehouse, tmp_path):
        """Every attempt lands on a worker that dies mid-request: the
        dead children never ship spans, the in-process fallback's spans
        graft under the winning attempt, and the trace validates."""
        from repro.resilience.faults import FaultInjector, fault_scope

        injector = FaultInjector(seed=1)
        injector.arm("worker.crash", "raise", times=1)
        config = ServiceConfig(
            max_workers=1,
            worker_mode="fork",
            snapshot_dir=str(tmp_path / "snaps"),
            supervise=True,
            heartbeat_interval=0.1,
            max_attempts=3,
        )
        with fault_scope(injector):
            with trace_scope() as tracer:
                with warehouse.serve(config) as service:
                    rows = service.query(
                        "SELECT ?s ?n WHERE { ?s dm:hasName ?n }", timeout=60
                    )
                    assert len(rows) > 0
                    assert getattr(rows, "degraded", False) is True
                    snap = service.metrics_snapshot()
        assert snap["worker_lost"] == 3 and snap["requeued"] == 2
        spans = tracer.spans()
        named = spans_by_name(tracer)
        # crashed children died before shipping extras: nothing grafted
        assert "fork-dispatch" not in named
        # only the winning (fallback) attempt has child spans
        with_children = [
            s for s in named["request"] if children_of(spans, s)
        ]
        assert len(with_children) == 1
        validate_chrome_trace(tracer.to_chrome())


@pytest.fixture(scope="module")
def warehouse():
    from repro.synth import LandscapeConfig, generate_landscape

    land = generate_landscape(LandscapeConfig.tiny(seed=11))
    return land.warehouse


class TestUnifiedSlowQueryLog:
    def test_slow_sharded_request_logged_once_at_gateway(self):
        mdw, items, _names = three_shard_chain()
        with thread_service(
            mdw, n_shards=3, slow_query_threshold=1e-9
        ) as svc:
            svc.lineage(items[0], direction="downstream")
            gateway_entries = svc.metrics.slow_queries.entries()
            shard_entries = [
                e
                for i in range(3)
                for e in svc.shard_service(i).metrics.slow_queries.entries()
            ]
        (entry,) = gateway_entries
        assert entry.kind == "lineage"
        assert entry.request_id.startswith("g-")
        assert "shard0=" in entry.statement  # per-shard timing breakdown
        # shard-local slow logs are off: one entry fleet-wide, not N
        assert shard_entries == []

    def test_failed_shards_named_in_the_entry(self):
        mdw, items, _names = three_shard_chain()
        owner = shard_of(items[0], 3)
        with thread_service(
            mdw,
            n_shards=3,
            slow_query_threshold=1e-9,
            shard_breaker_threshold=1,
        ) as svc:
            svc.shard_service(owner).close()
            svc.lineage(items[0], direction="downstream")
            (entry,) = svc.metrics.slow_queries.entries()
        assert f"failed shards: [{owner}]" in entry.statement

    def test_fast_requests_not_logged(self):
        mdw, items, _names = three_shard_chain()
        with thread_service(mdw, n_shards=3, slow_query_threshold=60.0) as svc:
            svc.lineage(items[0], direction="downstream")
            assert svc.metrics.slow_queries.entries() == []

    def test_worker_lost_attribution_still_logged_on_shards(self):
        """log_slow_queries=False silences only the latency log; the
        WorkerLost casualty entries keep their shard-local attribution
        (they carry evidence the gateway never sees)."""
        from repro.server.service import QueryService

        mdw, _items, _names = three_shard_chain()
        with thread_service(mdw, n_shards=2) as svc:
            shard = svc.shard_service(0)
            assert isinstance(shard, QueryService)
            assert shard.config.log_slow_queries is False
            assert shard.config.slow_query_threshold > 0


class TestDegradedAttribution:
    def test_degraded_counter_names_the_failed_shard(self):
        mdw, _items, _names = three_shard_chain()
        with thread_service(
            mdw,
            n_shards=3,
            name="degraded-attr-test",
            shard_breaker_threshold=1,
        ) as svc:
            svc.shard_service(1).close()
            got = svc.search("n0", regex=True)
        assert got.degraded
        counter = get_registry().counter(
            "mdw_service_degraded_total", labels=("service", "kind", "shard")
        )
        assert (
            counter.child(
                service="degraded-attr-test", kind="search", shard="1"
            ).value
            >= 1
        )
        # healthy shards are not blamed
        assert (
            counter.child(
                service="degraded-attr-test", kind="search", shard="0"
            ).value
            == 0
        )


class TestFleetSloAndJournal:
    def test_health_carries_per_shard_slis(self):
        mdw, items, _names = three_shard_chain()
        with thread_service(mdw, n_shards=3, name="slo-health-test") as svc:
            for _ in range(3):
                svc.lineage(items[0], direction="downstream")
            health = svc.health()
        report = health["slo"]
        services = report["services"]
        assert "slo-health-test" in services  # the gateway itself
        for i in range(3):
            row = services[f"slo-health-test-shard{i}"]
            assert row["shard"] == str(i)
            assert row["attempted"] > 0
            assert row["availability"] == 1.0
        assert any(
            row["slo"] == "availability" and row["budget_remaining"] == 1.0
            for row in report["slos"]
        )

    def test_shard_replace_and_breaker_reach_the_journal(self):
        mdw, _items, _names = three_shard_chain()
        journal = get_journal()
        before = len(journal.events(kind="shard-replace"))
        with thread_service(
            mdw,
            n_shards=2,
            name="journal-test",
            shard_breaker_threshold=1,
        ) as svc:
            svc.shard_service(0).close()
            svc.search("n0", regex=True)  # opens the client breaker
            svc.replace_shard(0)
        replaces = journal.events(kind="shard-replace", service="journal-test")
        assert len(journal.events(kind="shard-replace")) > before
        assert replaces and replaces[-1].shard == "0"
        breaker_events = [
            e
            for e in journal.events(kind="breaker")
            if e.attrs.get("breaker") == "shard-0" and e.attrs.get("to") == "open"
        ]
        assert breaker_events and breaker_events[-1].severity == "warning"

    def test_rebalance_reaches_the_journal(self):
        mdw, _items, _names = three_shard_chain()
        with thread_service(mdw, n_shards=2, name="rebalance-journal") as svc:
            node = mdw.schema.declare_class("Extra")
            mdw.facts.add_instance("rebalance_extra", node)
            outcome = svc.rebalance(mdw.store)
        events = get_journal().events(
            kind="shard-rebalance", service="rebalance-journal"
        )
        assert events and events[-1].attrs["changed"] == outcome["changed"]
