"""Query profiles: operator stats, cache counters, merge, render."""

from repro.obs.profile import (
    QueryProfile,
    count_rows,
    current_profile,
    profile_scope,
)


def test_profile_scope_installs_and_restores():
    assert current_profile() is None
    with profile_scope() as prof:
        assert current_profile() is prof
        prof.count("bgps")
        prof.count("dict_lookups", 3)
    assert current_profile() is None
    assert prof.bgps == 1
    assert prof.dict_lookups == 3


def test_count_rows_records_consumed_rows():
    prof = QueryProfile()
    stats = prof.operator("path", detail="?a / ?b")
    assert list(count_rows(iter(range(5)), stats)) == [0, 1, 2, 3, 4]
    assert stats.rows_out == 5


def test_count_rows_records_on_early_exit():
    prof = QueryProfile()
    stats = prof.operator("path")
    gen = count_rows(iter(range(100)), stats)
    next(gen)
    next(gen)
    gen.close()  # LIMIT / cancellation abandons the stream
    assert stats.rows_out == 2


def test_snapshot_merge_round_trip():
    child = QueryProfile()
    child.count("bgps")
    child.count("rows_out", 11)
    child.count("plan_cache_hits")
    child.count("hierarchy_cache_misses", 2)
    child.operator("hash-join", detail="?s ?p ?o", rows_in=4, rows_out=11,
                   seconds=0.002)
    shipped = child.snapshot()  # what a fork worker sends back

    parent = QueryProfile()
    parent.count("rows_out", 1)
    parent.merge_snapshot(shipped)
    assert parent.bgps == 1
    assert parent.rows_out == 12
    assert parent.plan_cache_hits == 1
    assert parent.hierarchy_cache_misses == 2
    (op,) = parent.operators
    assert (op.op, op.rows_in, op.rows_out) == ("hash-join", 4, 11)


def test_render_mentions_operators_and_caches():
    prof = QueryProfile()
    prof.count("bgps")
    prof.count("rows_out", 50)
    prof.count("plan_cache_hits")
    prof.count("regex_cache_misses")
    prof.operator("scan", detail="?t a dm:Table", rows_in=1, rows_out=50)
    text = prof.render()
    assert "1 BGP(s), 50 row(s) out" in text
    assert "scan ?t a dm:Table: 1 -> 50 rows" in text
    assert "plan 1/1" in text
    assert "regex 0/1" in text


def test_render_empty_profile_is_still_valid():
    text = QueryProfile().render()
    assert "0 BGP(s), 0 row(s) out" in text
    assert "dictionary lookups: 0" in text
