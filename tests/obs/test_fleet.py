"""Fleet observability units: event journal, SLO engine, trace validator.

The SLO engine runs against a private registry and a fake clock, so the
rolling-window and error-budget arithmetic is pinned exactly — no real
time, no real serving tier.
"""

import json

import pytest

from repro.obs import (
    EventJournal,
    SLOTarget,
    SloEngine,
    TraceValidationError,
    Tracer,
    get_journal,
    validate_chrome_trace,
)
from repro.obs.registry import MetricsRegistry


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestEventJournal:
    def test_record_and_filter(self):
        clock = FakeClock(100.0)
        journal = EventJournal(capacity=8, clock=clock)
        journal.record(
            "breaker", severity="warning", shard="0", breaker="search", to="open"
        )
        clock.advance(1.0)
        journal.record(
            "worker-restart",
            severity="warning",
            service="svc",
            shard=1,  # non-string shard is coerced
            reason="crash",
        )
        journal.record("shard-replace", service="svc", shard="1")
        assert len(journal) == 3
        warnings = journal.events(severity="warning")
        assert [e.kind for e in warnings] == ["breaker", "worker-restart"]
        (restart,) = journal.events(shard="1", kind="worker-restart")
        assert restart.attrs["reason"] == "crash"
        assert restart.ts == 101.0
        assert journal.events(limit=1)[0].kind == "shard-replace"  # newest

    def test_capacity_bound_counts_dropped(self):
        journal = EventJournal(capacity=2)
        for i in range(5):
            journal.record("e", seq=i)
        assert len(journal) == 2
        assert journal.dropped == 3
        assert [e.attrs["seq"] for e in journal.events()] == [3, 4]

    def test_jsonl_round_trip(self):
        journal = EventJournal(clock=FakeClock(5.0))
        journal.record(
            "slo-burn",
            severity="warning",
            service="svc",
            shard="0",
            slo="latency-fast",
            burn_rate=3.5,
        )
        docs = [json.loads(line) for line in journal.to_jsonl().splitlines()]
        assert docs == [
            {
                "ts": 5.0,
                "kind": "slo-burn",
                "severity": "warning",
                "service": "svc",
                "shard": "0",
                "slo": "latency-fast",
                "burn_rate": 3.5,
            }
        ]

    def test_drain_empties_the_ring(self):
        journal = EventJournal()
        journal.record("a")
        assert [e.kind for e in journal.drain()] == ["a"]
        assert len(journal) == 0

    def test_process_global_journal_is_a_singleton(self):
        assert get_journal() is get_journal()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


def _families(reg):
    req = reg.counter(
        "mdw_service_requests_total", "h", labels=("service", "event", "shard")
    )
    lat = reg.histogram(
        "mdw_request_latency_seconds", "h", labels=("service", "kind", "shard")
    )
    deg = reg.counter(
        "mdw_service_degraded_total", "h", labels=("service", "kind", "shard")
    )
    return req, lat, deg


def _engine(reg, clock, journal=None, **overrides):
    settings = dict(
        window=100.0,
        targets=(SLOTarget("avail", sli="availability", objective=0.9),),
        clock=clock,
        journal=journal if journal is not None else EventJournal(clock=clock),
    )
    settings.update(overrides)
    return SloEngine(reg, **settings)


class TestSloEngineBudgetMath:
    def test_availability_error_budget_under_fake_clock(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(reg, clock)
        req, lat, _ = _families(reg)
        for _ in range(90):
            req.inc(service="svc", event="completed", shard="0")
            lat.observe(0.01, service="svc", kind="search", shard="0")
        for _ in range(10):
            req.inc(service="svc", event="failed", shard="0")
            lat.observe(0.01, service="svc", kind="search", shard="0")
        clock.advance(50.0)
        report = engine.report()
        assert report["window"] == pytest.approx(50.0)
        row = report["services"]["svc"]
        assert row["attempted"] == 100
        assert row["completed"] == 90
        assert row["failed"] == 10
        assert row["availability"] == pytest.approx(0.9)
        assert row["throughput"] == pytest.approx(2.0)
        # objective 0.9 allows exactly a 10% error rate: the observed
        # 10/100 burns at exactly 1.0x and spends the whole budget
        (slo,) = report["slos"]
        assert slo["good"] == 90 and slo["bad"] == 10
        assert slo["error_rate"] == pytest.approx(0.1)
        assert slo["burn_rate"] == pytest.approx(1.0)
        assert slo["budget_remaining"] == pytest.approx(0.0)

    def test_half_spent_budget(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(reg, clock)
        req, _, _ = _families(reg)
        for _ in range(95):
            req.inc(service="svc", event="completed", shard="0")
        for _ in range(5):
            req.inc(service="svc", event="failed", shard="0")
        clock.advance(10.0)
        (slo,) = engine.report()["slos"]
        # 5 bad of an allowed 10: half the budget left, burning at 0.5x
        assert slo["burn_rate"] == pytest.approx(0.5)
        assert slo["budget_remaining"] == pytest.approx(0.5)

    def test_latency_sli_counts_threshold_buckets(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(
            reg,
            clock,
            targets=(
                SLOTarget("fast", sli="latency", objective=0.9, threshold=0.25),
            ),
        )
        req, lat, _ = _families(reg)
        for _ in range(9):
            lat.observe(0.01, service="svc", kind="search", shard="0")
        lat.observe(1.0, service="svc", kind="search", shard="0")
        clock.advance(10.0)
        report = engine.report()
        (slo,) = report["slos"]
        assert slo["good"] == 9 and slo["bad"] == 1
        assert slo["burn_rate"] == pytest.approx(1.0)
        assert report["services"]["svc"]["latency"]["p50"] <= 0.25
        assert report["services"]["svc"]["latency"]["p99"] >= 1.0

    def test_degraded_sli(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(
            reg,
            clock,
            targets=(SLOTarget("full", sli="degraded", objective=0.5),),
        )
        req, _, deg = _families(reg)
        for _ in range(4):
            req.inc(service="svc", event="completed", shard="0")
        deg.inc(service="svc", kind="search", shard="0")
        clock.advance(10.0)
        (slo,) = engine.report()["slos"]
        assert slo["good"] == 3 and slo["bad"] == 1
        assert slo["error_rate"] == pytest.approx(0.25)
        assert slo["burn_rate"] == pytest.approx(0.5)

    def test_old_failures_age_out_of_the_window(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(reg, clock, window=100.0)
        req, _, _ = _families(reg)
        for _ in range(10):
            req.inc(service="svc", event="failed", shard="0")
        clock.advance(10.0)
        assert engine.report()["services"]["svc"]["availability"] == 0.0
        # two windows later the failures are history: budget restored
        clock.advance(200.0)
        report = engine.report()
        row = report["services"]["svc"]
        assert row["attempted"] == 0
        assert row["availability"] == 1.0
        (slo,) = report["slos"]
        assert slo["budget_remaining"] == 1.0

    def test_service_prefix_filters_foreign_series(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(reg, clock, service_prefix="fleet")
        req, _, _ = _families(reg)
        req.inc(service="fleet-shard0", event="completed", shard="0")
        req.inc(service="other", event="completed", shard="")
        clock.advance(1.0)
        assert set(engine.report()["services"]) == {"fleet-shard0"}

    def test_gauges_exported_to_the_registry(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(reg, clock)
        req, _, _ = _families(reg)
        req.inc(service="svc", event="completed", shard="0")
        clock.advance(1.0)
        engine.report()
        avail = reg.gauge("mdw_slo_availability", labels=("service", "shard"))
        assert avail.child(service="svc", shard="0").value == 1.0
        budget = reg.gauge(
            "mdw_slo_error_budget_remaining", labels=("slo", "service", "shard")
        )
        assert budget.child(slo="avail", service="svc", shard="0").value == 1.0

    def test_burn_alert_is_edge_triggered(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        journal = EventJournal(clock=clock)
        engine = _engine(reg, clock, journal=journal, burn_alert=2.0)
        req, _, _ = _families(reg)
        req.inc(service="svc", event="completed", shard="0")
        clock.advance(1.0)
        engine.report()
        assert journal.events(kind="slo-burn") == []
        # objective 0.9 budgets a 10% error rate; 3 failures in 4
        # requests burns at 7.5x — one alert, not one per report
        for _ in range(3):
            req.inc(service="svc", event="failed", shard="0")
        clock.advance(1.0)
        engine.report()
        clock.advance(1.0)
        engine.report()
        burns = journal.events(kind="slo-burn")
        assert len(burns) == 1
        assert burns[0].severity == "warning"
        assert burns[0].attrs["slo"] == "avail"
        assert burns[0].attrs["burn_rate"] >= 2.0
        # recovery re-arms the edge: a later storm alerts again
        clock.advance(300.0)
        engine.report()
        for _ in range(5):
            req.inc(service="svc", event="failed", shard="0")
        clock.advance(1.0)
        engine.report()
        assert len(journal.events(kind="slo-burn")) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError, match="window"):
            SloEngine(MetricsRegistry(), window=0.0)
        with pytest.raises(ValueError, match="unique"):
            SloEngine(
                MetricsRegistry(),
                targets=(SLOTarget("x"), SLOTarget("x", sli="latency")),
            )
        with pytest.raises(ValueError, match="unknown SLI"):
            SLOTarget("x", sli="saturation")
        with pytest.raises(ValueError, match="objective"):
            SLOTarget("x", objective=1.0)


class TestValidateChromeTrace:
    def _nested(self):
        tracer = Tracer()
        with tracer.span("request", "gateway"):
            with tracer.span("frontier", "gateway"):
                with tracer.span("operator", "lineage"):
                    pass
        return tracer

    def test_valid_nesting_passes(self):
        summary = validate_chrome_trace(self._nested().to_chrome())
        assert summary["events"] == 3
        assert summary["roots"] == 1
        assert summary["names"] == ["frontier", "operator", "request"]
        assert summary["pids"] == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError, match="no traceEvents"):
            validate_chrome_trace({"traceEvents": []})

    def test_orphan_parent_rejected(self):
        data = self._nested().to_chrome()
        data["traceEvents"][0]["args"]["parent_id"] = "dead-beef"
        with pytest.raises(TraceValidationError, match="unknown parent"):
            validate_chrome_trace(data)

    def test_duplicate_span_id_rejected(self):
        data = self._nested().to_chrome()
        dup = data["traceEvents"][0]["args"]["span_id"]
        data["traceEvents"][1]["args"]["span_id"] = dup
        with pytest.raises(TraceValidationError, match="duplicate"):
            validate_chrome_trace(data)

    def test_temporal_escape_rejected(self):
        data = self._nested().to_chrome()
        # push a child outside its parent's [ts, ts+dur] envelope
        child = next(
            e for e in data["traceEvents"] if e["args"].get("parent_id")
        )
        child["ts"] += 10_000_000
        with pytest.raises(TraceValidationError, match="temporally"):
            validate_chrome_trace(data)
