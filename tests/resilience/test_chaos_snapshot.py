"""Snapshot storage chaos: crash-during-save/attach must be harmless."""

from repro.resilience.chaos import SNAPSHOT_SITES, run_snapshot_chaos
from repro.resilience.faults import FAULT_POINTS


def test_snapshot_sites_are_registered_fault_points():
    for site in SNAPSHOT_SITES:
        assert site in FAULT_POINTS


def test_snapshot_chaos_converges():
    report = run_snapshot_chaos(seed=7, iterations=3, documents=2, instances=5)
    assert len(report.iterations) == 3
    assert report.crashes == 3  # every iteration arms a firing site
    assert report.ok, report.summary()
    for it in report.iterations:
        assert it.site in SNAPSHOT_SITES
        assert it.recovery_action in ("retry-save", "retry-attach")


def test_snapshot_chaos_is_deterministic_per_seed():
    a = run_snapshot_chaos(seed=3, iterations=2, documents=2, instances=4)
    b = run_snapshot_chaos(seed=3, iterations=2, documents=2, instances=4)
    assert [it.site for it in a.iterations] == [it.site for it in b.iterations]
    assert a.ok and b.ok
