"""Supervisor chaos: SIGKILL fork workers under load, lose nothing.

The heavyweight loop (more iterations, more kills) runs in CI via
``repro-mdw chaos --supervisor``; this is the fast regression slice of
the same harness — real kills, real respawns, bit-identical answers.
"""

import sys

import pytest

from repro.resilience.chaos import SUPERVISOR_SITE, run_supervisor_chaos

pytestmark = pytest.mark.skipif(
    sys.platform.startswith("win"), reason="fork start method required"
)


def test_supervisor_chaos_converges():
    report = run_supervisor_chaos(seed=7, iterations=2, n_ops=24, kills=2)
    assert report.ok, report.summary()
    assert len(report.iterations) == 2
    # the harness actually killed workers (otherwise it tested nothing)
    assert report.crashes >= 1
    for iteration in report.iterations:
        assert iteration.site == SUPERVISOR_SITE
        assert iteration.recovery_action == "respawn"
        assert iteration.converged


def test_supervisor_chaos_is_deterministic_per_seed():
    first = run_supervisor_chaos(seed=11, iterations=1, n_ops=16, kills=1)
    second = run_supervisor_chaos(seed=11, iterations=1, n_ops=16, kills=1)
    assert first.ok and second.ok
    assert [it.seed for it in first.iterations] == [
        it.seed for it in second.iterations
    ]
