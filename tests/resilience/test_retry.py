"""Retry policy: backoff math, jitter bounds, exhaustion — no real sleeping."""

import random

import pytest

from repro.resilience import RetryExhausted, RetryPolicy


class FakeClock:
    """A sleep that records instead of waiting."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_rejects_full_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        assert [policy.backoff(k) for k in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0)
        assert policy.backoff(3) == 5.0

    def test_jittered_backoff_stays_within_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.25)
        rng = random.Random(7)
        for attempt in range(5):
            lo, hi = policy.backoff_bounds(attempt)
            for _ in range(200):
                assert lo <= policy.backoff(attempt, rng) <= hi

    def test_jitter_is_deterministic_under_seeded_rng(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        a = [policy.backoff(k, random.Random(42)) for k in range(3)]
        b = [policy.backoff(k, random.Random(42)) for k in range(3)]
        assert a == b


class TestCall:
    def test_returns_first_success_without_sleeping(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42, sleep=clock.sleep) == 42
        assert clock.sleeps == []

    def test_retries_then_succeeds(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        assert policy.call(flaky, sleep=clock.sleep) == "ok"
        assert len(attempts) == 3
        assert clock.sleeps == [0.1, 0.2]

    def test_exhaustion_wraps_last_error_and_counts_attempts(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)

        def always():
            raise ValueError("permanently malformed")

        with pytest.raises(RetryExhausted) as err:
            policy.call(always, sleep=clock.sleep)
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, ValueError)
        # sleeps only between attempts, never after the last one
        assert clock.sleeps == [0.1, 0.2]

    def test_non_retryable_error_propagates_immediately(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=5, base_delay=0.1)
        with pytest.raises(KeyError):
            policy.call(
                lambda: (_ for _ in ()).throw(KeyError("nope")),
                retry_on=(ValueError,),
                sleep=clock.sleep,
            )
        assert clock.sleeps == []

    def test_max_attempts_one_means_no_retry(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=1)
        with pytest.raises(RetryExhausted):
            policy.call(lambda: 1 / 0, retry_on=(ZeroDivisionError,), sleep=clock.sleep)
        assert clock.sleeps == []

    def test_on_retry_observes_each_scheduled_retry(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        observed = []

        def always():
            raise ValueError("boom")

        with pytest.raises(RetryExhausted):
            policy.call(
                always,
                sleep=clock.sleep,
                on_retry=lambda attempt, exc, delay: observed.append(
                    (attempt, type(exc).__name__, delay)
                ),
            )
        assert observed == [(0, "ValueError", 0.1), (1, "ValueError", 0.2)]
