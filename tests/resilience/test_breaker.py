"""Circuit breaker state machine under a fake clock — zero real waiting."""

import pytest

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def tripped(clock, threshold=3, cooldown=10.0, **kwargs):
    breaker = CircuitBreaker(
        "search", threshold=threshold, cooldown=cooldown, clock=clock, **kwargs
    )
    for _ in range(threshold):
        breaker.on_failure()
    return breaker


class TestClosedState:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker("q", clock=clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker("q", threshold=3, clock=clock)
        breaker.on_failure()
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        breaker.on_failure()
        assert breaker.state == CLOSED  # never 3 *consecutive* failures

    def test_trips_open_at_threshold(self, clock):
        breaker = tripped(clock, threshold=3)
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("q", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("q", cooldown=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker("q", half_open_probes=0)


class TestOpenState:
    def test_sheds_until_cooldown_elapses(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        clock.advance(9.9)
        assert not breaker.allow()

    def test_retry_after_counts_down(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)

    def test_shed_counter_in_snapshot(self, clock):
        breaker = tripped(clock)
        breaker.allow()
        breaker.allow()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["shed"] == 2
        assert snap["opens"] == 1


class TestHalfOpenState:
    def test_cooldown_elapsed_admits_one_probe(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # rationed: only one probe in flight

    def test_probe_success_closes(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.allow()  # probes again after the second cooldown

    def test_release_returns_the_probe_slot(self, clock):
        breaker = tripped(clock, cooldown=10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.release()  # the probe never ran (queue full, cancelled)
        assert breaker.allow()

    def test_multiple_probe_slots(self, clock):
        breaker = tripped(clock, cooldown=10.0, half_open_probes=2)
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()


class TestOperatorOverride:
    def test_reset_force_closes(self, clock):
        breaker = tripped(clock)
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()
