"""The durable log, the load journal, and the audit file sink."""

import json

import pytest

from repro.core.audit import AuditJournal
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Triple
from repro.resilience import (
    DurableLog,
    JournalError,
    LoadJournal,
    pending_transaction,
    read_transactions,
)

EX = "http://example.org/"


def triple(n):
    return Triple(IRI(EX + f"s{n}"), IRI(EX + "p"), Literal(f"v{n}"))


class TestDurableLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with DurableLog(path, durable=False) as log:
            log.append({"type": "a", "n": 1})
            log.append({"type": "b", "n": 2})
            log.checkpoint()
        assert DurableLog.read(path) == [{"type": "a", "n": 1}, {"type": "b", "n": 2}]

    def test_append_after_close_raises(self, tmp_path):
        log = DurableLog(tmp_path / "log.jsonl", durable=False)
        log.close()
        with pytest.raises(JournalError):
            log.append({"type": "a"})

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"type": "a"}\n{"type": "b"}\n{"type": "c", "tru', encoding="utf-8")
        assert DurableLog.read(path) == [{"type": "a"}, {"type": "b"}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"type": "a"}\nGARBAGE\n{"type": "b"}\n', encoding="utf-8")
        with pytest.raises(JournalError):
            DurableLog.read(path)

    def test_append_is_reopenable(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with DurableLog(path, durable=False) as log:
            log.append({"n": 1})
        with DurableLog(path, durable=False) as log:
            log.append({"n": 2})
        assert [r["n"] for r in DurableLog.read(path)] == [1, 2]

    def test_counters(self, tmp_path):
        log = DurableLog(tmp_path / "log.jsonl", durable=False)
        log.append({"n": 1})
        log.checkpoint()
        log.checkpoint()
        assert log.appended == 1
        assert log.checkpoints == 2
        log.close()


ROWS = [
    [f"<{EX}s{n}>", f"<{EX}p>", f'"v{n}"', "feed-a"] for n in range(6)
]


def journal_a_load(path, commit=True, checkpoints=2, durable=False):
    """Write one transaction: begin(2 batches of 3) + checkpoints [+ commit]."""
    journal = LoadJournal(path, durable=durable)
    journal.begin("load-1-TEST", "TEST", 17, [ROWS[:3], ROWS[3:]])
    journal.quarantine(["bad", "row", "here", "feed-b"], "no angle brackets", "malformed-term")
    for index in range(checkpoints):
        journal.checkpoint(index, inserted=3, duplicates=0)
    if commit:
        journal.commit(inserted=6, duplicates=0, quarantined=1)
    journal.close()
    return path


class TestLoadJournal:
    def test_committed_transaction_roundtrip(self, tmp_path):
        path = journal_a_load(tmp_path / "load.journal")
        (txn,) = read_transactions(path)
        assert txn.load_id == "load-1-TEST"
        assert txn.model == "TEST"
        assert txn.generation == 17
        assert txn.expected_batches == 2
        assert txn.batches[0] == ROWS[:3]
        assert txn.batches[1] == ROWS[3:]
        assert txn.checkpointed == [0, 1]
        assert txn.committed and txn.complete
        assert [q["code"] for q in txn.quarantined] == ["malformed-term"]

    def test_committed_load_is_not_pending(self, tmp_path):
        path = journal_a_load(tmp_path / "load.journal")
        assert pending_transaction(path) is None

    def test_uncommitted_load_is_pending(self, tmp_path):
        path = journal_a_load(tmp_path / "load.journal", commit=False, checkpoints=1)
        txn = pending_transaction(path)
        assert txn is not None
        assert txn.last_checkpoint == 0

    def test_replay_rows_full_and_from_checkpoint(self, tmp_path):
        path = journal_a_load(tmp_path / "load.journal", commit=False, checkpoints=1)
        txn = pending_transaction(path)
        assert list(txn.replay_rows()) == ROWS
        assert list(txn.replay_rows(from_checkpoint=True)) == ROWS[3:]

    def test_recovered_seal_completes_the_transaction(self, tmp_path):
        path = journal_a_load(tmp_path / "load.journal", commit=False)
        with LoadJournal(path, durable=False) as journal:
            journal.recovered("load-1-TEST", 2)
        assert pending_transaction(path) is None

    def test_record_before_begin_raises(self, tmp_path):
        path = tmp_path / "load.journal"
        path.write_text(json.dumps({"type": "checkpoint", "batch": 0}) + "\n")
        with pytest.raises(JournalError):
            read_transactions(path)

    def test_multiple_transactions_only_last_pending(self, tmp_path):
        path = tmp_path / "load.journal"
        journal_a_load(path)  # committed
        with LoadJournal(path, durable=False) as journal:
            journal.begin("load-2-TEST", "TEST", 42, [ROWS[:2]])
        txn = pending_transaction(path)
        assert txn.load_id == "load-2-TEST"

    def test_retry_records_are_diagnostics_only(self, tmp_path):
        path = tmp_path / "load.journal"
        with LoadJournal(path, durable=False) as journal:
            journal.begin("load-3-TEST", "TEST", 0, [ROWS[:1]])
            journal.retry(0, 0, "flaky mount", 0.05)
        (txn,) = read_transactions(path)
        assert not txn.complete  # retry records change nothing structural


class TestAuditFileSink:
    def test_changes_tail_to_the_sink(self, tmp_path):
        graph = Graph(name="audited")
        journal = AuditJournal(graph)
        path = tmp_path / "audit.jsonl"
        journal.attach_file_sink(path, durable=False)
        graph.add(triple(1))
        graph.add(triple(2))
        graph.discard(triple(1))
        journal.checkpoint()
        journal.close()
        records = DurableLog.read(path)
        assert [r["action"] for r in records] == ["add", "add", "remove"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[0]["epoch"] == "initial"

    def test_second_sink_rejected(self, tmp_path):
        journal = AuditJournal(Graph(name="audited"))
        journal.attach_file_sink(tmp_path / "a.jsonl", durable=False)
        with pytest.raises(ValueError):
            journal.attach_file_sink(tmp_path / "b.jsonl", durable=False)
        journal.close()

    def test_sink_records_epoch_and_request_id(self, tmp_path):
        graph = Graph(name="audited")
        journal = AuditJournal(graph)
        path = tmp_path / "audit.jsonl"
        journal.attach_file_sink(path, durable=False)
        journal.begin_epoch("release 2026.R2")
        with journal.request_context("w-9"):
            graph.add(triple(3))
        journal.close()
        (record,) = DurableLog.read(path)
        assert record["epoch"] == "release 2026.R2"
        assert record["request_id"] == "w-9"

    def test_close_closes_the_sink(self, tmp_path):
        graph = Graph(name="audited")
        journal = AuditJournal(graph)
        sink = journal.attach_file_sink(tmp_path / "audit.jsonl", durable=False)
        journal.close()
        with pytest.raises(JournalError):
            sink.append({"n": 1})
