"""Kill-at-every-fault-point crash recovery: bit-identical convergence.

The contract under test is the strongest the subsystem makes: a load
killed at *any* fault point, recovered through the journal (or re-run
when the journal never opened), converges to exactly the state an
uninterrupted load produces — same triples, same entailment indexes,
same answers, and a coherent plan cache.
"""

import pytest

from repro.core.warehouse import MetadataWarehouse
from repro.rdf.bulkload import BulkLoadError, BulkLoader
from repro.rdf.ntriples import serialize_ntriples
from repro.rdf.staging import StagingTable
from repro.resilience import (
    FaultInjector,
    InjectedFault,
    LoadJournal,
    QuarantineStore,
    ResilientBulkLoader,
    RetryPolicy,
    recover,
    rollback_to_snapshot,
)
from repro.resilience.chaos import LOAD_SITES
from repro.resilience.faults import fault_scope
from repro.resilience.quarantine import MALFORMED_TERM, TRANSIENT_EXHAUSTED

EX = "http://example.org/"

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

#: fault points reached by a direct ResilientBulkLoader.load (no ETL
#: around it, so no staging/validate/index sites)
LOADER_SITES = [
    "bulkload.parse",
    "journal.begin",
    "bulkload.batch",
    "journal.checkpoint",
    "bulkload.commit",
]


def fill_staging(rows=20):
    staging = StagingTable(name="feed")
    for n in range(rows):
        staging.insert(f"<{EX}s{n}>", f"<{EX}p>", f'"v{n}"', source="feed-a")
    return staging


def resilient_load(journal_path, rows=20, batch_size=4, injector=None):
    """One journaled load into a fresh store; returns (store, report-or-fault)."""
    mdw = MetadataWarehouse()
    journal = LoadJournal(journal_path, durable=False)
    loader = ResilientBulkLoader(
        mdw.store,
        journal,
        retry=FAST_RETRY,
        batch_size=batch_size,
        sleep=lambda _s: None,
    )
    fault = None
    try:
        if injector is not None:
            with fault_scope(injector):
                loader.load(fill_staging(rows), mdw.model_name)
        else:
            loader.load(fill_staging(rows), mdw.model_name)
    except InjectedFault as exc:
        fault = exc
    journal.close()
    return mdw, fault


class TestKillAtEveryFaultPoint:
    @pytest.fixture(scope="class")
    def expected(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ref") / "ref.journal"
        mdw, fault = resilient_load(path)
        assert fault is None
        return serialize_ntriples(mdw.graph)

    @pytest.mark.parametrize("site", LOADER_SITES)
    @pytest.mark.parametrize("skip", [0, 1])
    def test_recover_converges_bit_identically(self, tmp_path, expected, site, skip):
        injector = FaultInjector(seed=1)
        injector.arm(site, "raise", times=1, skip=skip)
        journal_path = tmp_path / "crash.journal"
        mdw, fault = resilient_load(journal_path, injector=injector)

        if fault is None:
            # skip exceeded the site's hit count (e.g. commit fires once):
            # the load simply succeeded — already converged
            assert serialize_ntriples(mdw.graph) == expected
            return

        report = recover(mdw, journal_path, durable=False)
        if report.action in ("none", "void"):
            # crashed before the write-ahead: model must be untouched,
            # and a plain re-run must converge
            assert len(mdw.graph) == 0
            mdw, fault2 = resilient_load(tmp_path / "rerun.journal")
            assert fault2 is None
        else:
            assert report.action == "replayed"
        assert serialize_ntriples(mdw.graph) == expected

        # recovery sealed (or never opened) the journal: recovering
        # again is a no-op and the converged state stays put
        assert recover(mdw, journal_path, durable=False).action == "none"
        assert serialize_ntriples(mdw.graph) == expected

    def test_in_process_resume_from_checkpoint(self, tmp_path, expected):
        injector = FaultInjector(seed=1)
        injector.arm("bulkload.batch", "raise", times=1, skip=3)
        journal_path = tmp_path / "crash.journal"
        mdw, fault = resilient_load(journal_path, injector=injector)
        assert fault is not None
        assert 0 < len(mdw.graph) < 20  # genuinely half-loaded

        # same process: the applied prefix is still in the graph, so the
        # cheap from_checkpoint resume suffices
        report = recover(mdw, journal_path, from_checkpoint=True, durable=False)
        assert report.action == "replayed"
        assert serialize_ntriples(mdw.graph) == expected


class TestIndexAndPlanCacheCoherence:
    def test_recovered_warehouse_answers_like_the_reference(self, tmp_path):
        query = "SELECT ?s ?v WHERE { ?s ?p ?v }"

        def build(journal_path, injector=None):
            mdw, fault = resilient_load(journal_path, injector=injector)
            return mdw, fault

        ref, fault = build(tmp_path / "ref.journal")
        assert fault is None
        ref.build_entailment_index("OWLPRIME")
        expected_index = serialize_ntriples(
            ref.store.index(ref.model_name, "OWLPRIME")
        )
        expected_rows = len(ref.query(query, rulebases=("OWLPRIME",)))

        injector = FaultInjector(seed=2)
        injector.arm("bulkload.batch", "raise", times=1, skip=2)
        crashed, fault = build(tmp_path / "crash.journal", injector=injector)
        assert fault is not None
        crashed.build_entailment_index("OWLPRIME")  # built over partial state
        recover(crashed, tmp_path / "crash.journal", durable=False)

        # recover() refreshed the stale index; answers match exactly,
        # through the plan cache both sides share per-warehouse
        assert not crashed.indexes.is_stale(crashed.model_name, "OWLPRIME")
        actual_index = serialize_ntriples(
            crashed.store.index(crashed.model_name, "OWLPRIME")
        )
        assert actual_index == expected_index
        assert len(crashed.query(query, rulebases=("OWLPRIME",))) == expected_rows
        assert len(crashed.query(query, rulebases=("OWLPRIME",))) == expected_rows


class TestRollbackToSnapshot:
    def test_half_load_voided_against_pinned_snapshot(self, tmp_path):
        from repro.server.snapshot import SnapshotManager

        mdw = MetadataWarehouse()
        staging = fill_staging(6)
        BulkLoader(mdw.store).load(staging, mdw.model_name)
        manager = SnapshotManager(mdw)
        with manager.read() as snap:
            baseline = serialize_ntriples(snap.warehouse.graph)

            # a half-load lands some genuinely new rows (batches past
            # the baseline's 6 duplicates) before dying
            injector = FaultInjector(seed=3)
            injector.arm("bulkload.batch", "raise", times=1, skip=4)
            journal = LoadJournal(tmp_path / "half.journal", durable=False)
            loader = ResilientBulkLoader(
                mdw.store, journal, retry=FAST_RETRY, batch_size=2,
                sleep=lambda _s: None,
            )
            with pytest.raises(InjectedFault):
                with fault_scope(injector):
                    loader.load(fill_staging(12), mdw.model_name)
            journal.close()
            assert serialize_ntriples(mdw.graph) != baseline

            changed = rollback_to_snapshot(mdw, snap)
            assert changed > 0
            assert serialize_ntriples(mdw.graph) == baseline
            # the pinned reader saw the frozen copy throughout
            assert serialize_ntriples(snap.warehouse.graph) == baseline

    def test_pinned_reader_never_sees_partial_generation(self, tmp_path):
        from repro.server.snapshot import SnapshotManager

        mdw = MetadataWarehouse()
        BulkLoader(mdw.store).load(fill_staging(5), mdw.model_name)
        manager = SnapshotManager(mdw)
        snap = manager.pin()
        before = serialize_ntriples(snap.warehouse.graph)
        generation = snap.generation

        injector = FaultInjector(seed=4)
        injector.arm("bulkload.batch", "raise", times=1, skip=4)
        journal = LoadJournal(tmp_path / "load.journal", durable=False)
        loader = ResilientBulkLoader(
            mdw.store, journal, retry=FAST_RETRY, batch_size=2,
            sleep=lambda _s: None,
        )
        with pytest.raises(InjectedFault):
            with fault_scope(injector):
                loader.load(fill_staging(10), mdw.model_name)
        journal.close()

        assert serialize_ntriples(mdw.graph) != before  # live is half-loaded
        assert snap.generation == generation
        assert serialize_ntriples(snap.warehouse.graph) == before
        manager.release(snap)


class TestQuarantine:
    def test_malformed_rows_divert_instead_of_aborting(self, tmp_path):
        mdw = MetadataWarehouse()
        staging = fill_staging(4)
        staging.insert("no-angle-brackets", f"<{EX}p>", '"v"', source="feed-bad")
        journal = LoadJournal(tmp_path / "load.journal", durable=False)
        quarantine = QuarantineStore(tmp_path / "quarantine.jsonl")
        loader = ResilientBulkLoader(
            mdw.store, journal, quarantine=quarantine, retry=FAST_RETRY,
            sleep=lambda _s: None,
        )
        report = loader.load(staging, mdw.model_name)
        journal.close()
        assert report.inserted == 4
        assert len(report.quarantined) == 1
        assert report.quarantined[0].code == MALFORMED_TERM
        assert "quarantined" in report.summary()

        # persistent: a fresh store over the same file sees the entry
        quarantine.close()
        reopened = QuarantineStore(tmp_path / "quarantine.jsonl")
        assert reopened.by_code() == {MALFORMED_TERM: 1}
        assert reopened.entries()[0].source == "feed-bad"
        reopened.close()

    def test_transient_parse_faults_retry_then_quarantine(self, tmp_path):
        mdw = MetadataWarehouse()
        injector = FaultInjector(seed=5)
        injector.arm("bulkload.parse", "raise")  # every parse attempt fails
        journal = LoadJournal(tmp_path / "load.journal", durable=False)
        loader = ResilientBulkLoader(
            mdw.store, journal, retry=FAST_RETRY, sleep=lambda _s: None,
        )
        with fault_scope(injector):
            report = loader.load(fill_staging(3), mdw.model_name)
        journal.close()
        assert len(report.quarantined) == 3
        assert {e.code for e in report.quarantined} == {TRANSIENT_EXHAUSTED}
        assert all(e.attempts == FAST_RETRY.max_attempts for e in report.quarantined)
        assert report.inserted == 0

    def test_transient_fault_that_heals_is_retried_to_success(self, tmp_path):
        mdw = MetadataWarehouse()
        injector = FaultInjector(seed=6)
        injector.arm("bulkload.parse", "raise", times=1)  # first attempt only
        journal = LoadJournal(tmp_path / "load.journal", durable=False)
        loader = ResilientBulkLoader(
            mdw.store, journal, retry=FAST_RETRY, sleep=lambda _s: None,
        )
        with fault_scope(injector):
            report = loader.load(fill_staging(3), mdw.model_name)
        journal.close()
        assert report.inserted == 3
        assert not report.quarantined


class TestBulkLoadErrorProgress:
    def test_load_many_reports_rows_loaded_before_failure(self):
        mdw = MetadataWarehouse()
        good = fill_staging(5)
        bad = StagingTable(name="bad")
        bad.insert("garbage row", f"<{EX}p>", '"v"')
        loader = BulkLoader(mdw.store, strict=True)
        with pytest.raises(BulkLoadError) as err:
            loader.load_many([good, bad], mdw.model_name)
        assert err.value.loaded == 5
        assert "after 5 row(s) loaded" in str(err.value)
        assert len(err.value.rejected) == 1

    def test_single_strict_load_reports_zero_loaded(self):
        mdw = MetadataWarehouse()
        bad = StagingTable(name="bad")
        bad.insert("garbage row", f"<{EX}p>", '"v"')
        with pytest.raises(BulkLoadError) as err:
            BulkLoader(mdw.store, strict=True).load(bad, mdw.model_name)
        assert err.value.loaded == 0


class TestEtlLevelRecovery:
    @pytest.mark.parametrize("site", LOAD_SITES)
    def test_orchestrated_load_recovers_at_every_site(self, tmp_path, site):
        import random

        from repro.etl.pipeline import EtlOrchestrator, ResilienceConfig
        from repro.resilience.chaos import make_release_feeds

        feeds = make_release_feeds(random.Random(9), documents=2, instances=5)

        def run(journal_path, injector=None):
            mdw = MetadataWarehouse()
            orchestrator = EtlOrchestrator(
                mdw,
                resilience=ResilienceConfig(
                    journal_path=journal_path,
                    batch_size=5,
                    durable=False,
                    retry=FAST_RETRY,
                ),
            )
            fault = None
            try:
                if injector is not None:
                    with fault_scope(injector):
                        mdw.build_entailment_index("OWLPRIME")
                        orchestrator.run(xml_documents=feeds)
                else:
                    mdw.build_entailment_index("OWLPRIME")
                    orchestrator.run(xml_documents=feeds)
            except InjectedFault as exc:
                fault = exc
            orchestrator.close_journal()
            return mdw, fault

        ref, fault = run(tmp_path / "ref.journal")
        assert fault is None
        expected = serialize_ntriples(ref.graph)

        injector = FaultInjector(seed=10)
        # index.refresh is also hit by the pre-load index build; skip
        # that one so the crash lands in the post-load refresh
        injector.arm(site, "raise", times=1, skip=1 if site == "index.refresh" else 0)
        journal_path = tmp_path / "crash.journal"
        mdw, fault = run(journal_path, injector=injector)
        assert fault is not None, f"site {site} never fired"

        if journal_path.exists():
            report = recover(mdw, journal_path, durable=False)
        else:
            report = None
        if report is None or report.action in ("none", "void"):
            mdw, fault = run(tmp_path / "rerun.journal")
            assert fault is None
        assert serialize_ntriples(mdw.graph) == expected


class TestPersistSaveAtomicity:
    def test_crashed_save_is_detectable_and_repairable(self, tmp_path):
        from repro.rdf.persist import PersistenceError, load_store, save_store

        mdw = MetadataWarehouse()
        BulkLoader(mdw.store).load(fill_staging(5), mdw.model_name)
        target = tmp_path / "store"
        save_store(mdw.store, target)

        # grow the model, then crash the re-save after the data files
        # but before the manifest
        BulkLoader(mdw.store).load(fill_staging(9), mdw.model_name)
        injector = FaultInjector(seed=11)
        injector.arm("persist.save", "raise", times=1)
        with pytest.raises(InjectedFault):
            with fault_scope(injector):
                save_store(mdw.store, target)

        # the stale manifest disagrees with the new data files: loading
        # detects the torn save instead of serving a mixed store
        with pytest.raises(PersistenceError):
            load_store(target)

        # re-running the save repairs it
        save_store(mdw.store, target)
        reloaded = load_store(target)
        assert serialize_ntriples(reloaded.model(mdw.model_name)) == serialize_ntriples(
            mdw.graph
        )
