"""The fault injector: modes, scheduling, determinism, ambient install."""

import pickle

import pytest

from repro.resilience import FAULT_POINTS, FaultInjector, InjectedFault
from repro.resilience.faults import active_injector, fault_scope, fire, install, uninstall


class TestArming:
    def test_unknown_site_rejected(self):
        inj = FaultInjector()
        with pytest.raises(KeyError):
            inj.arm("no.such.site")

    def test_unknown_mode_rejected(self):
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.arm("bulkload.batch", "explode")

    def test_disarm_one_and_all(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch")
        inj.arm("bulkload.commit")
        inj.disarm("bulkload.batch")
        assert not inj.armed("bulkload.batch")
        assert inj.armed("bulkload.commit")
        inj.disarm()
        assert not inj.armed("bulkload.commit")


class TestFiring:
    def test_raise_mode_throws_injected_fault_with_site(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch", "raise")
        with pytest.raises(InjectedFault) as err:
            inj.fire("bulkload.batch")
        assert err.value.site == "bulkload.batch"

    def test_injected_fault_pickles(self):
        fault = InjectedFault("bulkload.batch")
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.site == "bulkload.batch"

    def test_custom_error_factory(self):
        inj = FaultInjector()
        inj.arm("persist.save", "raise", error=lambda: OSError("disk on fire"))
        with pytest.raises(OSError):
            inj.fire("persist.save")

    def test_delay_mode_uses_injected_sleep(self):
        sleeps = []
        inj = FaultInjector(sleep=sleeps.append)
        inj.arm("worker.execute", "delay", delay=1.5)
        assert inj.fire("worker.execute", "payload") == "payload"
        assert sleeps == [1.5]

    def test_corrupt_mode_replaces_the_payload(self):
        inj = FaultInjector()
        inj.arm("index.staleness", "corrupt", value=True)
        assert inj.fire("index.staleness", False) is True

    def test_corrupt_mode_callable_transforms_the_payload(self):
        inj = FaultInjector()
        inj.arm("index.staleness", "corrupt", value=lambda v: not v)
        assert inj.fire("index.staleness", False) is True

    def test_unarmed_site_passes_payload_through(self):
        inj = FaultInjector()
        assert inj.fire("bulkload.batch", "x") == "x"


class TestScheduling:
    def test_skip_lets_first_hits_through(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch", "raise", skip=2)
        inj.fire("bulkload.batch")
        inj.fire("bulkload.batch")
        with pytest.raises(InjectedFault):
            inj.fire("bulkload.batch")

    def test_times_bounds_firings(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch", "raise", times=1)
        with pytest.raises(InjectedFault):
            inj.fire("bulkload.batch")
        inj.fire("bulkload.batch")  # budget spent: passes
        assert inj.fired("bulkload.batch") == 1

    def test_hits_counts_armed_or_not(self):
        inj = FaultInjector()
        inj.fire("bulkload.batch")
        inj.fire("bulkload.batch")
        assert inj.hits("bulkload.batch") == 2
        assert inj.fired("bulkload.batch") == 0

    def test_probability_schedule_is_reproducible_from_seed(self):
        def schedule(seed):
            inj = FaultInjector(seed=seed)
            inj.arm("bulkload.batch", "raise", probability=0.5)
            fired = []
            for _ in range(50):
                try:
                    inj.fire("bulkload.batch")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7)) and not all(schedule(7))

    def test_choose_site_is_seeded(self):
        sites = sorted(FAULT_POINTS)
        a = FaultInjector(seed=3)
        b = FaultInjector(seed=3)
        assert [a.choose_site(sites) for _ in range(10)] == [
            b.choose_site(sites) for _ in range(10)
        ]


class TestAmbientInjector:
    def test_module_fire_is_noop_without_injector(self):
        assert active_injector() is None
        assert fire("bulkload.batch", "payload") == "payload"

    def test_install_uninstall(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch", "raise")
        install(inj)
        try:
            with pytest.raises(InjectedFault):
                fire("bulkload.batch")
        finally:
            uninstall()
        assert active_injector() is None

    def test_fault_scope_restores_previous(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with fault_scope(outer):
            with fault_scope(inner):
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_fault_scope_restores_on_error(self):
        inj = FaultInjector()
        inj.arm("bulkload.batch", "raise")
        with pytest.raises(InjectedFault):
            with fault_scope(inj):
                fire("bulkload.batch")
        assert active_injector() is None


class TestCatalog:
    def test_every_site_documented(self):
        for site, description in FAULT_POINTS.items():
            assert "." in site
            assert description
