"""Chaos harness, incremental release path (``repro-mdw chaos --incremental``).

Crashes land mid-delta-apply or mid-DRed-maintenance; recovery is a
plain re-apply (delta application is convergent) and the final state is
compared bit-identically against a full-rebuild reference.
"""

from repro.resilience.chaos import INCREMENTAL_SITES, run_chaos


class TestIncrementalChaos:
    def test_iterations_converge(self):
        report = run_chaos(
            seed=5, iterations=3, documents=2, instances=5, incremental=True
        )
        assert len(report.iterations) == 3
        assert report.ok, report.summary()

    def test_crashes_actually_fire_and_recover_by_reapply(self):
        # enough iterations that at least one armed fault triggers
        report = run_chaos(
            seed=1, iterations=4, documents=2, instances=5, incremental=True
        )
        assert report.ok, report.summary()
        assert report.crashes > 0
        for it in report.iterations:
            assert it.site in INCREMENTAL_SITES
            assert it.recovery_action == "reapply"
