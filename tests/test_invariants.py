"""Cross-module property-based invariants (DESIGN.md §6).

These run hypothesis over randomly-shaped warehouses and query inputs,
checking the contracts that hold the system together: Table I
conformance of everything the managers accept, search/lineage soundness,
diff/apply round-trips, and SPARQL BGP evaluation against a naive
cross-product oracle.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core import MetadataWarehouse, TERMS, validate_graph
from repro.history import diff_graphs, merge_graphs
from repro.rdf import Graph, IRI, Literal, Namespace, Triple, Variable
from repro.sparql import execute
from repro.sparql.algebra import BGP, SelectQuery, Projection
from repro.sparql.evaluator import evaluate

EX = Namespace("http://inv/")

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


# ---------------------------------------------------------------------------
# warehouse construction scripts
# ---------------------------------------------------------------------------

_actions = st.lists(
    st.one_of(
        st.tuples(st.just("class"), _names),
        st.tuples(st.just("instance"), _names, _names),
        st.tuples(st.just("value"), _names, _names),
        st.tuples(st.just("mapping"), _names, _names),
    ),
    max_size=25,
)


def build_warehouse(actions):
    """Replay a random action script through the managers; actions that
    violate conventions are skipped (the managers reject them)."""
    mdw = MetadataWarehouse()
    default_cls = mdw.schema.declare_class("thing")
    prop = mdw.schema.declare_property("note")
    instances = {}
    for action in actions:
        kind = action[0]
        try:
            if kind == "class":
                mdw.schema.declare_class(action[1] + "_cls")
            elif kind == "instance":
                cls = mdw.schema.class_by_label(action[2] + "_cls") or default_cls
                instances[action[1]] = mdw.facts.add_instance("i_" + action[1], cls)
            elif kind == "value" and action[1] in instances:
                mdw.facts.set_value(instances[action[1]], prop, action[2])
            elif kind == "mapping" and action[1] in instances and action[2] in instances:
                if instances[action[1]] != instances[action[2]]:
                    mdw.facts.add_mapping(instances[action[1]], instances[action[2]])
        except ValueError:
            continue
    return mdw, instances


@settings(max_examples=50, deadline=None)
@given(_actions)
def test_manager_built_graphs_always_conformant(actions):
    """Whatever the managers accept classifies into Table I."""
    mdw, _ = build_warehouse(actions)
    report = validate_graph(mdw.graph)
    assert report.conformant, [i.describe() for i in report.issues]


@settings(max_examples=50, deadline=None)
@given(_actions, _names)
def test_search_hits_contain_the_term(actions, term):
    mdw, _ = build_warehouse(actions)
    results = mdw.search.search(term)
    for hit in results.hits:
        assert term.lower() in hit.name.lower()


@settings(max_examples=50, deadline=None)
@given(_actions)
def test_search_group_counts_consistent(actions):
    mdw, _ = build_warehouse(actions)
    results = mdw.search.search("i_")  # matches every generated instance
    for cls, _, count in results.groups():
        members = results.group_members(cls)
        assert count == len(members)
        for hit in members:
            assert cls in hit.all_classes


@settings(max_examples=50, deadline=None)
@given(_actions)
def test_lineage_direction_symmetry(actions):
    """b is downstream of a  <=>  a is upstream of b."""
    mdw, instances = build_warehouse(actions)
    nodes = list(instances.values())[:6]
    for a in nodes:
        down = mdw.lineage.downstream(a).items()
        for b in down:
            assert a in mdw.lineage.upstream(b).items()


@settings(max_examples=50, deadline=None)
@given(_actions)
def test_lineage_edges_are_real(actions):
    mdw, instances = build_warehouse(actions)
    for node in list(instances.values())[:6]:
        trace = mdw.lineage.downstream(node)
        for edge in trace.edges:
            assert (edge.source, TERMS.is_mapped_to, edge.target) in mdw.graph


# ---------------------------------------------------------------------------
# diff / merge
# ---------------------------------------------------------------------------

_triples = st.lists(
    st.tuples(_names, _names, _names).map(
        lambda t: Triple(EX[t[0]], EX[t[1]], EX[t[2]])
    ),
    max_size=20,
)


@settings(max_examples=100)
@given(_triples, _triples)
def test_diff_apply_roundtrip(old_triples, new_triples):
    old, new = Graph(old_triples), Graph(new_triples)
    diff = diff_graphs(old, new)
    assert diff.apply(old) == new
    assert diff.invert().apply(new) == old


@settings(max_examples=100)
@given(_triples, _triples)
def test_merge_report_policy_is_union(left_triples, right_triples):
    left, right = Graph(left_triples), Graph(right_triples)
    result = merge_graphs(left, right)  # EX.* predicates are not functional
    assert set(result.merged) == set(left) | set(right)
    assert result.common + result.left_only == len(left)
    assert result.common + result.right_only == len(right)


@settings(max_examples=60)
@given(_triples, _triples)
def test_merge_is_commutative_up_to_conflict_sides(a_triples, b_triples):
    a, b = Graph(a_triples), Graph(b_triples)
    ab = merge_graphs(a, b)
    ba = merge_graphs(b, a)
    assert set(ab.merged) == set(ba.merged)
    assert len(ab.conflicts) == len(ba.conflicts)


# ---------------------------------------------------------------------------
# SPARQL BGP vs naive oracle
# ---------------------------------------------------------------------------

_small_terms = [EX[c] for c in "abcdef"]
_graph_triples = st.lists(
    st.tuples(
        st.sampled_from(_small_terms),
        st.sampled_from(_small_terms[:3]),
        st.sampled_from(_small_terms),
    ).map(lambda t: Triple(*t)),
    max_size=15,
)

_pattern_term = st.one_of(
    st.sampled_from(_small_terms),
    st.sampled_from([Variable("x"), Variable("y"), Variable("z")]),
)
_pattern = st.tuples(_pattern_term, _pattern_term, _pattern_term).map(
    lambda t: Triple(t[0], t[1] if isinstance(t[1], Variable) else t[1], t[2])
)
_bgps = st.lists(_pattern, min_size=1, max_size=3)


def naive_bgp(graph, patterns):
    """Cross-product join of pattern matches — the evaluation oracle."""
    solutions = [dict()]
    for pattern in patterns:
        next_solutions = []
        for binding in solutions:
            for triple in graph:
                extended = dict(binding)
                ok = True
                for term, value in zip(pattern, triple):
                    if isinstance(term, Variable):
                        if extended.get(term.name, value) != value:
                            ok = False
                            break
                        extended[term.name] = value
                    elif term != value:
                        ok = False
                        break
                if ok:
                    next_solutions.append(extended)
        solutions = next_solutions
    return solutions


@settings(max_examples=150, deadline=None)
@given(_graph_triples, _bgps)
def test_bgp_evaluation_matches_naive_oracle(triples, patterns):
    graph = Graph(triples)
    query = SelectQuery(
        projection=Projection(select_all=True), pattern=BGP(list(patterns))
    )
    got = evaluate(graph, query)
    expected = naive_bgp(graph, patterns)
    got_set = {frozenset(row.asdict().items()) for row in got}
    expected_set = {frozenset(b.items()) for b in expected}
    assert got_set == expected_set
    # multiset cardinality must match too (joins must not duplicate)
    assert len(got) == len(expected)


@settings(max_examples=80, deadline=None)
@given(_graph_triples)
def test_distinct_never_larger(triples):
    graph = Graph(triples)
    plain = execute(graph, "SELECT ?s WHERE { ?s ?p ?o }")
    distinct = execute(graph, "SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
    assert len(distinct) <= len(plain)
    assert {r["s"] for r in distinct} == {r["s"] for r in plain}
