"""Unit tests for FILTER expression semantics."""

import pytest

from repro.rdf import BNode, IRI, Literal
from repro.sparql.errors import ExpressionError
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
    boolean,
    builtin_function_names,
    effective_boolean_value,
)


def const(value, **kw):
    return ConstExpr(Literal(value, **kw))


def ev(expr, binding=None):
    return expr.evaluate(binding or {})


class TestEffectiveBooleanValue:
    def test_boolean_literals(self):
        assert effective_boolean_value(Literal(True)) is True
        assert effective_boolean_value(Literal(False)) is False

    def test_numeric(self):
        assert effective_boolean_value(Literal(1)) is True
        assert effective_boolean_value(Literal(0)) is False

    def test_string(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("http://x/"))


class TestVarExpr:
    def test_bound(self):
        assert ev(VarExpr("x"), {"x": Literal(1)}) == Literal(1)

    def test_unbound_errors(self):
        with pytest.raises(ExpressionError):
            ev(VarExpr("x"), {})

    def test_question_mark_stripped(self):
        assert VarExpr("?x") == VarExpr("x")

    def test_variables(self):
        assert VarExpr("x").variables() == {"x"}


class TestComparison:
    def test_numeric_equality_across_types(self):
        # "42"^^integer = 42.0^^double numerically
        expr = BinaryExpr("=", const(42), const(42.0))
        assert ev(expr) == boolean(True)

    def test_string_equality(self):
        assert ev(BinaryExpr("=", const("a"), const("a"))) == boolean(True)
        assert ev(BinaryExpr("!=", const("a"), const("b"))) == boolean(True)

    def test_iri_equality(self):
        e = BinaryExpr("=", ConstExpr(IRI("http://x/")), ConstExpr(IRI("http://x/")))
        assert ev(e) == boolean(True)

    def test_numeric_order(self):
        assert ev(BinaryExpr("<", const(1), const(2))) == boolean(True)
        assert ev(BinaryExpr(">=", const(2), const(2))) == boolean(True)

    def test_string_order(self):
        assert ev(BinaryExpr("<", const("a"), const("b"))) == boolean(True)

    def test_iri_order(self):
        e = BinaryExpr("<", ConstExpr(IRI("http://a/")), ConstExpr(IRI("http://b/")))
        assert ev(e) == boolean(True)

    def test_mixed_comparison_errors(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("<", const(1), ConstExpr(IRI("http://x/"))))

    def test_string_number_order_errors(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("<", const("a"), const(1)))


class TestLogic:
    def test_and_false_wins_over_error(self):
        err = VarExpr("unbound")
        expr = BinaryExpr("&&", err, const(False))
        assert ev(expr) == boolean(False)

    def test_and_error_with_true_errors(self):
        expr = BinaryExpr("&&", VarExpr("unbound"), const(True))
        with pytest.raises(ExpressionError):
            ev(expr)

    def test_or_true_wins_over_error(self):
        expr = BinaryExpr("||", VarExpr("unbound"), const(True))
        assert ev(expr) == boolean(True)

    def test_or_error_with_false_errors(self):
        expr = BinaryExpr("||", VarExpr("unbound"), const(False))
        with pytest.raises(ExpressionError):
            ev(expr)

    def test_not(self):
        assert ev(UnaryExpr("!", const(True))) == boolean(False)


class TestArithmetic:
    def test_ops(self):
        assert ev(BinaryExpr("+", const(2), const(3))).to_python() == 5
        assert ev(BinaryExpr("-", const(2), const(3))).to_python() == -1
        assert ev(BinaryExpr("*", const(2), const(3))).to_python() == 6
        assert ev(BinaryExpr("/", const(6), const(3))).to_python() == 2.0

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("/", const(1), const(0)))

    def test_unary_minus(self):
        assert ev(UnaryExpr("-", const(5))).to_python() == -5

    def test_non_numeric_errors(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("+", const("a"), const(1)))


class TestFunctions:
    def test_regex_basic(self):
        assert ev(FunctionExpr("regex", [const("customer_id"), const("customer")])) == boolean(True)

    def test_regex_case_flag(self):
        expr = FunctionExpr("regex", [const("CUSTOMER"), const("customer"), const("i")])
        assert ev(expr) == boolean(True)

    def test_regex_no_match(self):
        assert ev(FunctionExpr("regex", [const("abc"), const("zzz")])) == boolean(False)

    def test_regex_bad_pattern_errors(self):
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("regex", [const("x"), const("(")]))

    def test_regex_bad_flag_errors(self):
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("regex", [const("x"), const("x"), const("q")]))

    def test_regexp_like_alias(self):
        assert ev(FunctionExpr("regexp_like", [const("abc"), const("b")])) == boolean(True)

    def test_bound(self):
        assert ev(FunctionExpr("bound", [VarExpr("x")]), {"x": Literal(1)}) == boolean(True)
        assert ev(FunctionExpr("bound", [VarExpr("x")]), {}) == boolean(False)

    def test_str_of_literal_and_iri(self):
        assert ev(FunctionExpr("str", [const(7)])) == Literal("7")
        assert ev(FunctionExpr("str", [ConstExpr(IRI("http://x/"))])) == Literal("http://x/")

    def test_str_of_bnode_errors(self):
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("str", [ConstExpr(BNode("b"))]))

    def test_lang(self):
        assert ev(FunctionExpr("lang", [const("x", language="de")])) == Literal("de")
        assert ev(FunctionExpr("lang", [const("x")])) == Literal("")

    def test_datatype(self):
        assert ev(FunctionExpr("datatype", [const(1)])).local_name == "integer"
        assert ev(FunctionExpr("datatype", [const("s")])).local_name == "string"

    def test_type_checks(self):
        assert ev(FunctionExpr("isiri", [ConstExpr(IRI("http://x/"))])) == boolean(True)
        assert ev(FunctionExpr("isliteral", [const("x")])) == boolean(True)
        assert ev(FunctionExpr("isblank", [ConstExpr(BNode())])) == boolean(True)

    def test_string_functions(self):
        assert ev(FunctionExpr("contains", [const("customer_id"), const("_")])) == boolean(True)
        assert ev(FunctionExpr("strstarts", [const("abc"), const("ab")])) == boolean(True)
        assert ev(FunctionExpr("strends", [const("abc"), const("bc")])) == boolean(True)
        assert ev(FunctionExpr("ucase", [const("ab")])) == Literal("AB")
        assert ev(FunctionExpr("lcase", [const("AB")])) == Literal("ab")
        assert ev(FunctionExpr("strlen", [const("abcd")])).to_python() == 4

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("nope", []))

    def test_builtin_names_listed(self):
        names = builtin_function_names()
        assert "regex" in names and "bound" in names and "regexp_like" in names

    def test_wrong_arity(self):
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("regex", [const("x")]))
        with pytest.raises(ExpressionError):
            ev(FunctionExpr("strlen", []))

    def test_variables_collected(self):
        expr = FunctionExpr("regex", [VarExpr("a"), VarExpr("b")])
        assert expr.variables() == {"a", "b"}
