"""Unit tests for the SPARQL parser (query text -> algebra)."""

import pytest

from repro.rdf import IRI, Literal, NamespaceManager, RDF, Triple, Variable
from repro.sparql import (
    AskQuery,
    BGP,
    ConstructQuery,
    Filter,
    Join,
    LeftJoin,
    SelectQuery,
    SparqlParseError,
    Union,
    parse_query,
)
from repro.sparql.expressions import BinaryExpr, FunctionExpr, VarExpr


def q(text):
    return parse_query(text)


def first_bgp(pattern):
    while not isinstance(pattern, BGP):
        if isinstance(pattern, Filter):
            pattern = pattern.pattern
        elif isinstance(pattern, (Join, LeftJoin, Union)):
            pattern = pattern.left
        else:
            raise AssertionError(f"no BGP in {pattern}")
    return pattern


class TestPrologue:
    def test_prefix_binding(self):
        query = q("PREFIX ex: <http://x/> SELECT ?s WHERE { ?s ex:p ex:o }")
        bgp = first_bgp(query.pattern)
        assert bgp.patterns[0].predicate == IRI("http://x/p")

    def test_default_prefixes_available(self):
        query = q("SELECT ?s WHERE { ?s rdf:type ?t }")
        assert first_bgp(query.pattern).patterns[0].predicate == RDF.type

    def test_unbound_prefix_errors(self):
        with pytest.raises(SparqlParseError):
            q("SELECT ?s WHERE { ?s nope:p ?o }")

    def test_external_nsm_not_mutated(self):
        nsm = NamespaceManager()
        parse_query("PREFIX zz: <http://zz/> SELECT ?s WHERE { ?s zz:p ?o }", nsm=nsm)
        with pytest.raises(KeyError):
            nsm.expand("zz:p")

    def test_base_accepted(self):
        q("BASE <http://x/> SELECT ?s WHERE { ?s ?p ?o }")


class TestSelect:
    def test_select_star(self):
        query = q("SELECT * WHERE { ?s ?p ?o }")
        assert query.projection.select_all

    def test_select_vars(self):
        query = q("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert query.projection.variables == ["s", "o"]

    def test_distinct(self):
        assert q("SELECT DISTINCT ?s WHERE { ?s ?p ?o }").distinct

    def test_where_keyword_optional(self):
        query = q("SELECT ?s { ?s ?p ?o }")
        assert isinstance(query, SelectQuery)

    def test_empty_projection_rejected(self):
        with pytest.raises(SparqlParseError):
            q("SELECT WHERE { ?s ?p ?o }")

    def test_limit_offset(self):
        query = q("SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_order_by_var(self):
        query = q("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        assert len(query.order_by) == 1
        assert not query.order_by[0].descending

    def test_order_by_desc(self):
        query = q("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?o")
        assert query.order_by[0].descending
        assert not query.order_by[1].descending

    def test_group_by_and_aggregate(self):
        query = q("SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s")
        assert query.group_by == ["s"]
        agg = query.projection.aggregates[0]
        assert agg.function == "COUNT"
        assert agg.alias == "n"
        assert agg.expression is None

    def test_count_distinct_expression(self):
        query = q("SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ?p ?o }")
        agg = query.projection.aggregates[0]
        assert agg.distinct
        assert agg.expression == VarExpr("o")

    def test_group_concat_separator(self):
        query = q(
            'SELECT (GROUP_CONCAT(?o ; separator = ", ") AS ?all) WHERE { ?s ?p ?o }'
        )
        assert query.projection.aggregates[0].separator == ", "

    def test_having(self):
        query = q(
            "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (?n > 2)"
        )
        assert isinstance(query.having, BinaryExpr)

    def test_star_only_for_count(self):
        with pytest.raises(SparqlParseError):
            q("SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o }")


class TestTriplePatterns:
    def test_simple_triple(self):
        bgp = first_bgp(q("SELECT * WHERE { ?s ?p ?o }").pattern)
        assert bgp.patterns == [Triple(Variable("s"), Variable("p"), Variable("o"))]

    def test_a_expands_to_rdf_type(self):
        bgp = first_bgp(q("SELECT * WHERE { ?s a <http://x/T> }").pattern)
        assert bgp.patterns[0].predicate == RDF.type

    def test_semicolon_shares_subject(self):
        bgp = first_bgp(q("SELECT * WHERE { ?s <http://x/p> ?a ; <http://x/q> ?b }").pattern)
        assert len(bgp.patterns) == 2
        assert bgp.patterns[0].subject == bgp.patterns[1].subject

    def test_comma_shares_predicate(self):
        bgp = first_bgp(q("SELECT * WHERE { ?s <http://x/p> ?a , ?b }").pattern)
        assert bgp.patterns[0].predicate == bgp.patterns[1].predicate
        assert len(bgp.patterns) == 2

    def test_literal_objects(self):
        bgp = first_bgp(
            q('SELECT * WHERE { ?s <http://x/p> "text" . ?s <http://x/q> 42 . ?s <http://x/r> true }').pattern
        )
        assert bgp.patterns[0].object == Literal("text")
        assert bgp.patterns[1].object == Literal(42)
        assert bgp.patterns[2].object == Literal(True)

    def test_lang_literal(self):
        bgp = first_bgp(q('SELECT * WHERE { ?s ?p "chat"@fr }').pattern)
        assert bgp.patterns[0].object == Literal("chat", language="fr")

    def test_typed_literal(self):
        bgp = first_bgp(q('SELECT * WHERE { ?s ?p "7"^^xsd:integer }').pattern)
        assert bgp.patterns[0].object == Literal(7)

    def test_trailing_dot_ok(self):
        bgp = first_bgp(q("SELECT * WHERE { ?s ?p ?o . }").pattern)
        assert len(bgp.patterns) == 1

    def test_literal_predicate_rejected(self):
        with pytest.raises(SparqlParseError):
            q('SELECT * WHERE { ?s "p" ?o }')


class TestGraphPatterns:
    def test_filter(self):
        query = q('SELECT * WHERE { ?s ?p ?o FILTER regex(?o, "x") }')
        assert isinstance(query.pattern, Filter)
        assert isinstance(query.pattern.condition, FunctionExpr)

    def test_filter_bracketted(self):
        query = q("SELECT * WHERE { ?s ?p ?o FILTER (?o > 3) }")
        assert isinstance(query.pattern, Filter)

    def test_filter_applies_to_whole_group(self):
        # FILTER placed mid-group still applies to the full group pattern
        query = q('SELECT * WHERE { ?s ?p ?o . FILTER (?o = 1) ?s ?q ?r }')
        assert isinstance(query.pattern, Filter)
        inner = query.pattern.pattern
        assert isinstance(inner, (Join, BGP))

    def test_optional(self):
        query = q("SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <http://x/q> ?r } }")
        assert isinstance(query.pattern, LeftJoin)

    def test_union(self):
        query = q("SELECT * WHERE { { ?s a <http://x/A> } UNION { ?s a <http://x/B> } }")
        assert isinstance(query.pattern, Union)

    def test_nested_group(self):
        query = q("SELECT * WHERE { ?s ?p ?o { ?s ?q ?r } }")
        assert isinstance(query.pattern, Join)

    def test_empty_group(self):
        query = q("SELECT * WHERE { }")
        assert isinstance(query.pattern, BGP)
        assert query.pattern.patterns == []

    def test_missing_closing_brace(self):
        with pytest.raises(SparqlParseError):
            q("SELECT * WHERE { ?s ?p ?o")


class TestOtherForms:
    def test_ask(self):
        assert isinstance(q("ASK { ?s ?p ?o }"), AskQuery)

    def test_ask_with_where(self):
        assert isinstance(q("ASK WHERE { ?s ?p ?o }"), AskQuery)

    def test_construct(self):
        query = q(
            "CONSTRUCT { ?s <http://x/label> ?o } WHERE { ?s <http://x/name> ?o }"
        )
        assert isinstance(query, ConstructQuery)
        assert len(query.template) == 1

    def test_garbage_after_query(self):
        with pytest.raises(SparqlParseError):
            q("SELECT * WHERE { ?s ?p ?o } garbage")

    def test_unknown_query_form(self):
        with pytest.raises(SparqlParseError):
            q("DELETE WHERE { ?s ?p ?o }")


class TestExpressions:
    def expr(self, text):
        return q(f"SELECT * WHERE {{ ?s ?p ?o FILTER ({text}) }}").pattern.condition

    def test_precedence_or_and(self):
        e = self.expr("?a = 1 || ?b = 2 && ?c = 3")
        assert e.op == "||"
        assert e.right.op == "&&"

    def test_precedence_arith(self):
        e = self.expr("?a + ?b * ?c = 7")
        assert e.op == "="
        assert e.left.op == "+"
        assert e.left.right.op == "*"

    def test_unary_not(self):
        e = self.expr("!bound(?x)")
        assert e.op == "!"

    def test_parens_override(self):
        e = self.expr("(?a + ?b) * ?c = 7")
        assert e.left.op == "*"
        assert e.left.left.op == "+"

    def test_function_args(self):
        e = self.expr('regex(?term, "customer", "i")')
        assert len(e.args) == 3
