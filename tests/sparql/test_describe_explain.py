"""Unit tests for DESCRIBE queries and EXPLAIN plans."""

import pytest

from repro.core import MetadataWarehouse
from repro.rdf import BNode, Graph, IRI, Literal, Namespace, Triple
from repro.sparql import SparqlParseError, execute, explain, parse_query

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    g.add(Triple(EX.alice, EX.name, Literal("Alice")))
    g.add(Triple(EX.alice, EX.knows, EX.bob))
    g.add(Triple(EX.bob, EX.name, Literal("Bob")))
    address = BNode("addr1")
    g.add(Triple(EX.alice, EX.address, address))
    g.add(Triple(address, EX.city, Literal("Zurich")))
    return g


class TestDescribe:
    def test_describe_iri(self, graph):
        out = execute(graph, "DESCRIBE <http://x/alice>")
        assert isinstance(out, Graph)
        assert Triple(EX.alice, EX.name, Literal("Alice")) in out
        assert Triple(EX.alice, EX.knows, EX.bob) in out
        # bob's own facts are not part of alice's description
        assert Triple(EX.bob, EX.name, Literal("Bob")) not in out

    def test_bnode_closure_included(self, graph):
        out = execute(graph, "DESCRIBE <http://x/alice>")
        assert Triple(BNode("addr1"), EX.city, Literal("Zurich")) in out

    def test_describe_multiple(self, graph):
        out = execute(graph, "DESCRIBE <http://x/alice> <http://x/bob>")
        assert Triple(EX.bob, EX.name, Literal("Bob")) in out

    def test_describe_variable_with_where(self, graph):
        out = execute(graph, 'DESCRIBE ?x WHERE { ?x <http://x/name> "Bob" }')
        assert Triple(EX.bob, EX.name, Literal("Bob")) in out
        assert len(out) == 1

    def test_describe_unknown_resource_empty(self, graph):
        out = execute(graph, "DESCRIBE <http://x/nobody>")
        assert len(out) == 0

    def test_variable_without_where_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("DESCRIBE ?x")

    def test_empty_describe_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("DESCRIBE WHERE { ?s ?p ?o }")


class TestExplain:
    def test_bgp_join_order_shown(self, graph):
        plan = explain(
            graph,
            'SELECT ?x WHERE { ?x <http://x/knows> ?y . ?x <http://x/name> "Alice" }',
        )
        assert "BGP (2 pattern(s)" in plan
        lines = plan.splitlines()
        # the constant-name pattern is more selective and goes first
        first = next(l for l in lines if l.strip().startswith("1."))
        assert "Alice" in first
        assert "~1 row(s)" in first

    def test_cartesian_flagged(self, graph):
        plan = explain(
            graph, "SELECT * WHERE { ?a <http://x/name> ?n . ?x <http://x/city> ?c }"
        )
        assert "CARTESIAN" in plan

    def test_modifiers_shown(self, graph):
        plan = explain(
            graph,
            "SELECT DISTINCT ?x WHERE { ?x ?p ?o } ORDER BY ?x LIMIT 5 OFFSET 2",
        )
        assert "DISTINCT" in plan
        assert "ORDER BY" in plan
        assert "SLICE limit=5 offset=2" in plan

    def test_structural_nodes(self, graph):
        plan = explain(
            graph,
            """SELECT ?x WHERE {
                { ?x <http://x/name> ?n } UNION { ?x <http://x/city> ?n }
                OPTIONAL { ?x <http://x/knows> ?k }
                FILTER (bound(?k))
            }""",
        )
        assert "UNION" in plan and "OPTIONAL" in plan and "FILTER" in plan

    def test_path_shown(self, graph):
        plan = explain(graph, "SELECT ?y WHERE { <http://x/alice> <http://x/knows>+ ?y }")
        assert "PATH" in plan and ")+" in plan

    def test_values_and_bind_shown(self, graph):
        plan = explain(
            graph,
            "SELECT ?d WHERE { VALUES ?x { <http://x/alice> } ?x ?p ?o BIND(1 AS ?d) }",
        )
        assert "VALUES" in plan and "BIND -> ?d" in plan

    def test_ask_and_construct_and_describe(self, graph):
        assert "ASK" in explain(graph, "ASK { ?s ?p ?o }")
        assert "CONSTRUCT" in explain(
            graph, "CONSTRUCT { ?s <http://x/p> ?o } WHERE { ?s ?p ?o }"
        )
        assert "DESCRIBE" in explain(graph, "DESCRIBE <http://x/alice>")

    def test_warehouse_explain(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Customer")
        mdw.facts.add_instance("c1", cls)
        plan = mdw.explain("SELECT ?x WHERE { ?x rdf:type dm:Customer }")
        assert "BGP" in plan


class TestRetireInstance:
    def make(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Column")
        a = mdw.facts.add_instance("a", cls)
        b = mdw.facts.add_instance("b", cls)
        c = mdw.facts.add_instance("c", cls)
        mdw.facts.add_mapping(a, b, rule="r1")
        mdw.facts.add_mapping(b, c)
        return mdw, a, b, c

    def test_retire_leaf(self):
        mdw, a, b, c = self.make()
        removed = mdw.facts.retire_instance(c, force=True)
        assert removed > 0
        assert not mdw.facts.exists(c)
        assert not list(mdw.graph.triples(None, None, c))
        assert mdw.validate().conformant

    def test_retire_refuses_fed_instance(self):
        mdw, a, b, c = self.make()
        from repro.core import FactError

        with pytest.raises(FactError, match="mapping target"):
            mdw.facts.retire_instance(b)

    def test_force_retire_removes_reified_mapping(self):
        mdw, a, b, c = self.make()
        mdw.facts.retire_instance(b, force=True)
        # the reified mapping node for a->b is gone too
        from repro.core import TERMS

        assert not list(mdw.graph.triples(None, TERMS.mapping_target, b))
        assert not list(mdw.graph.triples(a, TERMS.has_mapping, None))
        assert mdw.validate().conformant

    def test_retire_source_allowed_without_force(self):
        mdw, a, b, c = self.make()
        mdw.facts.retire_instance(a)  # nothing maps INTO a
        assert not mdw.facts.exists(a)
        assert mdw.facts.exists(b)

    def test_retire_unknown(self):
        mdw, *_ = self.make()
        from repro.core import FactError
        from repro.rdf import IRI

        with pytest.raises(FactError):
            mdw.facts.retire_instance(IRI("http://x/ghost"))

    def test_search_no_longer_finds_retired(self):
        mdw, a, b, c = self.make()
        assert len(mdw.search.search("c")) >= 1
        mdw.facts.retire_instance(c, force=True)
        assert all(h.name != "c" for h in mdw.search.search("c").hits)
