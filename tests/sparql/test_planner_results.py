"""Unit tests for the join-order planner and result containers."""

import pytest

from repro.rdf import Graph, IRI, Literal, Namespace, Triple, Variable
from repro.sparql import order_patterns, pattern_selectivity
from repro.sparql.results import Row, SolutionSequence

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    # 100 persons, 1 special node
    for i in range(100):
        g.add(Triple(EX[f"p{i}"], EX.type, EX.Person))
    g.add(Triple(EX.special, EX.name, Literal("one")))
    g.add(Triple(EX.special, EX.type, EX.Person))
    return g


class TestSelectivity:
    def test_constant_pattern_exact(self, graph):
        pattern = Triple(Variable("x"), EX.type, EX.Person)
        assert pattern_selectivity(graph, pattern, set()) == 101

    def test_rare_pattern(self, graph):
        pattern = Triple(Variable("x"), EX.name, Variable("n"))
        assert pattern_selectivity(graph, pattern, set()) == 1

    def test_fully_ground(self, graph):
        pattern = Triple(EX.special, EX.name, Literal("one"))
        assert pattern_selectivity(graph, pattern, set()) == 1


class TestOrdering:
    def test_cheapest_first(self, graph):
        broad = Triple(Variable("x"), EX.type, EX.Person)
        narrow = Triple(Variable("x"), EX.name, Variable("n"))
        assert order_patterns(graph, [broad, narrow]) == [narrow, broad]

    def test_connected_preferred_over_cartesian(self, graph):
        narrow = Triple(Variable("x"), EX.name, Variable("n"))
        connected_broad = Triple(Variable("x"), EX.type, Variable("t"))
        disconnected = Triple(Variable("y"), EX.name, Variable("m"))
        ordered = order_patterns(graph, [narrow, disconnected, connected_broad])
        assert ordered[0] == narrow
        # the pattern sharing ?x comes next despite its far higher count;
        # the equally-cheap disconnected pattern would be a cartesian product
        assert ordered[1] == connected_broad

    def test_permutation_preserved(self, graph):
        patterns = [
            Triple(Variable("a"), EX.type, EX.Person),
            Triple(Variable("a"), EX.name, Variable("n")),
        ]
        ordered = order_patterns(graph, patterns)
        assert sorted(map(id, ordered)) == sorted(map(id, patterns)) or set(
            map(repr, ordered)
        ) == set(map(repr, patterns))

    def test_deterministic(self, graph):
        patterns = [
            Triple(Variable("a"), EX.type, EX.Person),
            Triple(Variable("b"), EX.type, EX.Person),
            Triple(Variable("a"), EX.name, Variable("n")),
        ]
        assert order_patterns(graph, patterns) == order_patterns(graph, patterns)

    def test_empty(self, graph):
        assert order_patterns(graph, []) == []


class TestRow:
    def test_getitem_and_missing(self):
        row = Row({"a": Literal(1)})
        assert row["a"] == Literal(1)
        assert row["missing"] is None

    def test_value_conversion(self):
        row = Row({"n": Literal(7), "i": IRI("http://x/a")})
        assert row.value("n") == 7
        assert row.value("i") == "http://x/a"
        assert row.value("missing") is None

    def test_equality_with_dict(self):
        assert Row({"a": Literal(1)}) == {"a": Literal(1)}

    def test_hashable(self):
        assert len({Row({"a": Literal(1)}), Row({"a": Literal(1)})}) == 1

    def test_contains_and_keys(self):
        row = Row({"a": Literal(1)})
        assert "a" in row and "b" not in row
        assert list(row.keys()) == ["a"]

    def test_asdict_copy(self):
        row = Row({"a": Literal(1)})
        d = row.asdict()
        d["b"] = Literal(2)
        assert "b" not in row


class TestSolutionSequence:
    def make(self):
        rows = [Row({"n": Literal(i)}) for i in range(3)]
        return SolutionSequence(["n"], rows)

    def test_len_iter_index(self):
        seq = self.make()
        assert len(seq) == 3
        assert seq[1].value("n") == 1
        assert [r.value("n") for r in seq] == [0, 1, 2]

    def test_column_and_values(self):
        seq = self.make()
        assert seq.values("n") == [0, 1, 2]
        assert seq.column("n") == [Literal(0), Literal(1), Literal(2)]

    def test_to_dicts(self):
        assert self.make().to_dicts() == [{"n": 0}, {"n": 1}, {"n": 2}]

    def test_bool(self):
        assert self.make()
        assert not SolutionSequence(["x"], [])

    def test_as_table_contains_all(self):
        table = self.make().as_table()
        assert "?n" in table
        for i in range(3):
            assert str(i) in table

    def test_as_table_truncates(self):
        seq = SolutionSequence(["x"], [Row({"x": Literal("y" * 100)})])
        table = seq.as_table(max_width=20)
        assert "..." in table

    def test_as_table_empty(self):
        table = SolutionSequence(["x"], []).as_table()
        assert "?x" in table
