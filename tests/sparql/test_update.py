"""Unit tests for SPARQL Update."""

import pytest

from repro.core import MetadataWarehouse
from repro.rdf import Graph, IRI, Literal, Namespace, Triple
from repro.sparql import SparqlParseError, execute, execute_update, parse_update

EX = Namespace("http://x/")

PREFIX = "PREFIX ex: <http://x/>\n"


@pytest.fixture
def graph():
    g = Graph()
    g.add(Triple(EX.a, EX.age, Literal(30)))
    g.add(Triple(EX.b, EX.age, Literal(25)))
    g.add(Triple(EX.a, EX.status, Literal("active")))
    g.add(Triple(EX.b, EX.status, Literal("retired")))
    return g


def up(graph, text):
    return execute_update(graph, PREFIX + text)


class TestInsertDeleteData:
    def test_insert_data(self, graph):
        result = up(graph, 'INSERT DATA { ex:c ex:age 40 . ex:c ex:status "active" }')
        assert result.inserted == 2
        assert Triple(EX.c, EX.age, Literal(40)) in graph

    def test_insert_data_duplicate_counts_zero(self, graph):
        result = up(graph, "INSERT DATA { ex:a ex:age 30 }")
        assert result.inserted == 0

    def test_delete_data(self, graph):
        result = up(graph, "DELETE DATA { ex:a ex:age 30 }")
        assert result.deleted == 1
        assert Triple(EX.a, EX.age, Literal(30)) not in graph

    def test_delete_data_missing_counts_zero(self, graph):
        assert up(graph, "DELETE DATA { ex:z ex:age 1 }").deleted == 0

    def test_data_forms_reject_variables(self, graph):
        with pytest.raises(SparqlParseError, match="ground"):
            up(graph, "INSERT DATA { ?s ex:age 1 }")
        with pytest.raises(SparqlParseError, match="ground"):
            up(graph, "DELETE DATA { ex:a ex:age ?o }")

    def test_chained_statements(self, graph):
        result = up(
            graph,
            "INSERT DATA { ex:c ex:age 1 } ; DELETE DATA { ex:a ex:age 30 } ;",
        )
        assert result.statements == 2
        assert result.inserted == 1 and result.deleted == 1


class TestDeleteWhere:
    def test_delete_where(self, graph):
        result = up(graph, "DELETE WHERE { ?s ex:age ?o }")
        assert result.deleted == 2
        assert not list(graph.triples(None, EX.age, None))

    def test_delete_where_join(self, graph):
        result = up(graph, 'DELETE WHERE { ?s ex:age ?o . ?s ex:status "retired" }')
        # both of b's matched triples are deleted
        assert result.deleted == 2
        assert Triple(EX.a, EX.age, Literal(30)) in graph
        assert not list(graph.triples(EX.b, None, None))

    def test_delete_where_rejects_paths(self, graph):
        with pytest.raises(SparqlParseError, match="property paths"):
            up(graph, "DELETE WHERE { ?s ex:age+ ?o }")


class TestTemplateForms:
    def test_delete_insert_where(self, graph):
        result = up(
            graph,
            'DELETE { ?s ex:status "retired" } INSERT { ?s ex:status "archived" } '
            'WHERE { ?s ex:status "retired" }',
        )
        assert result.deleted == 1 and result.inserted == 1
        assert Triple(EX.b, EX.status, Literal("archived")) in graph

    def test_insert_where(self, graph):
        result = up(
            graph,
            "INSERT { ?s ex:ageNextYear ?n } WHERE { ?s ex:age ?a BIND(?a + 1 AS ?n) }",
        )
        assert result.inserted == 2
        assert Triple(EX.a, EX.ageNextYear, Literal(31)) in graph

    def test_delete_where_with_filter(self, graph):
        result = up(
            graph,
            "DELETE { ?s ex:age ?a } WHERE { ?s ex:age ?a FILTER (?a < 28) }",
        )
        assert result.deleted == 1
        assert Triple(EX.a, EX.age, Literal(30)) in graph

    def test_unbound_template_var_skips_triple(self, graph):
        result = up(
            graph,
            "INSERT { ?s ex:note ?missing } WHERE { ?s ex:age ?a }",
        )
        assert result.inserted == 0

    def test_deletions_before_insertions(self, graph):
        # renaming a value onto itself must keep it (delete then insert)
        up(
            graph,
            'DELETE { ?s ex:status ?v } INSERT { ?s ex:status "active" } '
            "WHERE { ?s ex:status ?v }",
        )
        assert graph.count(None, EX.status, Literal("active")) == 2
        assert graph.count(None, EX.status, None) == 2

    def test_summary(self, graph):
        result = up(graph, "INSERT DATA { ex:c ex:age 1 }")
        assert "+1 / -0" in result.summary()


class TestParse:
    def test_parse_returns_statements(self):
        statements = parse_update(
            PREFIX + "INSERT DATA { ex:a ex:b ex:c } ; DELETE WHERE { ?s ?p ?o }"
        )
        assert len(statements) == 2
        assert statements[1].delete_where

    def test_garbage_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_update("MODIFY THE GRAPH PLEASE")

    def test_prefixes_per_statement(self):
        statements = parse_update(
            "PREFIX a: <http://a/> INSERT DATA { a:x a:y a:z } ; "
            "PREFIX b: <http://b/> INSERT DATA { b:x b:y b:z }"
        )
        assert statements[1].insert_template[0].subject == IRI("http://b/x")


class TestWarehouseUpdate:
    def test_update_refreshes_indexes(self):
        mdw = MetadataWarehouse()
        parent = mdw.schema.declare_class("Item")
        child = mdw.schema.declare_class("Column", parents=parent)
        mdw.build_entailment_index()
        result = mdw.update(
            "INSERT DATA { cs:late rdf:type dm:Column . "
            'cs:late dm:hasName "late_column" }'
        )
        assert result.inserted == 2
        rows = mdw.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Item }", rulebases=["OWLPRIME"]
        )
        assert len(rows) == 1  # the inserted column, via subclass entailment

    def test_update_visible_to_search(self):
        mdw = MetadataWarehouse()
        mdw.schema.declare_class("Column")
        mdw.update(
            'INSERT DATA { cs:x rdf:type dm:Column . cs:x dm:hasName "fresh_item" }'
        )
        assert len(mdw.search.search("fresh_item")) == 1

    def test_update_audited(self):
        mdw = MetadataWarehouse()
        journal = mdw.enable_audit()
        mdw.update("INSERT DATA { cs:x dm:hasName \"y\" }")
        assert journal.total_changes == 1
