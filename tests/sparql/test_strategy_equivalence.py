"""Result equivalence across physical join strategies.

The acceptance bar for the hash-join engine: for every query shape, the
nested-loop baseline, the forced hash-join path, the adaptive default,
and the cached-plan execution produce identical solution multisets —
and identical sequences when ORDER BY pins the order.
"""

import pytest

from repro.rdf import Graph, IRI, Literal, Triple
from repro.rdf.namespace import NamespaceManager, RDF, RDFS
from repro.sparql import PlanCache, STRATEGIES, execute

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture(scope="module")
def graph():
    g = Graph(name="equivalence")
    person, doc = iri("Person"), iri("Document")
    for i in range(40):
        p = iri(f"person{i}")
        g.add(Triple(p, RDF.type, person))
        g.add(Triple(p, iri("name"), Literal(f"Person {i}")))
        g.add(Triple(p, iri("age"), Literal(20 + i % 7)))
        if i % 3 == 0:
            g.add(Triple(p, iri("knows"), iri(f"person{(i + 1) % 40}")))
    for i in range(25):
        d = iri(f"doc{i}")
        g.add(Triple(d, RDF.type, doc))
        g.add(Triple(d, iri("author"), iri(f"person{i % 10}")))
        g.add(Triple(d, iri("title"), Literal(f"Title {i} customer data")))
    g.add(Triple(doc, RDFS.subClassOf, iri("Asset")))
    return g


@pytest.fixture(scope="module")
def nsm():
    m = NamespaceManager()
    m.bind("ex", EX)
    return m


QUERIES = [
    # multi-pattern join with a shared variable (hash-join territory)
    """SELECT ?p ?n ?a WHERE {
        ?p rdf:type ex:Person . ?p ex:name ?n . ?p ex:age ?a }""",
    # join across entity kinds
    """SELECT ?d ?p ?n WHERE {
        ?d ex:author ?p . ?p ex:name ?n . ?d rdf:type ex:Document }""",
    # FILTER + regex
    """SELECT ?d WHERE {
        ?d ex:title ?t . FILTER regex(?t, "customer", "i") }""",
    # OPTIONAL with a partial match
    """SELECT ?p ?q WHERE {
        ?p rdf:type ex:Person . OPTIONAL { ?p ex:knows ?q } }""",
    # UNION
    """SELECT ?x WHERE {
        { ?x rdf:type ex:Person } UNION { ?x rdf:type ex:Document } }""",
    # DISTINCT projection
    "SELECT DISTINCT ?a WHERE { ?p ex:age ?a }",
    # aggregates with grouping
    """SELECT ?a (COUNT(?p) AS ?n) WHERE {
        ?p ex:age ?a } GROUP BY ?a""",
    # VALUES constraining a join variable
    """SELECT ?p ?n WHERE {
        VALUES ?p { ex:person1 ex:person2 } ?p ex:name ?n }""",
    # property path through the class hierarchy
    """SELECT ?d WHERE { ?d rdf:type/rdfs:subClassOf ex:Asset }""",
    # ORDER BY: sequence must match exactly, not just as a multiset
    """SELECT ?p ?a WHERE {
        ?p rdf:type ex:Person . ?p ex:age ?a }
        ORDER BY ?a ?p LIMIT 17 OFFSET 3""",
    # bound subject (selective bind-join side)
    "SELECT ?n WHERE { ex:person5 ex:name ?n }",
    # cartesian product of two tiny groups
    """SELECT ?a ?b WHERE {
        ex:person1 ex:name ?a . ex:doc1 ex:title ?b }""",
]

ASK_QUERIES = [
    "ASK { ?p ex:knows ?q . ?q ex:name ?n }",
    "ASK { ex:person2 ex:age ?a . FILTER (?a > 100) }",
]


def canonical(result):
    return sorted(
        tuple(sorted(row.asdict().items())) for row in result
    )


def exact(result):
    return [tuple(sorted(row.asdict().items())) for row in result]


@pytest.mark.parametrize("query", QUERIES)
def test_strategies_bit_identical(graph, nsm, query):
    results = {
        strategy: execute(graph, query, nsm=nsm, strategy=strategy)
        for strategy in STRATEGIES
    }
    cache = PlanCache()
    results["cached-plan"] = execute(graph, query, nsm=nsm, plan_cache=cache)
    results["cached-plan-hit"] = execute(graph, query, nsm=nsm, plan_cache=cache)
    assert cache.plan_hits >= 1

    baseline = results.pop("nested-loop")
    for label, result in results.items():
        assert result.columns == baseline.columns, label
        assert canonical(result) == canonical(baseline), label
        if "ORDER BY" in query:
            assert exact(result) == exact(baseline), label


@pytest.mark.parametrize("query", ASK_QUERIES)
def test_ask_strategies_agree(graph, nsm, query):
    answers = {execute(graph, query, nsm=nsm, strategy=s) for s in STRATEGIES}
    assert len(answers) == 1


def test_initial_bindings_agree(graph, nsm):
    query = "SELECT ?n WHERE { ?p ex:name ?n }"
    bindings = {"p": iri("person7")}
    rows = [
        canonical(execute(graph, query, nsm=nsm, bindings=bindings, strategy=s))
        for s in STRATEGIES
    ]
    assert rows[0] and all(r == rows[0] for r in rows)


def test_unknown_term_in_bindings_yields_empty(graph, nsm):
    query = "SELECT ?n WHERE { ?p ex:name ?n }"
    bindings = {"p": iri("nobody-ever-interned")}
    for s in STRATEGIES:
        assert (
            len(execute(graph, query, nsm=nsm, bindings=bindings, strategy=s)) == 0
        )


def test_unknown_strategy_rejected(graph, nsm):
    from repro.sparql import SparqlEvalError

    with pytest.raises(SparqlEvalError):
        execute(graph, "SELECT ?s WHERE { ?s ?p ?o }", nsm=nsm, strategy="merge")


def test_plan_cache_invalidates_on_mutation(nsm):
    g = Graph()
    g.add(Triple(iri("a"), iri("p"), iri("b")))
    cache = PlanCache()
    query = "SELECT ?o WHERE { ex:a ex:p ?o }"
    assert len(execute(g, query, nsm=nsm, plan_cache=cache)) == 1
    g.add(Triple(iri("a"), iri("p"), iri("c")))
    assert len(execute(g, query, nsm=nsm, plan_cache=cache)) == 2
    # two distinct generations -> two plan entries, but one parse
    assert cache.stats()["plan_misses"] == 2
    assert cache.stats()["parse_misses"] == 1
