"""Unit and property tests for SPARQL property paths.

The paper's lineage path ``(isMappedTo)* rdf:type`` (Figure 8) is a
property path; these tests cover the full operator set and check the
closure operators against networkx reachability.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, IRI, Literal, Namespace, RDF, Triple
from repro.sparql import (
    PathAlternative,
    PathInverse,
    PathOptional,
    PathPlus,
    PathSequence,
    PathStar,
    PathStep,
    SparqlParseError,
    eval_path,
    execute,
    parse_query,
)
from repro.sparql.algebra import BGP, Filter, Join, LeftJoin, Union

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    # a -p-> b -p-> c -p-> d ;  a -q-> c ; d -p-> d (self loop)
    g.add(Triple(EX.a, EX.p, EX.b))
    g.add(Triple(EX.b, EX.p, EX.c))
    g.add(Triple(EX.c, EX.p, EX.d))
    g.add(Triple(EX.a, EX.q, EX.c))
    g.add(Triple(EX.d, EX.p, EX.d))
    g.add(Triple(EX.a, EX.name, Literal("a")))
    return g


def targets(graph, path, start):
    return {o for _, o in eval_path(graph, path, start=start)}


def sources(graph, path, end):
    return {s for s, _ in eval_path(graph, path, end=end)}


P = PathStep(EX.p)
Q = PathStep(EX.q)


class TestEvalPath:
    def test_single_step(self, graph):
        assert targets(graph, P, EX.a) == {EX.b}

    def test_sequence(self, graph):
        assert targets(graph, PathSequence([P, P]), EX.a) == {EX.c}

    def test_alternative(self, graph):
        assert targets(graph, PathAlternative([P, Q]), EX.a) == {EX.b, EX.c}

    def test_inverse(self, graph):
        assert targets(graph, PathInverse(P), EX.b) == {EX.a}

    def test_star_includes_start(self, graph):
        assert targets(graph, PathStar(P), EX.a) == {EX.a, EX.b, EX.c, EX.d}

    def test_plus_excludes_start_unless_cycle(self, graph):
        assert targets(graph, PathPlus(P), EX.a) == {EX.b, EX.c, EX.d}
        # d has a self loop: d p+ d holds
        assert EX.d in targets(graph, PathPlus(P), EX.d)

    def test_optional(self, graph):
        assert targets(graph, PathOptional(P), EX.a) == {EX.a, EX.b}

    def test_backward_star(self, graph):
        assert sources(graph, PathStar(P), EX.d) == {EX.a, EX.b, EX.c, EX.d}

    def test_backward_sequence(self, graph):
        assert sources(graph, PathSequence([P, P]), EX.c) == {EX.a}

    def test_both_bound(self, graph):
        assert list(eval_path(graph, PathPlus(P), start=EX.a, end=EX.d)) == [(EX.a, EX.d)]
        assert list(eval_path(graph, P, start=EX.a, end=EX.d)) == []

    def test_both_unbound(self, graph):
        pairs = set(eval_path(graph, PathSequence([P, P])))
        assert (EX.a, EX.c) in pairs
        assert (EX.b, EX.d) in pairs

    def test_literal_start_is_empty(self, graph):
        assert targets(graph, P, Literal("a")) == set()

    def test_no_duplicates(self, graph):
        # two routes a->c (p/p and q); alternative of both reports c once
        path = PathAlternative([PathSequence([P, P]), Q])
        results = list(eval_path(graph, path, start=EX.a))
        assert len(results) == len(set(results))

    def test_path_text_roundtrippable(self):
        path = PathAlternative([PathSequence([P, PathStar(Q)]), PathInverse(P)])
        text = path.text()
        assert "/" in text and "|" in text and "*" in text and "^" in text

    def test_equality(self):
        assert PathStar(P) == PathStar(PathStep(EX.p))
        assert PathStar(P) != PathPlus(P)


class TestPathParsing:
    def path_of(self, query_text):
        query = parse_query(query_text)
        pattern = query.pattern
        while not isinstance(pattern, BGP):
            pattern = getattr(pattern, "pattern", None) or pattern.left
        assert len(pattern.paths) == 1
        return pattern.paths[0].path

    def test_star(self):
        path = self.path_of("SELECT * WHERE { ?s <http://x/p>* ?o }")
        assert path == PathStar(P)

    def test_plus_and_sequence(self):
        path = self.path_of("SELECT * WHERE { ?s <http://x/p>+/<http://x/q> ?o }")
        assert path == PathSequence([PathPlus(P), Q])

    def test_alternative(self):
        path = self.path_of("SELECT * WHERE { ?s <http://x/p>|<http://x/q> ?o }")
        assert path == PathAlternative([P, Q])

    def test_grouping(self):
        path = self.path_of("SELECT * WHERE { ?s (<http://x/p>/<http://x/q>)* ?o }")
        assert path == PathStar(PathSequence([P, Q]))

    def test_inverse(self):
        path = self.path_of("SELECT * WHERE { ?s ^<http://x/p> ?o }")
        assert path == PathInverse(P)

    def test_optional_modifier(self):
        path = self.path_of("SELECT * WHERE { ?s <http://x/p>? ?o }")
        assert path == PathOptional(P)

    def test_a_in_path(self):
        path = self.path_of("SELECT * WHERE { ?s <http://x/p>/a ?o }")
        assert path == PathSequence([P, PathStep(RDF.type)])

    def test_plain_iri_not_a_path(self):
        query = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }")
        assert isinstance(query.pattern, BGP)
        assert query.pattern.paths == []
        assert len(query.pattern.patterns) == 1

    def test_construct_template_rejects_paths(self):
        with pytest.raises(SparqlParseError):
            parse_query("CONSTRUCT { ?s <http://x/p>* ?o } WHERE { ?s ?p ?o }")


class TestPathQueries:
    def test_figure8_as_one_query(self):
        """The paper's (isMappedTo)* rdf:type path as a single query."""
        from repro.synth.figures import build_figure3_snippet

        snippet = build_figure3_snippet()
        mdw = snippet.warehouse
        mdw.build_entailment_index()
        rows = mdw.query(
            """
            SELECT ?target WHERE {
              cs:client_information_id dt:isMappedTo+ ?target .
              ?target rdf:type dm:Application1_Item .
              ?target rdf:type dm:Interface_Item
            }
            """,
            rulebases=["OWLPRIME"],
        )
        assert rows.column("target") == [snippet.customer_id]

    def test_path_joins_with_triples(self, graph):
        rows = execute(
            graph,
            'SELECT ?end ?n WHERE { ?start <http://x/name> ?n . ?start <http://x/p>+ ?end }',
        )
        assert {r["end"] for r in rows} == {EX.b, EX.c, EX.d}
        assert all(r.value("n") == "a" for r in rows)

    def test_path_with_filter(self, graph):
        rows = execute(
            graph,
            'SELECT ?end WHERE { <http://x/a> <http://x/p>* ?end FILTER (str(?end) != "http://x/a") }',
        )
        assert {r["end"] for r in rows} == {EX.b, EX.c, EX.d}

    def test_path_bound_by_earlier_pattern(self, graph):
        rows = execute(
            graph,
            "SELECT ?x WHERE { ?x <http://x/q> ?mid . ?x <http://x/p>/<http://x/p> ?mid }",
        )
        assert rows.column("x") == [EX.a]

    def test_same_var_both_ends(self, graph):
        rows = execute(graph, "SELECT ?x WHERE { ?x <http://x/p>+ ?x }")
        assert rows.column("x") == [EX.d]  # only the self loop

    def test_distinct_over_path(self, graph):
        rows = execute(
            graph, "SELECT DISTINCT ?o WHERE { ?s (<http://x/p>|<http://x/q>)+ ?o }"
        )
        assert len(rows) == len({r["o"] for r in rows})


# -- property-based: closure operators vs networkx ---------------------------

_nodes = [EX[f"n{i}"] for i in range(8)]
edge_lists = st.lists(
    st.tuples(st.sampled_from(_nodes), st.sampled_from(_nodes)), max_size=20
)


@settings(max_examples=100)
@given(edge_lists, st.sampled_from(_nodes))
def test_star_matches_networkx_reachability(edges, start):
    g = Graph(Triple(s, EX.p, o) for s, o in edges)
    nxg = nx.DiGraph()
    nxg.add_nodes_from(_nodes)
    nxg.add_edges_from(edges)
    expected = nx.descendants(nxg, start) | {start}
    got = targets(g, PathStar(P), start)
    assert got == expected


@settings(max_examples=100)
@given(edge_lists, st.sampled_from(_nodes))
def test_plus_matches_networkx_descendants(edges, start):
    g = Graph(Triple(s, EX.p, o) for s, o in edges)
    nxg = nx.DiGraph()
    nxg.add_nodes_from(_nodes)
    nxg.add_edges_from(edges)
    # p+ relates start to everything reachable in >= 1 hop; unlike
    # nx.descendants that includes start itself when a cycle returns to it
    expected = set()
    for successor in nxg.successors(start):
        expected |= nx.descendants(nxg, successor) | {successor}
    got = targets(g, PathPlus(P), start)
    assert got == expected


@settings(max_examples=60)
@given(edge_lists, st.sampled_from(_nodes))
def test_forward_backward_symmetry(edges, node):
    g = Graph(Triple(s, EX.p, o) for s, o in edges)
    forward = {(node, o) for o in targets(g, PathPlus(P), node)}
    backward = {(s, node) for s in sources(g, PathPlus(P), node)}
    # (x, y) in forward of x  <=>  (x, y) in backward of y
    for s, o in forward:
        assert s in sources(g, PathPlus(P), o)
    for s, o in backward:
        assert o in targets(g, PathPlus(P), s)


@settings(max_examples=60)
@given(edge_lists)
def test_inverse_swaps_pairs(edges):
    g = Graph(Triple(s, EX.p, o) for s, o in edges)
    direct = set(eval_path(g, P))
    inverted = set(eval_path(g, PathInverse(P)))
    assert inverted == {(o, s) for s, o in direct}
