"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql import SparqlParseError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_iriref(self):
        toks = tokenize("<http://x/a>")
        assert toks[0].kind == "IRIREF"
        assert toks[0].value == "http://x/a"

    def test_pname(self):
        toks = tokenize("dm:hasName")
        assert toks[0].kind == "PNAME"
        assert toks[0].value == "dm:hasName"

    def test_pname_empty_local(self):
        toks = tokenize("dm:")
        assert toks[0].kind == "PNAME"
        assert toks[0].value == "dm:"

    def test_default_prefix_pname(self):
        assert tokenize(":local")[0].kind == "PNAME"

    def test_var_question(self):
        toks = tokenize("?term")
        assert toks[0].kind == "VAR"
        assert toks[0].value == "term"

    def test_var_dollar(self):
        assert tokenize("$x")[0].value == "x"

    def test_bare_question_mark_is_path_modifier(self):
        # '?' not followed by a name is the zero-or-one path modifier
        toks = tokenize("? x")
        assert toks[0].kind == "PUNCT" and toks[0].value == "?"

    def test_empty_dollar_var_rejected(self):
        with pytest.raises(SparqlParseError):
            tokenize("$ x")

    def test_double_quoted_string(self):
        assert tokenize('"customer"')[0].value == "customer"

    def test_single_quoted_string(self):
        assert tokenize("'customer'")[0].value == "customer"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b\nc"')[0].value == 'a"b\nc'

    def test_unterminated_string(self):
        with pytest.raises(SparqlParseError):
            tokenize('"open')

    def test_newline_in_string_rejected(self):
        with pytest.raises(SparqlParseError):
            tokenize('"a\nb"')

    def test_numbers(self):
        assert values("42 -7 3.25") == ["42", "-7", "3.25"]

    def test_keywords_case_insensitive(self):
        toks = tokenize("select Where FILTER")
        assert all(t.kind == "KEYWORD" for t in toks[:3])
        assert toks[0].value == "SELECT"

    def test_names_not_keywords(self):
        assert tokenize("regex")[0].kind == "NAME"

    def test_a_is_name(self):
        assert tokenize("a")[0].kind == "NAME"

    def test_langtag(self):
        toks = tokenize('"x"@en-GB')
        assert toks[1].kind == "LANGTAG"
        assert toks[1].value == "en-GB"

    def test_bnode(self):
        toks = tokenize("_:b1")
        assert toks[0].kind == "BNODE"
        assert toks[0].value == "b1"

    def test_comment_skipped(self):
        assert values("?x # a comment\n?y") == ["x", "y"]

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_line_numbers(self):
        toks = tokenize("?a\n?b\n?c")
        assert [t.line for t in toks[:3]] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(SparqlParseError):
            tokenize("§")


class TestPunctuation:
    def test_two_char_operators(self):
        assert values("<= >= != && || ^^") == ["<=", ">=", "!=", "&&", "||", "^^"]

    def test_braces_parens(self):
        assert values("{ } ( ) . ; , *") == ["{", "}", "(", ")", ".", ";", ",", "*"]

    def test_lt_not_confused_with_iri(self):
        # '?x < 5' must tokenize '<' as an operator, not start an IRI
        toks = tokenize("?x < 5")
        assert toks[1].kind == "PUNCT" and toks[1].value == "<"

    def test_lt_followed_by_var(self):
        toks = tokenize("?x<?y")
        assert [t.kind for t in toks[:3]] == ["VAR", "PUNCT", "VAR"]

    def test_datatype_carets(self):
        toks = tokenize('"7"^^xsd:integer')
        assert toks[1].value == "^^"
        assert toks[2].kind == "PNAME"
