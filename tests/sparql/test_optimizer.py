"""The cost-based optimizer v2: statistics-driven join reordering, the
skew-aware cost model, plan memoization, and the profile-driven
re-costing feedback loop (estimate >10x off -> replan with actuals)."""

import random

import pytest

from repro.core.warehouse import MetadataWarehouse
from repro.etl import EtlOrchestrator
from repro.rdf import Graph, Namespace, Triple, Variable
from repro.resilience.chaos import make_release_feeds
from repro.sparql import (
    PlanCache,
    execute,
    pattern_selectivity,
    plan_bgp,
    planner_mode,
)
from repro.sparql.planner import REPLAN_ERROR_FACTOR, _bind_emission

EX = Namespace("http://opt.test/")


def hub_graph(hubs=20, fanout=100, singles=2000, rare_tags=0):
    """Skewed link predicate: a few hub subjects own most of the edges.

    The hub subjects are exactly the ones ``isHub`` selects — the
    correlated-predicate trap a uniform cost model walks straight into.
    """
    g = Graph()
    for h in range(hubs):
        g.add(Triple(EX[f"hub{h}"], EX.isHub, EX.yes))
        for j in range(fanout):
            g.add(Triple(EX[f"hub{h}"], EX.links, EX[f"spoke_{h}_{j}"]))
    for k in range(singles):
        g.add(Triple(EX[f"single{k}"], EX.links, EX[f"leaf{k}"]))
    for k in range(rare_tags):
        g.add(Triple(EX[f"leaf{k}"], EX.tag, EX.Rare))
    return g


class TestBoundVariableSelectivity:
    def test_unbound_is_exact_count(self):
        g = hub_graph(hubs=2, fanout=5, singles=10)
        pattern = Triple(Variable("h"), EX.links, Variable("x"))
        assert pattern_selectivity(g, pattern, set()) == 20

    def test_bound_subject_divides_by_distinct_subjects(self):
        g = hub_graph(hubs=2, fanout=5, singles=10)
        pattern = Triple(Variable("h"), EX.links, Variable("x"))
        # 20 triples over 12 distinct subjects: a per-binding probe
        estimate = pattern_selectivity(g, pattern, {"h"})
        assert estimate == pytest.approx(20 / 12)

    def test_bound_object_divides_by_distinct_objects(self):
        g = hub_graph(hubs=2, fanout=5, singles=10)
        pattern = Triple(Variable("h"), EX.links, Variable("x"))
        assert pattern_selectivity(g, pattern, {"x"}) == pytest.approx(1.0)


class TestBindEmissionCap:
    def test_no_histogram_charges_skew_expectation(self):
        assert _bind_emission(10.0, 2.0, 50.0, None, 0.0) == 500.0

    def test_histogram_caps_many_near_distinct_probes(self):
        # 8 heavy hitters of 100 plus a uniform tail of 2: 90 distinct
        # probes can emit at most the top-8 sum plus 82 tail probes,
        # far below the frequency-weighted expectation
        prefix = tuple(float(100 * i) for i in range(9))
        capped = _bind_emission(90.0, 2.0, 60.0, prefix, 2.0)
        assert capped == pytest.approx(800.0 + 82.0 * 2.0)
        assert capped < 90.0 * 60.0

    def test_few_probes_still_pay_heavy_hitter_price(self):
        # 5 probes against 5 hitters of 1000: the worst case (5000)
        # does not cap the skew expectation (3000) — the hub trap
        # stays expensive
        prefix = (0.0, 1000.0, 2000.0, 3000.0, 4000.0, 5000.0)
        assert _bind_emission(5.0, 2.0, 600.0, prefix, 1.0) == 3000.0

    def test_never_below_uniform_expectation(self):
        prefix = (0.0, 1.0, 2.0)
        assert _bind_emission(10.0, 3.0, 4.0, prefix, 0.0) >= 30.0


class TestHubTrapAvoidance:
    def test_cost_planner_anchors_off_the_hub(self):
        g = hub_graph(hubs=5, fanout=200, singles=1000, rare_tags=6)
        patterns = [
            Triple(Variable("h"), EX.isHub, EX.yes),
            Triple(Variable("h"), EX.links, Variable("x")),
            Triple(Variable("x"), EX.tag, EX.Rare),
        ]
        with planner_mode("legacy"):
            legacy = plan_bgp(g, patterns)
        cost = plan_bgp(g, patterns)
        # greedy anchors on the smallest scan (isHub, 5 triples) and
        # then probes links from the five heaviest subjects in the
        # graph; the histogram-aware cost model starts from the rare
        # tag side instead
        assert legacy.order[0].predicate == EX.isHub
        assert cost.order[0].predicate == EX.tag

    def test_both_orders_agree_on_results(self):
        g = hub_graph(hubs=5, fanout=200, singles=1000, rare_tags=6)
        text = (
            "SELECT ?h ?x WHERE { "
            f"?h <{EX.isHub.value}> <{EX.yes.value}> . "
            f"?h <{EX.links.value}> ?x . "
            f"?x <{EX.tag.value}> <{EX.Rare.value}> }}"
        )
        with planner_mode("legacy"):
            legacy_rows = execute(g, text).to_dicts()
        cost_rows = execute(g, text).to_dicts()
        assert sorted(cost_rows, key=repr) == sorted(legacy_rows, key=repr)


class TestDeterministicTieBreak:
    def two_symmetric(self, g):
        return [
            Triple(Variable("x"), EX.p1, Variable("a")),
            Triple(Variable("x"), EX.p2, Variable("b")),
        ]

    def symmetric_graph(self):
        g = Graph()
        for i in range(6):
            g.add(Triple(EX[f"s{i}"], EX.p1, EX[f"a{i}"]))
            g.add(Triple(EX[f"s{i}"], EX.p2, EX[f"b{i}"]))
        return g

    def test_equal_cost_keeps_original_positions(self):
        g = self.symmetric_graph()
        plan = plan_bgp(g, self.two_symmetric(g))
        assert [p.predicate for p in plan.order] == [EX.p1, EX.p2]

    def test_reversed_input_keeps_its_own_positions(self):
        g = self.symmetric_graph()
        plan = plan_bgp(g, list(reversed(self.two_symmetric(g))))
        assert [p.predicate for p in plan.order] == [EX.p2, EX.p1]

    def test_replanning_is_stable(self):
        g = self.symmetric_graph()
        patterns = self.two_symmetric(g)
        orders = {tuple(map(id, plan_bgp(g, patterns).order)) for _ in range(5)}
        assert len(orders) == 1


class TestPlanMemo:
    def patterns(self):
        return [
            Triple(Variable("h"), EX.isHub, EX.yes),
            Triple(Variable("h"), EX.links, Variable("x")),
        ]

    def test_memo_hits_return_independent_plans(self):
        g = hub_graph(hubs=3, fanout=10, singles=50)
        patterns = self.patterns()
        first = plan_bgp(g, patterns)
        second = plan_bgp(g, patterns)
        assert first is not second
        assert [p for p in first.order] == [p for p in second.order]
        # feedback state must never be shared through the memo
        first.observe([(1, 1000), (1, 1000)])
        assert first.mis_estimated
        assert not second.mis_estimated
        assert not plan_bgp(g, patterns).mis_estimated

    def test_graph_mutation_invalidates_memo(self):
        g = hub_graph(hubs=3, fanout=10, singles=50)
        patterns = self.patterns()
        before = plan_bgp(g, patterns)
        g.add(Triple(EX.hub99, EX.isHub, EX.yes))
        after = plan_bgp(g, patterns)
        anchor = next(s for s in after.stages if s.detail.endswith("> " + EX.yes.n3()))
        assert anchor.scan == before.stages[0].scan + 1

    def test_corrections_bypass_memo(self):
        g = hub_graph(hubs=3, fanout=10, singles=50)
        patterns = self.patterns()
        plain = plan_bgp(g, patterns)
        from repro.sparql.planner import _correction_key

        key = _correction_key(patterns[1], frozenset({"h"}))
        corrected = plan_bgp(g, patterns, corrections={key: 10.0})
        assert corrected.stages[-1].rows_out > plain.stages[-1].rows_out


class TestReplanFeedback:
    QUERY = (
        "SELECT ?h ?x WHERE { "
        f"?h <{EX.isHub.value}> <{EX.yes.value}> . "
        f"?h <{EX.links.value}> ?x }}"
    )

    def test_misestimate_triggers_recost_with_actuals(self):
        g = hub_graph()  # links fanout: estimated ~2, actual 100
        cache = PlanCache()
        rows1 = execute(g, self.QUERY, plan_cache=cache).to_dicts()
        assert len(rows1) == 2000
        assert cache.replans == 0
        prepared1 = cache.prepare(g, self.QUERY)
        # ...which IS the replan: the executed plan blew the threshold
        assert cache.replans == 1
        assert prepared1.replan_round == 1
        assert prepared1.max_error() == 1.0  # fresh plans, not yet run

        rows2 = execute(g, self.QUERY, plan_cache=cache).to_dicts()
        assert sorted(rows2, key=repr) == sorted(rows1, key=repr)
        # re-costed from observed fanouts: estimates now match actuals,
        # so the second execution stays inside the replan threshold
        assert cache.replans == 1
        prepared2 = cache.prepare(g, self.QUERY)
        assert prepared2 is prepared1
        assert prepared1.max_error() < REPLAN_ERROR_FACTOR

    def test_observe_marks_plan_past_threshold(self):
        g = hub_graph(hubs=3, fanout=10, singles=50)
        plan = plan_bgp(
            g,
            [
                Triple(Variable("h"), EX.isHub, EX.yes),
                Triple(Variable("h"), EX.links, Variable("x")),
            ],
        )
        worst = plan.observe([(1, 3), (3, 3000)])
        assert worst > REPLAN_ERROR_FACTOR
        assert plan.mis_estimated
        assert plan.observed  # per-stage fanouts recorded as corrections


class TestStaleStatsRecost:
    def test_incremental_release_recosts_cached_plan(self):
        rng = random.Random(11)
        release1 = make_release_feeds(rng)
        mdw = MetadataWarehouse()
        mdw.build_entailment_index("OWLPRIME")
        EtlOrchestrator(mdw).apply_release(release1, mode="full")
        text = "SELECT ?s ?name WHERE { ?s rdf:type ?c . ?s dm:hasName ?name }"

        rows1 = mdw.query(text, rulebases=("OWLPRIME",))
        assert len(rows1) > 0
        catalog = mdw.graph.stats()
        refreshes = catalog.refreshes
        misses = mdw.plan_cache.stats()["plan_misses"]

        # replace one document: the delta shifts hasName/type counts
        # past the stats refresh threshold
        release2 = release1[:-1] + make_release_feeds(rng, documents=1)
        result = EtlOrchestrator(mdw).apply_release(release2, mode="incremental")
        assert result.ok and result.added > 0 and result.removed > 0

        rows2 = mdw.query(text, rulebases=("OWLPRIME",))
        # the generation moved: the cached plan was re-planned against
        # refreshed statistics, not reused
        assert mdw.plan_cache.stats()["plan_misses"] > misses
        assert catalog.refreshes > refreshes
        assert not catalog.is_stale()

        # bit-identical with a plan-cache-free evaluation of the view
        view = mdw.store.view([mdw.model_name], rulebases=["OWLPRIME"])
        fresh = execute(view, text, nsm=mdw.namespaces)
        assert sorted(rows2.to_dicts(), key=repr) == sorted(
            fresh.to_dicts(), key=repr
        )
