"""Unit tests for the extended SPARQL function library."""

import pytest

from repro.rdf import Graph, IRI, Literal, Namespace, Triple
from repro.sparql import execute
from repro.sparql.errors import ExpressionError
from repro.sparql.expressions import ConstExpr, FunctionExpr, VarExpr

EX = Namespace("http://x/")


def const(v, **kw):
    return ConstExpr(Literal(v, **kw))


def ev(name, *args, binding=None):
    return FunctionExpr(name, list(args)).evaluate(binding or {})


class TestConditional:
    def test_if_true_branch(self):
        assert ev("if", const(True), const("yes"), const("no")) == Literal("yes")

    def test_if_false_branch(self):
        assert ev("if", const(0), const("yes"), const("no")) == Literal("no")

    def test_if_lazy_not_required_but_errors_propagate(self):
        with pytest.raises(ExpressionError):
            ev("if", ConstExpr(IRI("http://x/")), const(1), const(2))

    def test_if_arity(self):
        with pytest.raises(ExpressionError):
            ev("if", const(True), const(1))

    def test_coalesce_first_success(self):
        assert ev("coalesce", VarExpr("unbound"), const("fallback")) == Literal("fallback")

    def test_coalesce_all_fail(self):
        with pytest.raises(ExpressionError):
            ev("coalesce", VarExpr("a"), VarExpr("b"))

    def test_coalesce_keeps_first_value(self):
        assert ev("coalesce", const("x"), const("y")) == Literal("x")


class TestStringFunctions:
    def test_concat(self):
        assert ev("concat", const("customer"), const("_"), const("id")) == Literal("customer_id")

    def test_concat_empty(self):
        assert ev("concat") == Literal("")

    def test_substr_from(self):
        assert ev("substr", const("customer_id"), const(10)) == Literal("id")

    def test_substr_with_length(self):
        assert ev("substr", const("customer_id"), const(1), const(8)) == Literal("customer")

    def test_substr_one_based(self):
        with pytest.raises(ExpressionError):
            ev("substr", const("x"), const(0))

    def test_replace(self):
        assert ev("replace", const("cust_id"), const("_"), const("-")) == Literal("cust-id")

    def test_replace_regex(self):
        assert ev("replace", const("a1b2"), const("[0-9]"), const("")) == Literal("ab")

    def test_replace_case_flag(self):
        assert ev("replace", const("ABC"), const("b"), const("-"), const("i")) == Literal("A-C")

    def test_replace_bad_pattern(self):
        with pytest.raises(ExpressionError):
            ev("replace", const("x"), const("("), const("y"))

    def test_strbefore_strafter(self):
        assert ev("strbefore", const("customer_id"), const("_")) == Literal("customer")
        assert ev("strafter", const("customer_id"), const("_")) == Literal("id")

    def test_strbefore_missing_is_empty(self):
        assert ev("strbefore", const("abc"), const("z")) == Literal("")
        assert ev("strafter", const("abc"), const("z")) == Literal("")


class TestNumericFunctions:
    def test_abs(self):
        assert ev("abs", const(-7)).to_python() == 7

    def test_round_half_away_from_zero(self):
        assert ev("round", const(2.5)).to_python() == 3
        assert ev("round", const(-2.5)).to_python() == -3
        assert ev("round", const(2.4)).to_python() == 2

    def test_ceil_floor(self):
        assert ev("ceil", const(2.1)).to_python() == 3
        assert ev("floor", const(2.9)).to_python() == 2

    def test_non_numeric_errors(self):
        with pytest.raises(ExpressionError):
            ev("abs", const("seven"))


class TestInQueries:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.add(Triple(EX.a, EX.name, Literal("customer_id")))
        g.add(Triple(EX.b, EX.name, Literal("trade_amount")))
        g.add(Triple(EX.a, EX.score, Literal(0.87)))
        return g

    def test_bind_concat(self, graph):
        rows = execute(
            graph,
            'SELECT ?label WHERE { ?x <http://x/name> ?n BIND(concat("col:", ?n) AS ?label) }',
        )
        assert "col:customer_id" in rows.values("label")

    def test_filter_strbefore(self, graph):
        rows = execute(
            graph,
            'SELECT ?x WHERE { ?x <http://x/name> ?n FILTER (strbefore(?n, "_") = "customer") }',
        )
        assert rows.values("x") == ["http://x/a"]

    def test_bind_if_classification(self, graph):
        rows = execute(
            graph,
            'SELECT ?n ?grade WHERE { ?x <http://x/score> ?s . ?x <http://x/name> ?n '
            'BIND(if(?s >= 0.9, "audit", "standard") AS ?grade) }',
        )
        assert rows.to_dicts() == [{"n": "customer_id", "grade": "standard"}]

    def test_round_in_filter(self, graph):
        rows = execute(
            graph,
            "SELECT ?x WHERE { ?x <http://x/score> ?s FILTER (round(?s * 10) = 9) }",
        )
        assert rows.values("x") == ["http://x/a"]
