"""Unit tests for SPARQL evaluation over a small social/metadata graph."""

import pytest

from repro.rdf import Graph, IRI, Literal, Namespace, RDF, Triple
from repro.sparql import SparqlEvalError, execute

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    people = {
        "alice": ("Alice", 30, "zurich"),
        "bob": ("Bob", 25, "zurich"),
        "carol": ("Carol", 35, "geneva"),
    }
    for key, (name, age, city) in people.items():
        node = EX[key]
        g.add(Triple(node, RDF.type, EX.Person))
        g.add(Triple(node, EX.name, Literal(name)))
        g.add(Triple(node, EX.age, Literal(age)))
        g.add(Triple(node, EX.city, EX[city]))
    g.add(Triple(EX.alice, EX.knows, EX.bob))
    g.add(Triple(EX.alice, EX.knows, EX.carol))
    g.add(Triple(EX.bob, EX.knows, EX.carol))
    g.add(Triple(EX.robot, RDF.type, EX.Robot))
    g.add(Triple(EX.robot, EX.name, Literal("R2")))
    return g


def run(graph, text, **kw):
    return execute(graph, "PREFIX ex: <http://x/>\n" + text, **kw)


class TestBasicSelect:
    def test_single_pattern(self, graph):
        rows = run(graph, "SELECT ?p WHERE { ?p a ex:Person }")
        assert len(rows) == 3

    def test_join_two_patterns(self, graph):
        rows = run(graph, "SELECT ?n WHERE { ?p a ex:Person . ?p ex:name ?n }")
        assert sorted(r.value("n") for r in rows) == ["Alice", "Bob", "Carol"]

    def test_constant_object(self, graph):
        rows = run(graph, 'SELECT ?p WHERE { ?p ex:name "Alice" }')
        assert rows.column("p") == [EX.alice]

    def test_no_match_is_empty(self, graph):
        assert len(run(graph, 'SELECT ?p WHERE { ?p ex:name "Zelda" }')) == 0

    def test_shared_variable_join(self, graph):
        rows = run(
            graph,
            "SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:city ex:geneva }",
        )
        assert {(r.value("a"), r.value("b")) for r in rows} == {
            ("http://x/alice", "http://x/carol"),
            ("http://x/bob", "http://x/carol"),
        }

    def test_same_var_twice_in_pattern(self, graph):
        g = Graph([Triple(EX.n, EX.loop, EX.n), Triple(EX.n, EX.loop, EX.m)])
        rows = execute(g, "SELECT ?x WHERE { ?x <http://x/loop> ?x }")
        assert rows.column("x") == [EX.n]

    def test_select_star_columns_sorted(self, graph):
        rows = run(graph, "SELECT * WHERE { ?s ex:knows ?o }")
        assert rows.columns == ["o", "s"]

    def test_cross_product_when_disconnected(self, graph):
        rows = run(graph, "SELECT ?a ?b WHERE { ?a a ex:Person . ?b a ex:Robot }")
        assert len(rows) == 3

    def test_initial_bindings(self, graph):
        rows = run(
            graph,
            "SELECT ?n WHERE { ?p ex:name ?n }",
            bindings={"p": EX.alice},
        )
        assert rows.values("n") == ["Alice"]


class TestFilter:
    def test_numeric_comparison(self, graph):
        rows = run(graph, "SELECT ?p WHERE { ?p ex:age ?a FILTER (?a > 28) }")
        assert {r.value("p") for r in rows} == {"http://x/alice", "http://x/carol"}

    def test_regex_case_insensitive(self, graph):
        rows = run(graph, 'SELECT ?p WHERE { ?p ex:name ?n FILTER regex(?n, "^a", "i") }')
        assert rows.column("p") == [EX.alice]

    def test_filter_error_drops_row(self, graph):
        # ?n is a string for everyone: numeric comparison errors -> all dropped
        rows = run(graph, "SELECT ?p WHERE { ?p ex:name ?n FILTER (?n > 5) }")
        assert len(rows) == 0

    def test_logical_and_or(self, graph):
        rows = run(
            graph,
            "SELECT ?p WHERE { ?p ex:age ?a FILTER (?a > 24 && ?a < 31) }",
        )
        assert len(rows) == 2
        rows = run(
            graph,
            "SELECT ?p WHERE { ?p ex:age ?a FILTER (?a = 25 || ?a = 35) }",
        )
        assert len(rows) == 2

    def test_not(self, graph):
        rows = run(graph, "SELECT ?p WHERE { ?p ex:age ?a FILTER (!(?a = 30)) }")
        assert len(rows) == 2

    def test_str_of_iri(self, graph):
        rows = run(
            graph,
            'SELECT ?p WHERE { ?p ex:city ?c FILTER (str(?c) = "http://x/geneva") }',
        )
        assert rows.column("p") == [EX.carol]

    def test_bound_in_optional(self, graph):
        rows = run(
            graph,
            """SELECT ?p WHERE {
                ?p a ex:Person OPTIONAL { ?p ex:knows ?k }
                FILTER (!bound(?k))
            }""",
        )
        assert rows.column("p") == [EX.carol]

    def test_arithmetic(self, graph):
        rows = run(graph, "SELECT ?p WHERE { ?p ex:age ?a FILTER (?a * 2 = 50) }")
        assert rows.column("p") == [EX.bob]


class TestOptional:
    def test_optional_keeps_unmatched(self, graph):
        rows = run(
            graph,
            "SELECT ?p ?k WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }",
        )
        by_p = {}
        for r in rows:
            by_p.setdefault(r.value("p"), []).append(r["k"])
        assert by_p["http://x/carol"] == [None]
        assert len(by_p["http://x/alice"]) == 2

    def test_row_getitem_none_for_unbound(self, graph):
        rows = run(
            graph,
            'SELECT ?p ?k WHERE { ?p ex:name "Carol" OPTIONAL { ?p ex:knows ?k } }',
        )
        assert rows[0]["k"] is None


class TestUnion:
    def test_union_combines(self, graph):
        rows = run(
            graph,
            "SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Robot } }",
        )
        assert len(rows) == 4

    def test_union_duplicates_kept_without_distinct(self, graph):
        rows = run(
            graph,
            "SELECT ?x WHERE { { ?x ex:name ?n } UNION { ?x a ex:Person } }",
        )
        assert len(rows) == 7

    def test_union_distinct(self, graph):
        rows = run(
            graph,
            "SELECT DISTINCT ?x WHERE { { ?x ex:name ?n } UNION { ?x a ex:Person } }",
        )
        assert len(rows) == 4


class TestModifiers:
    def test_order_by(self, graph):
        rows = run(graph, "SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n")
        assert rows.values("n") == ["Alice", "Bob", "Carol", "R2"]

    def test_order_by_desc_numeric(self, graph):
        rows = run(graph, "SELECT ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a)")
        assert rows.values("a") == [35, 30, 25]

    def test_limit_offset(self, graph):
        rows = run(graph, "SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1")
        assert rows.values("n") == ["Bob", "Carol"]

    def test_distinct(self, graph):
        rows = run(graph, "SELECT DISTINCT ?c WHERE { ?p ex:city ?c }")
        assert len(rows) == 2


class TestAggregates:
    def test_count_star_group_by(self, graph):
        rows = run(
            graph,
            "SELECT ?c (COUNT(*) AS ?n) WHERE { ?p ex:city ?c } GROUP BY ?c ORDER BY DESC(?n)",
        )
        assert rows.to_dicts() == [
            {"c": "http://x/zurich", "n": 2},
            {"c": "http://x/geneva", "n": 1},
        ]

    def test_count_all_rows_single_group(self, graph):
        rows = run(graph, "SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Person }")
        assert rows.values("n") == [3]

    def test_count_empty_is_zero(self, graph):
        rows = run(graph, "SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Unicorn }")
        assert rows.values("n") == [0]

    def test_sum_avg_min_max(self, graph):
        rows = run(
            graph,
            "SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) "
            "WHERE { ?p ex:age ?a }",
        )
        d = rows.to_dicts()[0]
        assert d == {"s": 90, "avg": 30, "lo": 25, "hi": 35}

    def test_count_distinct(self, graph):
        rows = run(
            graph,
            "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?p ex:city ?c }",
        )
        assert rows.values("n") == [2]

    def test_group_concat(self, graph):
        rows = run(
            graph,
            'SELECT (GROUP_CONCAT(?n ; separator = "|") AS ?all) WHERE { ?p ex:age ?a . ?p ex:name ?n } ORDER BY ?n',
        )
        assert set(rows.values("all")[0].split("|")) == {"Alice", "Bob", "Carol"}

    def test_having(self, graph):
        rows = run(
            graph,
            "SELECT ?c (COUNT(*) AS ?n) WHERE { ?p ex:city ?c } GROUP BY ?c HAVING (?n > 1)",
        )
        assert rows.to_dicts() == [{"c": "http://x/zurich", "n": 2}]

    def test_ungrouped_var_rejected(self, graph):
        with pytest.raises(SparqlEvalError):
            run(
                graph,
                "SELECT ?p (COUNT(*) AS ?n) WHERE { ?p ex:city ?c } GROUP BY ?c",
            )


class TestAskConstruct:
    def test_ask_true(self, graph):
        assert run(graph, "ASK { ex:alice ex:knows ex:bob }") is True

    def test_ask_false(self, graph):
        assert run(graph, "ASK { ex:bob ex:knows ex:alice }") is False

    def test_construct(self, graph):
        out = run(
            graph,
            "CONSTRUCT { ?p ex:label ?n } WHERE { ?p a ex:Person . ?p ex:name ?n }",
        )
        assert len(out) == 3
        assert Triple(EX.alice, EX.label, Literal("Alice")) in out

    def test_construct_skips_unbound_template_vars(self, graph):
        out = run(
            graph,
            "CONSTRUCT { ?p ex:k ?k } WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }",
        )
        assert len(out) == 3  # carol's row has no ?k -> skipped
