"""Unit tests for the SPARQL 1.1 additions: BIND, VALUES, MINUS, EXISTS."""

import pytest

from repro.rdf import Graph, IRI, Literal, Namespace, Triple
from repro.sparql import SparqlEvalError, SparqlParseError, execute, parse_query

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    g.add(Triple(EX.a, EX.age, Literal(30)))
    g.add(Triple(EX.b, EX.age, Literal(25)))
    g.add(Triple(EX.c, EX.age, Literal(40)))
    g.add(Triple(EX.a, EX.knows, EX.b))
    g.add(Triple(EX.b, EX.knows, EX.c))
    g.add(Triple(EX.a, EX.name, Literal("Anna")))
    return g


def run(graph, query):
    return execute(graph, "PREFIX ex: <http://x/>\n" + query)


class TestBind:
    def test_computed_column(self, graph):
        rows = run(graph, "SELECT ?x ?d WHERE { ?x ex:age ?a BIND(?a * 2 AS ?d) }")
        by_x = {r.value("x"): r.value("d") for r in rows}
        assert by_x["http://x/a"] == 60
        assert by_x["http://x/b"] == 50

    def test_bind_string_function(self, graph):
        rows = run(
            graph,
            'SELECT ?u WHERE { ?x ex:name ?n BIND(ucase(?n) AS ?u) }',
        )
        assert rows.values("u") == ["ANNA"]

    def test_bind_error_leaves_unbound(self, graph):
        rows = run(graph, "SELECT ?x ?bad WHERE { ?x ex:age ?a BIND(?a / 0 AS ?bad) }")
        assert len(rows) == 3
        assert all(r["bad"] is None for r in rows)

    def test_bind_usable_in_later_filter(self, graph):
        rows = run(
            graph,
            "SELECT ?x WHERE { { ?x ex:age ?a BIND(?a * 2 AS ?d) } FILTER (?d > 55) }",
        )
        assert {r.value("x") for r in rows} == {"http://x/a", "http://x/c"}

    def test_rebinding_rejected(self, graph):
        with pytest.raises(SparqlEvalError, match="already bound"):
            run(graph, "SELECT ?a WHERE { ?x ex:age ?a BIND(1 AS ?a) }")

    def test_bind_in_empty_group(self, graph):
        rows = run(graph, "SELECT ?c WHERE { BIND(40 + 2 AS ?c) }")
        assert rows.values("c") == [42]


class TestValues:
    def test_single_variable(self, graph):
        rows = run(graph, "SELECT ?a WHERE { VALUES ?x { ex:a ex:c } ?x ex:age ?a }")
        assert sorted(rows.values("a")) == [30, 40]

    def test_values_restricts_join(self, graph):
        rows = run(graph, "SELECT ?x WHERE { VALUES ?x { ex:nope } ?x ex:age ?a }")
        assert len(rows) == 0

    def test_multi_variable_rows(self, graph):
        rows = run(
            graph,
            "SELECT ?x ?label WHERE { VALUES (?x ?label) { (ex:a \"first\") (ex:b \"second\") } ?x ex:age ?a }",
        )
        labels = {r.value("x"): r.value("label") for r in rows}
        assert labels["http://x/a"] == "first"

    def test_undef_constrains_nothing(self, graph):
        rows = run(
            graph,
            'SELECT ?x ?l WHERE { VALUES (?x ?l) { (UNDEF "any") } ?x ex:age ?a }',
        )
        assert len(rows) == 3  # UNDEF ?x joins every age row

    def test_values_after_pattern(self, graph):
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a VALUES ?x { ex:b } }")
        assert rows.values("x") == ["http://x/b"]

    def test_literal_values(self, graph):
        rows = run(graph, "SELECT ?x WHERE { VALUES ?a { 25 } ?x ex:age ?a }")
        assert rows.values("x") == ["http://x/b"]

    def test_arity_mismatch_rejected(self, graph):
        with pytest.raises(SparqlParseError, match="row has"):
            parse_query("SELECT * WHERE { VALUES (?x ?y) { (<http://x/a>) } }")

    def test_no_variables_rejected(self, graph):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { VALUES () { } }")


class TestMinus:
    def test_removes_matching(self, graph):
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?x ex:knows ?y } }")
        assert rows.values("x") == ["http://x/c"]

    def test_disjoint_domains_keep_everything(self, graph):
        # the MINUS side shares no variable: nothing is removed (spec)
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?p ex:knows ?q } }")
        assert len(rows) == 3

    def test_minus_empty_right(self, graph):
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?x ex:hates ?y } }")
        assert len(rows) == 3

    def test_minus_vs_not_exists_on_shared_vars(self, graph):
        minus_rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?x ex:knows ?y } }")
        ne_rows = run(
            graph,
            "SELECT ?x WHERE { ?x ex:age ?a FILTER NOT EXISTS { ?x ex:knows ?y } }",
        )
        assert set(minus_rows.values("x")) == set(ne_rows.values("x"))


class TestExists:
    def test_exists(self, graph):
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a FILTER EXISTS { ?x ex:knows ?y } }")
        assert {r.value("x") for r in rows} == {"http://x/a", "http://x/b"}

    def test_not_exists(self, graph):
        rows = run(
            graph, "SELECT ?x WHERE { ?x ex:age ?a FILTER NOT EXISTS { ?x ex:knows ?y } }"
        )
        assert rows.values("x") == ["http://x/c"]

    def test_exists_is_correlated(self, graph):
        # ?x inside EXISTS refers to the outer row's ?x
        rows = run(
            graph,
            "SELECT ?x WHERE { ?x ex:age ?a FILTER EXISTS { ?x ex:knows ex:b } }",
        )
        assert rows.values("x") == ["http://x/a"]

    def test_exists_in_boolean_combination(self, graph):
        rows = run(
            graph,
            "SELECT ?x WHERE { ?x ex:age ?a "
            "FILTER (EXISTS { ?x ex:knows ?y } && ?a > 28) }",
        )
        assert rows.values("x") == ["http://x/a"]

    def test_not_keyword_still_negates_expressions(self, graph):
        # NOT only introduces EXISTS; plain negation stays '!'
        rows = run(graph, "SELECT ?x WHERE { ?x ex:age ?a FILTER (!(?a = 30)) }")
        assert len(rows) == 2

    def test_exists_with_path(self, graph):
        rows = run(
            graph,
            "SELECT ?x WHERE { ?x ex:age ?a FILTER EXISTS { ?x ex:knows+ ex:c } }",
        )
        assert {r.value("x") for r in rows} == {"http://x/a", "http://x/b"}


class TestUseCaseIntegration:
    def test_orphan_items_via_not_exists(self):
        """Items that feed nothing — the governance question as SPARQL."""
        from repro.synth.figures import build_figure3_snippet

        snippet = build_figure3_snippet()
        rows = snippet.warehouse.query(
            """
            SELECT ?name WHERE {
              ?x dm:hasName ?name
              FILTER NOT EXISTS { ?x dt:isMappedTo ?y }
            }
            """
        )
        assert rows.values("name") == ["customer_id"]  # the chain's sink

    def test_values_parameterized_search(self):
        from repro.synth.figures import build_figure3_snippet

        snippet = build_figure3_snippet()
        rows = snippet.warehouse.query(
            """
            SELECT ?x WHERE {
              VALUES ?name { "customer_id" "partner_id" }
              ?x dm:hasName ?name
            }
            """
        )
        assert len(rows) == 2
