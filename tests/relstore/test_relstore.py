"""Unit tests for the relational baseline: engine, catalog, migrations."""

import pytest

from repro.relstore import (
    Column,
    EvolvableCatalog,
    ForeignKeyError,
    Migration,
    MigrationLog,
    NotNullError,
    RelationalCatalog,
    Table,
    TableError,
    UniqueViolation,
)


def people_table():
    return Table(
        "people",
        [Column("id"), Column("name"), Column("age", type=int, nullable=True)],
        primary_key="id",
        unique=("name",),
    )


class TestTable:
    def test_insert_and_get(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=30)
        assert t.get("p1")["name"] == "Alice"
        assert len(t) == 1

    def test_get_missing(self):
        assert people_table().get("nope") is None

    def test_primary_key_unique(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        with pytest.raises(UniqueViolation):
            t.insert(id="p1", name="Bob")

    def test_unique_column(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        with pytest.raises(UniqueViolation):
            t.insert(id="p2", name="Alice")

    def test_not_null(self):
        with pytest.raises(NotNullError):
            people_table().insert(id="p1", name=None)

    def test_nullable_ok(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=None)
        assert t.get("p1")["age"] is None

    def test_type_check(self):
        with pytest.raises(TableError):
            people_table().insert(id="p1", name="Alice", age="thirty")

    def test_unknown_column(self):
        with pytest.raises(TableError):
            people_table().insert(id="p1", name="A", shoe_size=42)

    def test_select_by_pk_and_unique(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=30)
        t.insert(id="p2", name="Bob", age=25)
        assert t.select({"id": "p1"})[0]["name"] == "Alice"
        assert t.select({"name": "Bob"})[0]["id"] == "p2"

    def test_select_with_predicate(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=30)
        t.insert(id="p2", name="Bob", age=25)
        assert [r["name"] for r in t.select(predicate=lambda r: r["age"] > 28)] == ["Alice"]

    def test_secondary_index(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=30)
        t.create_index("age")
        t.insert(id="p2", name="Bob", age=30)
        rows = t.select({"age": 30})
        assert {r["id"] for r in rows} == {"p1", "p2"}

    def test_update(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=30)
        t.update("p1", age=31)
        assert t.get("p1")["age"] == 31

    def test_update_unique_conflict(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        t.insert(id="p2", name="Bob")
        with pytest.raises(UniqueViolation):
            t.update("p2", name="Alice")

    def test_update_pk_rejected(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        with pytest.raises(TableError):
            t.update("p1", id="p9")

    def test_delete(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        assert t.delete("p1")
        assert not t.delete("p1")
        # unique value is released
        t.insert(id="p2", name="Alice")

    def test_add_column_backfills(self):
        t = people_table()
        t.insert(id="p1", name="Alice")
        t.add_column(Column("city", nullable=True))
        assert t.get("p1")["city"] is None
        t.insert(id="p2", name="Bob", city="Zurich")

    def test_add_not_null_column_needs_default(self):
        t = people_table()
        with pytest.raises(TableError):
            t.add_column(Column("city", nullable=False))

    def test_rows_returned_are_copies(self):
        t = people_table()
        t.insert(id="p1", name="Alice", age=1)
        row = t.get("p1")
        row["age"] = 99
        assert t.get("p1")["age"] == 1


class TestCatalog:
    @pytest.fixture
    def catalog(self):
        cat = RelationalCatalog()
        cat.db.insert("applications", app_id="a1", name="Payments")
        cat.db.insert("databases", db_id="d1", name="PayDB", app_id="a1")
        cat.db.insert("schemas", schema_id="s1", name="core", db_id="d1", area="integration")
        cat.db.insert("tables", table_id="t1", name="TCD100", schema_id="s1")
        cat.db.insert("columns", column_id="c1", name="customer_id", table_id="t1")
        cat.db.insert("columns", column_id="c2", name="partner_id", table_id="t1")
        cat.db.insert("columns", column_id="c3", name="client_id", table_id="t1")
        cat.db.insert("mappings", mapping_id="m1", source_column="c1", target_column="c2")
        cat.db.insert("mappings", mapping_id="m2", source_column="c2", target_column="c3")
        return cat

    def test_schema_created_upfront(self):
        cat = RelationalCatalog()
        assert "applications" in cat.db.table_names()
        assert "mappings" in cat.db.table_names()
        assert len(cat.db) == 9

    def test_foreign_keys_enforced(self, catalog):
        with pytest.raises(ForeignKeyError):
            catalog.db.insert("databases", db_id="d9", name="X", app_id="ghost")
        with pytest.raises(ForeignKeyError):
            catalog.db.insert(
                "mappings", mapping_id="m9", source_column="ghost", target_column="c1"
            )

    def test_find_columns(self, catalog):
        assert len(catalog.find_columns_by_name("customer_id")) == 1
        assert {r["name"] for r in catalog.find_columns_containing("id")} == {
            "customer_id",
            "partner_id",
            "client_id",
        }

    def test_columns_of_table(self, catalog):
        assert len(catalog.columns_of_table("t1")) == 3

    def test_lineage_transitive(self, catalog):
        lineage = catalog.lineage_of_column("c3")
        assert {m["mapping_id"] for m in lineage} == {"m1", "m2"}

    def test_lineage_of_source_is_empty(self, catalog):
        assert catalog.lineage_of_column("c1") == []

    def test_statistics(self, catalog):
        stats = catalog.statistics()
        assert stats["columns"] == 3
        assert stats["mappings"] == 2

    def test_unknown_table(self, catalog):
        with pytest.raises(TableError):
            catalog.db.table("nope")


class TestMigrations:
    def test_first_kind_creates_table(self):
        ev = EvolvableCatalog()
        ev.store("Log File", "log1")
        assert ev.log.count("CREATE TABLE") == 1
        ev.store("Log File", "log2")
        assert ev.log.count("CREATE TABLE") == 1  # no new DDL

    def test_new_attribute_adds_column(self):
        ev = EvolvableCatalog()
        ev.store("Log File", "log1")
        ev.store("Log File", "log2", retention="30d")
        assert ev.log.count("ADD COLUMN") == 1
        ev.store("Log File", "log3", retention="60d")
        assert ev.log.count("ADD COLUMN") == 1

    def test_new_relation_creates_link_table(self):
        ev = EvolvableCatalog()
        ev.store("App", "a1")
        ev.store("User", "u1")
        ev.relate("App", "a1", "owned by", "User", "u1")
        assert ev.log.count("CREATE TABLE") == 3
        assert ev.log.count("CREATE INDEX") == 1
        ev.relate("App", "a1", "owned by", "User", "u1")
        assert ev.log.count("CREATE TABLE") == 3

    def test_stored_data_retrievable(self):
        ev = EvolvableCatalog()
        ev.store("Log File", "log1", retention="30d")
        rows = ev.db.table("log_file_t").select({"id": "log1"})
        assert rows[0]["retention"] == "30d"

    def test_migration_script(self):
        log = MigrationLog()
        log.record(Migration("CREATE TABLE", "t", "id VARCHAR"))
        log.record(Migration("ADD COLUMN", "t", "c VARCHAR"))
        script = log.script()
        assert "CREATE TABLE t" in script
        assert "ALTER TABLE t ADD COLUMN" in script
        assert len(log) == 2
