"""Robustness tests: unicode, hostile inputs, and failure injection.

A production meta-data warehouse swallows whatever the bank's systems
emit — umlauts in customer names, emoji in report titles, injection-
looking strings in rule texts — and must neither crash nor corrupt the
graph.
"""

import pytest

from repro.core import MetadataWarehouse, validate_graph
from repro.etl import EtlOrchestrator, SynonymThesaurus, parse_metadata_xml
from repro.rdf import (
    Graph,
    IRI,
    Literal,
    Triple,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)

UNICODE_NAMES = [
    "Zürich_Kundenstamm",
    "compte_épargne",
    "顧客番号",
    "συναλλαγή",
    "שם_לקוח",
    "report📊quarterly",
]


class TestUnicode:
    @pytest.mark.parametrize("name", UNICODE_NAMES)
    def test_unicode_names_end_to_end(self, name):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Column")
        item = mdw.facts.add_instance(f"u_{abs(hash(name)) % 10_000}", cls, display_name=name)
        # searchable
        fragment = name[:3]
        results = mdw.search.search(fragment)
        assert any(h.name == name for h in results.hits)
        # conformant
        assert mdw.validate().conformant

    @pytest.mark.parametrize("name", UNICODE_NAMES)
    def test_unicode_serialization_roundtrip(self, name):
        g = Graph([Triple(IRI("http://x/s"), IRI("http://x/p"), Literal(name))])
        assert Graph(parse_ntriples(serialize_ntriples(g))) == g
        assert parse_turtle(serialize_turtle(g)) == g

    def test_unicode_persistence_roundtrip(self, tmp_path):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Column")
        for i, name in enumerate(UNICODE_NAMES):
            mdw.facts.add_instance(f"u{i}", cls, display_name=name)
        mdw.save(tmp_path / "wh")
        reopened = MetadataWarehouse.load(tmp_path / "wh")
        assert reopened.graph == mdw.graph

    def test_unicode_xml_feed(self):
        mdw = MetadataWarehouse()
        feed = """
        <metadata source="unicode-feed">
          <class name="Tabelle"/>
          <instance name="zuerich_kunden" class="Tabelle" display-name="Zürich Kundenstamm"/>
        </metadata>
        """
        result = EtlOrchestrator(mdw).run([feed])
        assert result.ok
        assert len(mdw.search.search("Zürich")) == 1


class TestHostileStrings:
    INJECTIONS = [
        "x\" . ?s ?p ?o . \"",              # SPARQL-ish breakout
        "'); DROP TABLE columns; --",        # SQL-ish
        "<script>alert(1)</script>",
        "a\\nb\\tc\\\\d",
        "line\nbreak\tand\ttabs",
    ]

    @pytest.mark.parametrize("text", INJECTIONS)
    def test_hostile_value_survives_graph_and_query(self, text):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Column")
        prop = mdw.schema.declare_property("note")
        item = mdw.facts.add_instance("victim", cls)
        mdw.facts.set_value(item, prop, text)
        # exact-match query built through bindings (never string splicing)
        rows = mdw.query(
            "SELECT ?x WHERE { ?x dm:note ?v }",
            bindings={"v": Literal(text)},
        )
        assert rows.values("x") == [item.value]

    @pytest.mark.parametrize("text", INJECTIONS)
    def test_hostile_value_roundtrips_serialization(self, text):
        g = Graph([Triple(IRI("http://x/s"), IRI("http://x/p"), Literal(text))])
        assert Graph(parse_ntriples(serialize_ntriples(g))) == g
        assert parse_turtle(serialize_turtle(g)) == g

    def test_hostile_search_term_is_literal_text(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("normal_column", cls)
        # regex metacharacters in a plain search must not blow up or match
        results = mdw.search.search("col(um)n+?")
        assert len(results) == 0
        # but do work in regex mode
        assert len(mdw.search.search("col(um)+n", regex=True)) == 1

    def test_invalid_regex_in_regex_mode_raises_cleanly(self):
        import re

        mdw = MetadataWarehouse()
        with pytest.raises(re.error):
            mdw.search.search("(", regex=True)


class TestFailureInjection:
    def test_partial_feed_failure_keeps_good_rows(self):
        """One malformed instance element fails the document parse —
        the other documents of the load still land."""
        mdw = MetadataWarehouse()
        good = '<metadata source="ok"><class name="T"/><instance name="a" class="T"/></metadata>'
        bad = '<metadata source="broken"><instance class="T"/></metadata>'  # no name
        orchestrator = EtlOrchestrator(mdw)
        result = orchestrator.run([good])
        assert result.ok
        from repro.etl import XmlSourceError

        with pytest.raises(XmlSourceError):
            orchestrator.run([bad])
        # the earlier load is intact
        assert len(mdw.search.search("a")) == 1

    def test_thesaurus_with_garbage_pairs(self):
        thesaurus = SynonymThesaurus()
        thesaurus.add_synonym("", "client")      # ignored
        thesaurus.add_synonym("  ", "client")    # ignored
        thesaurus.add_synonym("a", "a")          # self pair ignored
        assert len(thesaurus) == 0

    def test_corrupt_store_file_detected(self, tmp_path):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("T")
        mdw.facts.add_instance("x", cls)
        mdw.save(tmp_path / "wh")
        victim = tmp_path / "wh" / "models" / "DWH_CURR.nt"
        victim.write_text(victim.read_text() + "not a triple line\n")
        from repro.rdf import PersistenceError
        from repro.rdf.ntriples import NTriplesParseError

        with pytest.raises((PersistenceError, NTriplesParseError)):
            MetadataWarehouse.load(tmp_path / "wh")

    def test_graph_mutation_during_search_is_safe(self):
        """Search materializes candidates before matching; a concurrent-
        style mutation between searches never corrupts state."""
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("T")
        for i in range(20):
            mdw.facts.add_instance(f"item_{i}", cls)
        first = mdw.search.search("item")
        mdw.facts.retire_instance(first.hits[0].instance, force=True)
        second = mdw.search.search("item")
        assert len(second) == len(first) - 1
        assert mdw.validate().conformant


class TestCsvExport:
    def test_csv_roundtrip_shape(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("T")
        mdw.facts.add_instance("a", cls, display_name='has,comma and "quote"')
        rows = mdw.query("SELECT ?x ?n WHERE { ?x dm:hasName ?n }")
        csv_text = rows.to_csv()
        import csv as csv_module
        import io

        parsed = list(csv_module.reader(io.StringIO(csv_text)))
        assert parsed[0] == ["x", "n"]
        assert parsed[1][1] == 'has,comma and "quote"'

    def test_csv_unbound_is_empty_cell(self):
        from repro.sparql.results import Row, SolutionSequence

        seq = SolutionSequence(["a", "b"], [Row({"a": Literal("x")})])
        lines = seq.to_csv().splitlines()
        assert lines[1] == "x,"

    def test_cli_sql_csv(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        sql = tmp_path / "q.sql"
        sql.write_text(
            "SELECT term FROM TABLE(SEM_MATCH({?o dm:hasName ?term}, SEM_MODELS('DWH_CURR'), "
            "SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')))) "
            "WHERE regexp_like(term, 'customer')"
        )
        capsys.readouterr()
        assert main(["sql", str(path), str(sql), "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("term\n")
