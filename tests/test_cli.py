"""Integration tests for the repro-mdw command line."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "wh"
    code = main(["generate", str(path), "--scale", "tiny", "--seed", "3", "--with-index"])
    assert code == 0
    return path


class TestGenerate:
    def test_generate_creates_store(self, store_dir, capsys):
        assert (store_dir / "manifest.json").exists()

    def test_generate_output(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "wh2"), "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nodes" in out and "saved to" in out

    def test_generate_extended(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "wh3"), "--scale", "tiny", "--extended"])
        assert code == 0
        assert "log files" in capsys.readouterr().out


class TestStatsValidate:
    def test_stats(self, store_dir, capsys):
        assert main(["stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "FACTS" in out and "HIERARCH" in out.upper()

    def test_validate_conformant(self, store_dir, capsys):
        assert main(["validate", str(store_dir)]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_missing_store_errors(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_search_basic(self, store_dir, capsys):
        assert main(["search", str(store_dir), "customer"]) == 0
        out = capsys.readouterr().out
        assert 'Search Results for "customer"' in out

    def test_search_with_synonyms(self, store_dir, capsys):
        assert main(["search", str(store_dir), "client", "--synonyms"]) == 0
        assert "expanded:" in capsys.readouterr().out

    def test_search_area_filter(self, store_dir, capsys):
        assert main(["search", str(store_dir), "customer", "--area", "mart"]) == 0

    def test_search_unknown_class(self, store_dir, capsys):
        assert main(["search", str(store_dir), "x", "--class", "NoSuchClass"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_search_expand_group(self, store_dir, capsys):
        assert main(["search", str(store_dir), "customer", "--expand", "Attribute"]) == 0


class TestLineageFlows:
    def item_name(self, store_dir):
        from repro.core import MetadataWarehouse

        mdw = MetadataWarehouse.load(store_dir)
        results = mdw.search.search("", regex=True)  # matches everything
        # pick an item that has lineage
        for hit in results.hits:
            if mdw.lineage.upstream(hit.instance).max_depth() > 0:
                return hit.name
        return results.hits[0].name

    def test_lineage(self, store_dir, capsys):
        name = self.item_name(store_dir)
        assert main(["lineage", str(store_dir), name]) == 0
        assert "Lineage of" in capsys.readouterr().out

    def test_lineage_downstream_with_condition(self, store_dir, capsys):
        name = self.item_name(store_dir)
        code = main(
            ["lineage", str(store_dir), name, "--direction", "downstream", "--condition", "CH"]
        )
        assert code == 0

    def test_lineage_unknown_item(self, store_dir, capsys):
        assert main(["lineage", str(store_dir), "zzz_nothing"]) == 2
        assert "no item named" in capsys.readouterr().err

    def test_flows(self, store_dir, capsys):
        assert main(["flows", str(store_dir), "--granularity", "2"]) == 0
        assert "SOURCE OBJECTS" in capsys.readouterr().out


class TestIndexHistory:
    def test_index_build(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        assert main(["index", str(path)]) == 0
        assert "derived" in capsys.readouterr().out

    def test_index_unknown_rulebase(self, store_dir, capsys):
        assert main(["index", str(store_dir), "--rulebase", "NOPE"]) == 2

    def test_snapshot_and_versions(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        capsys.readouterr()
        assert main(["snapshot", str(path), "2026.R1"]) == 0
        assert "version 2026.R1" in capsys.readouterr().out
        assert main(["versions", str(path)]) == 0
        assert "2026.R1" in capsys.readouterr().out

    def test_snapshot_duplicate(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        main(["snapshot", str(path), "R1"])
        assert main(["snapshot", str(path), "R1"]) == 2

    def test_versions_empty(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        capsys.readouterr()
        main(["versions", str(path)])
        assert "no historized versions" in capsys.readouterr().out


class TestSql:
    SQL = """
    SELECT term FROM TABLE(SEM_MATCH(
        {?o dm:hasName ?term},
        SEM_MODELS('DWH_CURR'),
        SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
    WHERE regexp_like(term, 'customer')
    GROUP BY term
    """

    def test_sql_from_file(self, store_dir, tmp_path, capsys):
        sql_file = tmp_path / "q.sql"
        sql_file.write_text(self.SQL)
        assert main(["sql", str(store_dir), str(sql_file)]) == 0
        out = capsys.readouterr().out
        assert "row(s)" in out

    def test_sql_missing_file(self, store_dir, capsys):
        assert main(["sql", str(store_dir), "/no/such/file.sql"]) == 2

    def test_sql_malformed(self, store_dir, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT FROM nothing")
        assert main(["sql", str(store_dir), str(bad)]) == 2


class TestUpdateCommand:
    def test_update_from_file(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        update_file = tmp_path / "u.ru"
        update_file.write_text(
            'INSERT DATA { cs:cli_added rdf:type dm:Column . '
            'cs:cli_added dm:hasName "cli_added_column" }'
        )
        capsys.readouterr()
        assert main(["update", str(path), str(update_file)]) == 0
        assert "+2 / -0" in capsys.readouterr().out
        # persisted: a fresh open sees the change
        assert main(["search", str(path), "cli_added_column"]) == 0
        assert "cli_added_column" in capsys.readouterr().out

    def test_update_rejecting_nonconformant(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        bad = tmp_path / "bad.ru"
        # an instance -> property edge violates Table I
        bad.write_text(
            "INSERT DATA { cs:x dm:weird dm:hasName . "
            "cs:hasName_marker rdf:type rdf:Property }"
        )
        capsys.readouterr()
        # dm:hasName is untyped in a fresh tiny store... type it first so
        # the violation is real
        typer = tmp_path / "t.ru"
        typer.write_text("INSERT DATA { dm:weirdTarget rdf:type rdf:Property }")
        main(["update", str(path), str(typer)])
        bad.write_text("INSERT DATA { cs:x dm:other dm:weirdTarget }")
        code = main(["update", str(path), str(bad)])
        assert code == 2
        assert "Table I" in capsys.readouterr().err

    def test_update_missing_file(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        assert main(["update", str(path), "/no/such.ru"]) == 2

    def test_update_malformed(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        bad = tmp_path / "bad.ru"
        bad.write_text("UPSERT THINGS")
        assert main(["update", str(path), str(bad)]) == 2


class TestSearchServiceLevelFlags:
    def test_freshness_and_quality_flags(self, tmp_path, capsys):
        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        capsys.readouterr()
        assert main(
            ["search", str(path), "id", "--freshness", "daily", "--freshness", "weekly"]
        ) == 0
        out_fresh = capsys.readouterr().out
        assert main(["search", str(path), "id", "--min-quality", "0.9"]) == 0
        out_quality = capsys.readouterr().out
        assert main(["search", str(path), "id"]) == 0
        out_all = capsys.readouterr().out

        def hits(text):
            if "no results" in text:
                return 0
            return int(text.rsplit(" distinct item(s)", 1)[0].rsplit(None, 1)[-1])

        assert hits(out_fresh) <= hits(out_all)
        assert hits(out_quality) <= hits(out_all)


class TestLoad:
    """`repro-mdw load`: complete-release application to a saved store."""

    def write_feed(self, tmp_path, name, items):
        lines = ['<metadata source="cli-feed">']
        lines.append('  <class name="Application" world="technical"/>')
        for item in items:
            lines.append(f'  <instance name="{item}" class="Application"/>')
        lines.append("</metadata>")
        path = tmp_path / name
        path.write_text("\n".join(lines), encoding="utf-8")
        return path

    @pytest.fixture
    def wh(self, tmp_path, capsys):
        path = tmp_path / "wh"
        assert main(["generate", str(path), "--scale", "tiny", "--with-index"]) == 0
        capsys.readouterr()
        return path

    def test_full_then_incremental_with_versions(self, wh, tmp_path, capsys):
        r1 = self.write_feed(tmp_path, "r1.xml", ["app_alpha", "app_beta"])
        code = main(
            ["load", str(wh), str(r1), "--full-rebuild", "--version", "2026.R1"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "full release apply" in out

        r2 = self.write_feed(tmp_path, "r2.xml", ["app_alpha", "app_gamma"])
        code = main(["load", str(wh), str(r2), "--version", "2026.R2"])
        out = capsys.readouterr().out
        assert code == 0 and "incremental release apply" in out

        assert main(["versions", str(wh)]) == 0
        out = capsys.readouterr().out
        assert "2026.R1" in out and "2026.R2" in out
        assert main(["search", str(wh), "app_gamma"]) == 0
        assert "app_gamma" in capsys.readouterr().out
        assert main(["search", str(wh), "app_beta"]) == 0
        assert "no results" in capsys.readouterr().out

    def test_reapply_is_noop(self, wh, tmp_path, capsys):
        feed = self.write_feed(tmp_path, "r.xml", ["app_one"])
        assert main(["load", str(wh), str(feed), "--full-rebuild"]) == 0
        capsys.readouterr()
        assert main(["load", str(wh), str(feed)]) == 0
        out = capsys.readouterr().out
        assert "incremental release apply" in out and "+0 / -0" in out

    def test_incremental_and_full_are_exclusive(self, wh, tmp_path, capsys):
        feed = self.write_feed(tmp_path, "r.xml", ["app_one"])
        with pytest.raises(SystemExit):
            main(["load", str(wh), str(feed), "--incremental", "--full-rebuild"])

    def test_missing_feed_file(self, wh, capsys):
        assert main(["load", str(wh), "nope.xml"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_bad_xml_rejected(self, wh, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("not xml at all", encoding="utf-8")
        assert main(["load", str(wh), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestChaosIncremental:
    def test_chaos_incremental_converges(self, capsys):
        code = main(
            ["chaos", "--seed", "5", "--iterations", "1", "--documents", "2",
             "--instances", "4", "--incremental"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all converged" in out


class TestSnapshotFiles:
    def test_save_info_attach_cycle(self, store_dir, tmp_path, capsys):
        snap = tmp_path / "wh.mdws"
        assert main(["snapshot", "save", str(store_dir), str(snap)]) == 0
        out = capsys.readouterr().out
        assert "triple(s)" in out and snap.exists()

        assert main(["snapshot", "info", str(snap), "--verify"]) == 0
        out = capsys.readouterr().out
        assert '"format_version": 1' in out
        assert '"checksums": "ok"' in out

        assert main(["snapshot", "attach", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "DWH_CURR" in out

    def test_stats_works_on_snapshot_file(self, store_dir, tmp_path, capsys):
        snap = tmp_path / "wh.mdws"
        main(["snapshot", "save", str(store_dir), str(snap)])
        capsys.readouterr()
        assert main(["stats", str(snap)]) == 0
        assert "FACTS" in capsys.readouterr().out

    def test_info_detects_corruption(self, store_dir, tmp_path, capsys):
        snap = tmp_path / "wh.mdws"
        main(["snapshot", "save", str(store_dir), str(snap)])
        raw = bytearray(snap.read_bytes())
        raw[-1] ^= 0xFF
        snap.write_bytes(bytes(raw))
        capsys.readouterr()
        assert main(["snapshot", "info", str(snap), "--verify"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_migrate_legacy_store(self, store_dir, tmp_path, capsys):
        snap = tmp_path / "migrated.mdws"
        assert main(["snapshot", "migrate", str(store_dir), str(snap)]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out and snap.exists()
        assert main(["stats", str(snap)]) == 0

    def test_attach_missing_file_errors(self, tmp_path, capsys):
        assert main(["snapshot", "attach", str(tmp_path / "nope.mdws")]) == 2
        assert "error:" in capsys.readouterr().err


class TestChaosSnapshot:
    def test_chaos_snapshot_converges(self, capsys):
        code = main(
            ["chaos", "--seed", "1", "--iterations", "1", "--documents", "2",
             "--instances", "4", "--snapshot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all converged" in out

    def test_snapshot_and_incremental_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--iterations", "1", "--snapshot", "--incremental"])
