"""Unit tests for the text renderings of Figures 3, 6, and 7."""

import pytest

from repro.services.search import SearchFilters
from repro.synth.figures import build_figure3_snippet
from repro.ui import (
    render_graph_snippet,
    render_lineage_panes,
    render_search_results,
    render_trace,
)


@pytest.fixture(scope="module")
def snippet():
    return build_figure3_snippet()


class TestSearchView:
    def test_grouped_counts(self, snippet):
        results = snippet.warehouse.search.search(
            "customer", SearchFilters(classes=["Application1 Item", "Interface Item"])
        )
        pane = render_search_results(results)
        assert 'Search Results for "customer"' in pane
        assert "Column" in pane and "(1)" in pane
        assert "1 distinct item(s)" in pane

    def test_expand_group(self, snippet):
        results = snippet.warehouse.search.search("customer")
        pane = render_search_results(results, expand="Column")
        assert "customer_id" in pane

    def test_empty_results(self, snippet):
        results = snippet.warehouse.search.search("zzz")
        assert "no results" in render_search_results(results)

    def test_expanded_terms_shown(self, snippet):
        mdw = snippet.warehouse
        from repro.etl import SynonymThesaurus

        thesaurus = SynonymThesaurus()
        thesaurus.add_synonym("customer", "client")
        thesaurus.materialize(mdw.graph)
        mdw.search.invalidate_thesaurus()
        results = mdw.search.search("customer", expand_synonyms=True)
        assert "expanded: customer, client" in render_search_results(results)

    def test_deterministic(self, snippet):
        results = snippet.warehouse.search.search("id")
        assert render_search_results(results) == render_search_results(results)


class TestLineageView:
    def test_panes_show_flows(self, snippet):
        pane = render_lineage_panes(snippet.warehouse)
        assert "SOURCE OBJECTS" in pane and "TARGET OBJECTS" in pane
        assert "client_information_id" in pane
        assert "-- 1 ->" in pane

    def test_empty_scope(self, snippet):
        mdw = snippet.warehouse
        pane = render_lineage_panes(mdw, source_scope=snippet.customer_id)
        assert "no data flows" in pane

    def test_trace_tree(self, snippet):
        trace = snippet.warehouse.lineage.downstream(snippet.client_information_id)
        pane = render_trace(snippet.warehouse, trace)
        lines = pane.splitlines()
        assert any(line.startswith("* client_information_id") for line in lines)
        assert any(line.startswith("    - customer_id") for line in lines)

    def test_trace_conditions_listed(self):
        from repro.core import MetadataWarehouse

        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("N")
        a = mdw.facts.add_instance("a", cls)
        b = mdw.facts.add_instance("b", cls)
        mdw.facts.add_mapping(a, b, condition="country = 'CH'")
        pane = render_trace(mdw, mdw.lineage.downstream(a))
        assert "country = 'CH'" in pane


class TestGraphView:
    def test_three_layers_in_order(self, snippet):
        pane = render_graph_snippet(snippet.warehouse.graph)
        hierarchy_at = pane.index("HIERARCHIES")
        schema_at = pane.index("META-DATA SCHEMA")
        facts_at = pane.index("FACTS")
        assert hierarchy_at < schema_at < facts_at

    def test_edges_compacted_to_qnames(self, snippet):
        pane = render_graph_snippet(snippet.warehouse.graph)
        assert "dm:Application1_View_Column" in pane
        assert "rdfs:subClassOf" in pane
        assert "dt:isMappedTo" in pane

    def test_truncation(self, snippet):
        pane = render_graph_snippet(snippet.warehouse.graph, max_edges_per_layer=2)
        assert "more" in pane

    def test_violations_section(self):
        from repro.rdf import Graph, IRI, Namespace, RDF, Triple
        from repro.rdf.namespace import OWL

        ex = Namespace("http://x/")
        g = Graph(
            [
                Triple(ex.p, RDF.type, RDF.Property),
                Triple(ex.inst, ex.weird, ex.p),  # instance -> property: forbidden
            ]
        )
        pane = render_graph_snippet(g)
        assert "OUTSIDE TABLE I (1)" in pane
