"""Unit tests for the Figure 1/9 landscape overview renderer."""

from repro.synth import LandscapeConfig, generate_landscape
from repro.ui import render_landscape_overview


class TestOverview:
    def test_core_blocks(self):
        landscape = generate_landscape(LandscapeConfig.tiny(seed=4))
        pane = render_landscape_overview(landscape.subject_area_counts)
        for block in ("Applications", "Databases", "Interfaces", "Roles", "Data Flows"):
            assert f"[ {block}" in pane
        assert "extended scope" not in pane

    def test_extended_blocks_appear(self):
        landscape = generate_landscape(LandscapeConfig.tiny(seed=4).with_extended_scope())
        pane = render_landscape_overview(landscape.subject_area_counts)
        assert "extended scope (Figure 9)" in pane
        assert "[ Logs" in pane
        assert "[ Technical Components" in pane
        assert "[ Data Governance" in pane

    def test_counts_shown(self):
        pane = render_landscape_overview({"applications": 7, "databases": 3})
        assert "7" in pane and "3" in pane
        assert "[ Applications — 7 ]" in pane

    def test_unknown_keys_in_other(self):
        pane = render_landscape_overview({"applications": 1, "mystery area": 5})
        assert "[ Other ]" in pane
        assert "mystery area" in pane

    def test_block_totals(self):
        pane = render_landscape_overview({"schemas": 2, "tables": 3, "columns": 10})
        assert "[ Data Definitions — 15 ]" in pane

    def test_empty(self):
        pane = render_landscape_overview({})
        assert "Figure 1" in pane


class TestCliIntegration:
    def test_overview_and_explain_commands(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "wh"
        assert main(["generate", str(path), "--scale", "tiny"]) == 0
        capsys.readouterr()

        assert main(["overview", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[ Applications" in out and "total:" in out

        assert main(["explain", str(path), "SELECT ?x WHERE { ?x rdf:type ?c }"]) == 0
        assert "BGP" in capsys.readouterr().out

    def test_explain_bad_query(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "wh"
        main(["generate", str(path), "--scale", "tiny"])
        assert main(["explain", str(path), "SELECT WHERE {"]) == 2
