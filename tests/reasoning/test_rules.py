"""Unit tests for the rule formalism and rulebase registry."""

import pytest

from repro.rdf import IRI, Literal, NamespaceManager, RDF, RDFS, Triple, Variable
from repro.reasoning import (
    OWLPRIME,
    RDFS_RULEBASE,
    Rule,
    RuleParseError,
    Rulebase,
    get_rulebase,
    register_rulebase,
    rule,
    rulebase_names,
)


class TestRule:
    def test_construct(self):
        r = Rule(
            "t",
            [Triple(Variable("x"), RDF.type, Variable("c"))],
            Triple(Variable("x"), RDF.type, IRI("http://x/Thing")),
        )
        assert r.name == "t"
        assert len(r.premises) == 1

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule(
                "bad",
                [Triple(Variable("x"), RDF.type, IRI("http://x/A"))],
                Triple(Variable("x"), RDF.type, Variable("unseen")),
            )

    def test_no_premises_rejected(self):
        with pytest.raises(ValueError):
            Rule("bad", [], Triple(IRI("http://x/a"), RDF.type, IRI("http://x/A")))

    def test_instantiate(self):
        r = Rule(
            "t",
            [Triple(Variable("x"), RDF.type, Variable("c"))],
            Triple(Variable("x"), RDFS.label, Variable("c")),
        )
        out = r.instantiate({"x": IRI("http://x/a"), "c": IRI("http://x/C")})
        assert out == Triple(IRI("http://x/a"), RDFS.label, IRI("http://x/C"))

    def test_variables(self):
        r = rule("t", "?a ?p ?b . ?b ?q ?c -> ?a ?q ?c")
        assert r.variables() == {"a", "b", "c", "p", "q"}

    def test_equality_and_hash(self):
        r1 = rule("t", "?x rdf:type ?c -> ?x rdfs:label ?c")
        r2 = rule("t", "?x rdf:type ?c -> ?x rdfs:label ?c")
        assert r1 == r2
        assert len({r1, r2}) == 1


class TestRuleParsing:
    def test_parse_basic(self):
        r = rule("rdfs9", "?c rdfs:subClassOf ?d . ?x rdf:type ?c -> ?x rdf:type ?d")
        assert len(r.premises) == 2
        assert r.premises[0].predicate == RDFS.subClassOf

    def test_parse_full_iri(self):
        r = rule("t", "?x <http://x/p> ?y -> ?y <http://x/p> ?x")
        assert r.premises[0].predicate == IRI("http://x/p")

    def test_parse_custom_nsm(self):
        nsm = NamespaceManager()
        nsm.bind("dm", "http://dm/")
        r = rule("t", "?x dm:maps ?y -> ?y dm:maps ?x", nsm)
        assert r.premises[0].predicate == IRI("http://dm/maps")

    def test_missing_arrow(self):
        with pytest.raises(RuleParseError):
            rule("t", "?x rdf:type ?c")

    def test_two_conclusions_rejected(self):
        with pytest.raises(RuleParseError):
            rule("t", "?x ?p ?y -> ?y ?p ?x . ?x ?p ?x")

    def test_wrong_arity(self):
        with pytest.raises(RuleParseError):
            rule("t", "?x ?p -> ?x ?p ?x")

    def test_unbound_prefix(self):
        with pytest.raises(RuleParseError):
            rule("t", "?x nope:p ?y -> ?y nope:p ?x")

    def test_bare_word_rejected(self):
        with pytest.raises(RuleParseError):
            rule("t", "?x p ?y -> ?y p ?x")


class TestRulebase:
    def test_builtin_contents(self):
        assert "rdfs9" in RDFS_RULEBASE.rule_names()
        assert "owl-trans" in OWLPRIME.rule_names()
        assert set(RDFS_RULEBASE.rule_names()) <= set(OWLPRIME.rule_names())

    def test_registry(self):
        assert get_rulebase("OWLPRIME") is OWLPRIME
        assert get_rulebase("RDFS") is RDFS_RULEBASE
        assert "OWLPRIME" in rulebase_names()

    def test_unknown_rulebase(self):
        with pytest.raises(KeyError, match="registered"):
            get_rulebase("NOPE")

    def test_register_custom(self):
        custom = Rulebase("TEST_CUSTOM", [rule("r1", "?x ?p ?y -> ?y ?p ?x")])
        register_rulebase(custom)
        try:
            assert get_rulebase("TEST_CUSTOM") is custom
            with pytest.raises(ValueError):
                register_rulebase(custom)
            register_rulebase(custom, replace=True)
        finally:
            from repro.reasoning.rulebase import _REGISTRY

            _REGISTRY.pop("TEST_CUSTOM", None)

    def test_extended(self):
        extra = rule("syn", "?x <http://x/synonym> ?y -> ?y <http://x/synonym> ?x")
        bigger = RDFS_RULEBASE.extended("RDFS_PLUS", [extra])
        assert len(bigger) == len(RDFS_RULEBASE) + 1
        assert bigger.name == "RDFS_PLUS"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Rulebase("EMPTY", [])

    def test_duplicate_rule_names_rejected(self):
        r = rule("dup", "?x ?p ?y -> ?y ?p ?x")
        with pytest.raises(ValueError):
            Rulebase("B", [r, r])
