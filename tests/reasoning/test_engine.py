"""Unit tests for the forward-chaining engine and entailment indexes."""

import pytest

from repro.rdf import (
    Graph,
    IRI,
    Literal,
    Namespace,
    OWL,
    RDF,
    RDFS,
    Triple,
    TripleStore,
)
from repro.reasoning import (
    EntailmentIndexManager,
    OWLPRIME,
    RDFS_RULEBASE,
    Rulebase,
    build_entailment_index,
    closure,
    extend_closure,
    rule,
)

EX = Namespace("http://x/")


def hierarchy_graph():
    g = Graph()
    g.add(Triple(EX.ViewColumn, RDFS.subClassOf, EX.Attribute))
    g.add(Triple(EX.Attribute, RDFS.subClassOf, EX.Item))
    g.add(Triple(EX.customer_id, RDF.type, EX.ViewColumn))
    return g


class TestRdfsRules:
    def test_subclass_transitivity(self):
        derived, _ = closure(hierarchy_graph(), RDFS_RULEBASE)
        assert Triple(EX.ViewColumn, RDFS.subClassOf, EX.Item) in derived

    def test_type_inheritance(self):
        derived, _ = closure(hierarchy_graph(), RDFS_RULEBASE)
        assert Triple(EX.customer_id, RDF.type, EX.Attribute) in derived
        assert Triple(EX.customer_id, RDF.type, EX.Item) in derived

    def test_subproperty(self):
        g = Graph()
        g.add(Triple(EX.hasFirstName, RDFS.subPropertyOf, EX.hasName))
        g.add(Triple(EX.john, EX.hasFirstName, Literal("John")))
        derived, _ = closure(g, RDFS_RULEBASE)
        assert Triple(EX.john, EX.hasName, Literal("John")) in derived

    def test_subproperty_transitivity(self):
        g = Graph()
        g.add(Triple(EX.p1, RDFS.subPropertyOf, EX.p2))
        g.add(Triple(EX.p2, RDFS.subPropertyOf, EX.p3))
        derived, _ = closure(g, RDFS_RULEBASE)
        assert Triple(EX.p1, RDFS.subPropertyOf, EX.p3) in derived

    def test_domain(self):
        g = Graph()
        g.add(Triple(EX.hasFirstName, RDFS.domain, EX.Individual))
        g.add(Triple(EX.john, EX.hasFirstName, Literal("John")))
        derived, _ = closure(g, RDFS_RULEBASE)
        # the paper's example: instances with hasFirstName are Individuals
        assert Triple(EX.john, RDF.type, EX.Individual) in derived

    def test_range(self):
        g = Graph()
        g.add(Triple(EX.owns, RDFS.range, EX.Account))
        g.add(Triple(EX.john, EX.owns, EX.acct1))
        derived, _ = closure(g, RDFS_RULEBASE)
        assert Triple(EX.acct1, RDF.type, EX.Account) in derived

    def test_range_over_literal_not_derived(self):
        g = Graph()
        g.add(Triple(EX.hasName, RDFS.range, EX.NameString))
        g.add(Triple(EX.john, EX.hasName, Literal("John")))
        derived, _ = closure(g, RDFS_RULEBASE)
        # rdf:type about a literal is not a valid RDF triple
        assert len(list(derived.triples(None, RDF.type, EX.NameString))) == 0


class TestOwlRules:
    def test_symmetric(self):
        g = Graph()
        g.add(Triple(EX.isRelatedTo, RDF.type, OWL.SymmetricProperty))
        g.add(Triple(EX.a, EX.isRelatedTo, EX.b))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.b, EX.isRelatedTo, EX.a) in derived

    def test_transitive_chain(self):
        g = Graph()
        g.add(Triple(EX.isMappedTo, RDF.type, OWL.TransitiveProperty))
        for i in range(5):
            g.add(Triple(EX[f"n{i}"], EX.isMappedTo, EX[f"n{i+1}"]))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.n0, EX.isMappedTo, EX.n5) in derived
        # all pairs i<j derived except the 5 base edges
        assert derived.count(None, EX.isMappedTo, None) == 15 - 5

    def test_inverse(self):
        g = Graph()
        g.add(Triple(EX.feeds, OWL.inverseOf, EX.isFedBy))
        g.add(Triple(EX.app, EX.feeds, EX.dwh))
        g.add(Triple(EX.mart, EX.isFedBy, EX.core))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.dwh, EX.isFedBy, EX.app) in derived
        assert Triple(EX.core, EX.feeds, EX.mart) in derived

    def test_equivalent_class(self):
        g = Graph()
        g.add(Triple(EX.Customer, OWL.equivalentClass, EX.Client))
        g.add(Triple(EX.john, RDF.type, EX.Customer))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.john, RDF.type, EX.Client) in derived

    def test_equivalent_property(self):
        g = Graph()
        g.add(Triple(EX.hasName, OWL.equivalentProperty, EX.name))
        g.add(Triple(EX.a, EX.name, Literal("x")))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.a, EX.hasName, Literal("x")) in derived

    def test_sameas_propagation(self):
        g = Graph()
        g.add(Triple(EX.partner_42, OWL.sameAs, EX.customer_42))
        g.add(Triple(EX.partner_42, EX.hasName, Literal("John")))
        g.add(Triple(EX.acct, EX.ownedBy, EX.customer_42))
        derived, _ = closure(g, OWLPRIME)
        assert Triple(EX.customer_42, OWL.sameAs, EX.partner_42) in derived
        assert Triple(EX.customer_42, EX.hasName, Literal("John")) in derived
        assert Triple(EX.acct, EX.ownedBy, EX.partner_42) in derived


class TestEngineProperties:
    def test_derived_disjoint_from_base(self):
        g = hierarchy_graph()
        derived, _ = closure(g, OWLPRIME)
        assert all(t not in g for t in derived)

    def test_idempotent_fixpoint(self):
        g = hierarchy_graph()
        derived, _ = closure(g, OWLPRIME)
        merged = g | derived
        derived2, _ = closure(merged, OWLPRIME)
        assert len(derived2) == 0

    def test_base_untouched(self):
        g = hierarchy_graph()
        before = set(g)
        closure(g, OWLPRIME)
        assert set(g) == before

    def test_empty_graph(self):
        derived, report = closure(Graph(), OWLPRIME)
        assert len(derived) == 0
        assert report.rounds == 1

    def test_max_rounds_bounds_work(self):
        g = Graph()
        g.add(Triple(EX.isMappedTo, RDF.type, OWL.TransitiveProperty))
        for i in range(10):
            g.add(Triple(EX[f"n{i}"], EX.isMappedTo, EX[f"n{i+1}"]))
        partial, report = closure(g, OWLPRIME, max_rounds=2)
        full, _ = closure(g, OWLPRIME)
        assert report.rounds == 2
        assert len(partial) < len(full)

    def test_report_contents(self):
        _, report = closure(hierarchy_graph(), RDFS_RULEBASE)
        assert report.rulebase == "RDFS"
        assert report.base_triples == 3
        assert report.derived_triples == 3
        assert report.per_rule.get("rdfs9") == 2
        assert report.per_rule.get("rdfs11") == 1
        assert "derived" in report.summary()

    def test_custom_rulebase(self):
        synonyms = Rulebase(
            "SYN", [rule("syn-sym", "?a <http://x/synonymOf> ?b -> ?b <http://x/synonymOf> ?a")]
        )
        g = Graph([Triple(EX.client, EX.synonymOf, EX.customer)])
        derived, _ = closure(g, synonyms)
        assert Triple(EX.customer, EX.synonymOf, EX.client) in derived


class TestExtendClosure:
    def test_incremental_matches_full_rebuild(self):
        g = Graph()
        g.add(Triple(EX.isMappedTo, RDF.type, OWL.TransitiveProperty))
        for i in range(4):
            g.add(Triple(EX[f"n{i}"], EX.isMappedTo, EX[f"n{i+1}"]))
        derived, _ = closure(g, OWLPRIME)
        new_triple = Triple(EX.n4, EX.isMappedTo, EX.n5)
        g.add(new_triple)
        extend_closure(g, derived, [new_triple], OWLPRIME)
        full, _ = closure(g, OWLPRIME)
        assert set(derived) == set(full)

    def test_incremental_new_schema_triple(self):
        g = hierarchy_graph()
        derived, _ = closure(g, RDFS_RULEBASE)
        added = Triple(EX.Item, RDFS.subClassOf, EX.Anything)
        g.add(added)
        extend_closure(g, derived, [added], RDFS_RULEBASE)
        assert Triple(EX.customer_id, RDF.type, EX.Anything) in derived


class TestIndexLifecycle:
    def make_store(self):
        store = TripleStore()
        store.create_model("M").add_all(hierarchy_graph())
        return store

    def test_build_attaches(self):
        store = self.make_store()
        report = build_entailment_index(store, "M", "OWLPRIME")
        assert report.derived_triples == 3
        idx = store.index("M", "OWLPRIME")
        assert idx is not None and len(idx) == 3

    def test_unknown_rulebase_name(self):
        store = self.make_store()
        with pytest.raises(KeyError):
            build_entailment_index(store, "M", "NOPE")

    def test_manager_staleness(self):
        store = self.make_store()
        mgr = EntailmentIndexManager(store)
        assert mgr.is_stale("M")
        mgr.build("M")
        assert not mgr.is_stale("M")
        store.model("M").add(Triple(EX.extra, RDF.type, EX.ViewColumn))
        assert mgr.is_stale("M")

    def test_manager_refresh(self):
        store = self.make_store()
        mgr = EntailmentIndexManager(store)
        mgr.build("M")
        assert mgr.refresh("M") is None  # fresh: no work
        store.model("M").add(Triple(EX.extra, RDF.type, EX.ViewColumn))
        report = mgr.refresh("M")
        assert report is not None
        assert Triple(EX.extra, RDF.type, EX.Item) in store.index("M", "OWLPRIME")

    def test_manager_extend(self):
        store = self.make_store()
        mgr = EntailmentIndexManager(store)
        mgr.build("M")
        added = Triple(EX.extra, RDF.type, EX.ViewColumn)
        store.model("M").add(added)
        mgr.extend("M", [added])
        idx = store.index("M", "OWLPRIME")
        assert Triple(EX.extra, RDF.type, EX.Item) in idx
        assert not mgr.is_stale("M")

    def test_manager_extend_without_build_falls_back(self):
        store = self.make_store()
        mgr = EntailmentIndexManager(store)
        report = mgr.extend("M", [])
        assert report.derived_triples == 3
        assert mgr.built_indexes() == [("M", "OWLPRIME")]

    def test_query_visibility_contract(self):
        # End-to-end: the paper's core index behaviour
        store = self.make_store()
        build_entailment_index(store, "M", "OWLPRIME")
        without = store.view(["M"])
        with_rb = store.view(["M"], rulebases=["OWLPRIME"])
        probe = Triple(EX.customer_id, RDF.type, EX.Item)
        assert probe not in without
        assert probe in with_rb
