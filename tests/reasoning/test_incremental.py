"""DRed maintenance: the incremental entailment-index path.

Every scenario cross-checks against a from-scratch ``closure()`` of the
post-delta base — the maintained index must be bit-identical to a
rebuild, only cheaper.
"""

import random

import pytest

import repro.reasoning.index as index_module
from repro.rdf import Graph, Namespace, RDF, RDFS, Triple, TripleStore
from repro.rdf.ntriples import serialize_ntriples
from repro.reasoning import (
    DeltaTracker,
    EntailmentIndexManager,
    OWLPRIME,
    RDFS_RULEBASE,
    closure,
    extend_closure,
    maintain_closure,
)

EX = Namespace("http://x/")


def diamond_graph():
    """C below T along two independent legs (A and B), one instance."""
    g = Graph()
    g.add(Triple(EX.C, RDFS.subClassOf, EX.A))
    g.add(Triple(EX.C, RDFS.subClassOf, EX.B))
    g.add(Triple(EX.A, RDFS.subClassOf, EX.T))
    g.add(Triple(EX.B, RDFS.subClassOf, EX.T))
    g.add(Triple(EX.x, RDF.type, EX.C))
    return g


def assert_equals_rebuild(base, derived, rulebase=RDFS_RULEBASE):
    rebuilt, _ = closure(base, rulebase)
    assert serialize_ntriples(derived) == serialize_ntriples(rebuilt)


class TestDredRetraction:
    def test_retraction_removes_premise_of_derived_triple(self):
        base = diamond_graph()
        derived, _ = closure(base, RDFS_RULEBASE)
        assert Triple(EX.x, RDF.type, EX.T) in derived

        gone = Triple(EX.x, RDF.type, EX.C)
        base.discard(gone)
        report = maintain_closure(base, derived, (), [gone], RDFS_RULEBASE)

        # everything the retracted premise supported is gone for good
        assert Triple(EX.x, RDF.type, EX.A) not in derived
        assert Triple(EX.x, RDF.type, EX.T) not in derived
        assert report.overdeleted >= 3
        assert_equals_rebuild(base, derived)

    def test_rederivation_via_alternate_derivation(self):
        base = diamond_graph()
        derived, _ = closure(base, RDFS_RULEBASE)

        # C⊑T has two derivations (via A and via B); cutting one leg
        # overdeletes it, rederivation brings it back through the other
        gone = Triple(EX.A, RDFS.subClassOf, EX.T)
        base.discard(gone)
        report = maintain_closure(base, derived, (), [gone], RDFS_RULEBASE)

        assert Triple(EX.C, RDFS.subClassOf, EX.T) in derived
        assert Triple(EX.x, RDF.type, EX.T) in derived
        assert Triple(EX.x, RDF.type, EX.A) in derived  # C⊑A leg untouched
        assert report.overdeleted > 0
        assert report.rederived > 0
        assert_equals_rebuild(base, derived)

    def test_retracted_base_triple_still_entailed_enters_index(self):
        # C⊑T asserted *and* derivable; the derived-only closure excludes
        # it while asserted, and must include it once only derivable
        base = diamond_graph()
        asserted = Triple(EX.C, RDFS.subClassOf, EX.T)
        base.add(asserted)
        derived, _ = closure(base, RDFS_RULEBASE)
        assert asserted not in derived

        base.discard(asserted)
        maintain_closure(base, derived, (), [asserted], RDFS_RULEBASE)
        assert asserted in derived
        assert_equals_rebuild(base, derived)

    def test_added_base_triple_that_was_derived_leaves_index(self):
        base = diamond_graph()
        derived, _ = closure(base, RDFS_RULEBASE)
        promoted = Triple(EX.x, RDF.type, EX.T)
        assert promoted in derived

        base.add(promoted)
        maintain_closure(base, derived, [promoted], (), RDFS_RULEBASE)
        assert promoted not in derived
        assert_equals_rebuild(base, derived)

    def test_extend_closure_is_insertion_only_maintenance(self):
        base = diamond_graph()
        derived, _ = closure(base, RDFS_RULEBASE)
        added = [
            Triple(EX.T, RDFS.subClassOf, EX.Root),
            Triple(EX.y, RDF.type, EX.B),
        ]
        base.add_all(added)
        report = extend_closure(base, derived, added, RDFS_RULEBASE)
        assert report.mode == "incremental"
        assert Triple(EX.y, RDF.type, EX.Root) in derived
        assert_equals_rebuild(base, derived)

    def test_noop_delta_is_a_noop(self):
        base = diamond_graph()
        derived, _ = closure(base, RDFS_RULEBASE)
        before = serialize_ntriples(derived)
        report = maintain_closure(base, derived, (), (), RDFS_RULEBASE)
        assert serialize_ntriples(derived) == before
        assert report.overdeleted == 0 and report.rederived == 0


class TestDeltaTracker:
    def test_compensating_changes_net_to_fresh(self):
        g = diamond_graph()
        tracker = DeltaTracker(g)
        t = Triple(EX.z, RDF.type, EX.C)
        g.add(t)
        assert tracker.dirty
        g.discard(t)
        assert not tracker.dirty
        assert tracker.peek() == ([], [])

    def test_peek_nets_adds_and_removes(self):
        g = diamond_graph()
        tracker = DeltaTracker(g)
        added = Triple(EX.z, RDF.type, EX.C)
        removed = Triple(EX.x, RDF.type, EX.C)
        g.add(added)
        g.discard(removed)
        assert tracker.peek() == ([added], [removed])
        tracker.mark()
        assert not tracker.dirty

    def test_overflow_declares_defeat(self):
        g = diamond_graph()
        tracker = DeltaTracker(g)
        tracker._limit = 3
        for i in range(5):
            g.add(Triple(EX.term(f"inst{i}"), RDF.type, EX.C))
        assert tracker.overflown and tracker.dirty
        tracker.mark()
        assert not tracker.overflown


class TestManagerRefresh:
    def _warehouse_like(self):
        store = TripleStore()
        g = store.get_or_create_model("M")
        g.add_all(diamond_graph())
        manager = EntailmentIndexManager(store)
        manager.build("M", "RDFS")
        return store, g, manager

    def test_refresh_runs_dred_never_full_closure(self, monkeypatch):
        store, g, manager = self._warehouse_like()

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("refresh fell back to full closure()")

        monkeypatch.setattr(index_module, "closure", boom)
        g.add(Triple(EX.y, RDF.type, EX.B))
        assert manager.is_stale("M", "RDFS")
        report = manager.refresh("M", "RDFS")
        assert report is not None and report.mode == "incremental"
        assert Triple(EX.y, RDF.type, EX.T) in store.index("M", "RDFS")
        assert_equals_rebuild(g, store.index("M", "RDFS"))

    def test_noop_delta_keeps_index_object_untouched(self):
        store, g, manager = self._warehouse_like()
        index_before = store.index("M", "RDFS")
        t = Triple(EX.z, RDF.type, EX.C)
        g.add(t)
        g.discard(t)
        assert not manager.is_stale("M", "RDFS")
        assert manager.refresh("M", "RDFS") is None
        assert store.index("M", "RDFS") is index_before

    def test_failed_maintenance_poisons_tracker_then_rebuilds(self, monkeypatch):
        store, g, manager = self._warehouse_like()

        def torn(*args, **kwargs):
            raise RuntimeError("injected mid-maintenance crash")

        monkeypatch.setattr(index_module, "maintain_closure", torn)
        g.add(Triple(EX.y, RDF.type, EX.B))
        with pytest.raises(RuntimeError):
            manager.refresh("M", "RDFS")
        tracker = manager._trackers[("M", "RDFS")]
        assert tracker.overflown  # poisoned: delta no longer trustworthy

        monkeypatch.undo()
        report = manager.refresh("M", "RDFS")
        assert report is not None and report.mode == "full"
        assert_equals_rebuild(g, store.index("M", "RDFS"))


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_maintain_matches_rebuild(self, seed):
        rng = random.Random(seed)
        classes = [EX.term(f"C{i}") for i in range(8)]
        props = [EX.term(f"p{i}") for i in range(3)]
        instances = [EX.term(f"i{i}") for i in range(6)]

        def random_triple():
            kind = rng.randrange(4)
            if kind == 0:
                return Triple(rng.choice(classes), RDFS.subClassOf, rng.choice(classes))
            if kind == 1:
                return Triple(rng.choice(props), RDFS.subPropertyOf, rng.choice(props))
            if kind == 2:
                return Triple(rng.choice(instances), RDF.type, rng.choice(classes))
            return Triple(rng.choice(instances), rng.choice(props), rng.choice(instances))

        base = Graph()
        for _ in range(40):
            base.add(random_triple())
        for rulebase in (RDFS_RULEBASE, OWLPRIME):
            work = base.copy()
            derived, _ = closure(work, rulebase)
            for _ in range(4):  # several consecutive maintenance waves
                removed = [t for t in work if rng.random() < 0.15]
                added = [random_triple() for _ in range(6)]
                for t in removed:
                    work.discard(t)
                added = [t for t in added if work.add(t)]
                maintain_closure(work, derived, added, removed, rulebase)
                assert_equals_rebuild(work, derived, rulebase)
