"""Property-based tests for the reasoner (hypothesis + networkx oracle)."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, IRI, Namespace, RDF, RDFS, Triple
from repro.reasoning import OWLPRIME, RDFS_RULEBASE, closure, extend_closure

EX = Namespace("http://x/")

# small vocabularies keep the closure sizes manageable while still
# exercising cycles, diamonds, and self-loops
_classes = st.sampled_from([EX[f"C{i}"] for i in range(6)])
_instances = st.sampled_from([EX[f"i{i}"] for i in range(6)])

subclass_edges = st.lists(st.tuples(_classes, _classes), max_size=12)
type_edges = st.lists(st.tuples(_instances, _classes), max_size=8)


def build_graph(subclasses, types):
    g = Graph()
    for c, d in subclasses:
        g.add(Triple(c, RDFS.subClassOf, d))
    for x, c in types:
        g.add(Triple(x, RDF.type, c))
    return g


@settings(max_examples=100)
@given(subclass_edges, type_edges)
def test_subclass_closure_matches_networkx(subclasses, types):
    g = build_graph(subclasses, types)
    derived, _ = closure(g, RDFS_RULEBASE)

    nxg = nx.DiGraph()
    nxg.add_nodes_from({c for e in subclasses for c in e})
    nxg.add_edges_from(subclasses)
    expected = set()
    for c, d in nx.transitive_closure(nxg).edges():
        t = Triple(c, RDFS.subClassOf, d)
        if t not in g:
            expected.add(t)
    got = set(derived.triples(None, RDFS.subClassOf, None))
    assert got == expected


@settings(max_examples=100)
@given(subclass_edges, type_edges)
def test_type_inheritance_matches_reachability(subclasses, types):
    g = build_graph(subclasses, types)
    derived, _ = closure(g, RDFS_RULEBASE)

    nxg = nx.DiGraph()
    nxg.add_nodes_from({c for e in subclasses for c in e} | {c for _, c in types})
    nxg.add_edges_from(subclasses)
    expected = set()
    for x, c in types:
        for ancestor in nx.descendants(nxg, c):
            t = Triple(x, RDF.type, ancestor)
            if t not in g:
                expected.add(t)
    got = set(derived.triples(None, RDF.type, None))
    assert got == expected


@settings(max_examples=60)
@given(subclass_edges, type_edges)
def test_fixpoint_idempotence(subclasses, types):
    g = build_graph(subclasses, types)
    derived, _ = closure(g, OWLPRIME)
    again, _ = closure(g | derived, OWLPRIME)
    assert len(again) == 0


@settings(max_examples=60)
@given(subclass_edges, type_edges)
def test_monotonicity(subclasses, types):
    """Adding facts never removes derived facts."""
    g = build_graph(subclasses, types)
    derived_small, _ = closure(g, RDFS_RULEBASE)
    extra = Triple(EX.C0, RDFS.subClassOf, EX.C5)
    bigger = g.copy()
    bigger.add(extra)
    derived_big, _ = closure(bigger, RDFS_RULEBASE)
    missing = {t for t in derived_small if t not in derived_big and t not in bigger}
    assert not missing


@settings(max_examples=60)
@given(subclass_edges, type_edges, st.tuples(_classes, _classes))
def test_incremental_equals_batch(subclasses, types, new_edge):
    g = build_graph(subclasses, types)
    derived, _ = closure(g, RDFS_RULEBASE)
    added = Triple(new_edge[0], RDFS.subClassOf, new_edge[1])
    if added in g:
        return
    g.add(added)
    extend_closure(g, derived, [added], RDFS_RULEBASE)
    batch, _ = closure(g, RDFS_RULEBASE)
    # incremental result may retain triples that the batch run would
    # classify as base (added edge could equal a previously-derived one);
    # after removing base triples both must agree
    incremental = {t for t in derived if t not in g}
    assert incremental == set(batch)
