"""Unit tests for the governance queries and the reporting assistant."""

import pytest

from repro.core import MetadataWarehouse, TERMS
from repro.rdf import Triple
from repro.services import GovernanceService, ReportingAssistant
from repro.services.search import SearchFilters
from repro.synth import LandscapeConfig, generate_landscape
from repro.synth.figures import build_figure2_example


@pytest.fixture(scope="module")
def landscape():
    return generate_landscape(LandscapeConfig.tiny(seed=11))


class TestGovernance:
    @pytest.fixture
    def setup(self):
        mdw = MetadataWarehouse()
        app_cls = mdw.schema.declare_class("Application")
        role_cls = mdw.schema.declare_class("Role")
        user_cls = mdw.schema.declare_class("User")
        app = mdw.facts.add_instance("payments", app_cls)
        owner_role = mdw.facts.add_instance(
            "role_owner", role_cls, display_name="business owner"
        )
        support_role = mdw.facts.add_instance(
            "role_support", role_cls, display_name="support"
        )
        alice = mdw.facts.add_instance("alice", user_cls)
        bob = mdw.facts.add_instance("bob", user_cls)
        g = mdw.graph
        g.add(Triple(owner_role, TERMS.for_application, app))
        g.add(Triple(support_role, TERMS.for_application, app))
        g.add(Triple(alice, TERMS.plays_role, owner_role))
        g.add(Triple(bob, TERMS.plays_role, support_role))
        return mdw, app, alice, bob, owner_role

    def test_roles_of_user(self, setup):
        mdw, app, alice, bob, owner_role = setup
        service = GovernanceService(mdw)
        assert service.roles_of_user(alice) == [owner_role]
        assert service.role_name(owner_role) == "business owner"

    def test_applications_of_user(self, setup):
        mdw, app, alice, _, _ = setup
        assert GovernanceService(mdw).applications_of_user(alice) == {app}

    def test_users_with_access(self, setup):
        mdw, app, alice, bob, _ = setup
        assert GovernanceService(mdw).users_with_access(app) == {alice, bob}

    def test_owner_of(self, setup):
        mdw, app, alice, _, _ = setup
        assert GovernanceService(mdw).owner_of(app) == alice

    def test_orphan_applications(self, setup):
        mdw, app, *_ = setup
        service = GovernanceService(mdw)
        assert service.orphan_applications() == []
        app_cls = mdw.schema.class_by_label("Application")
        orphan = mdw.facts.add_instance("orphaned_app", app_cls)
        assert service.orphan_applications() == [orphan]

    def test_who_can_reach(self):
        landscape = generate_landscape(LandscapeConfig.tiny(seed=11))
        mdw = landscape.warehouse
        service = GovernanceService(mdw)
        item = landscape.staging_columns[0]
        reachable = service.who_can_reach(item)
        assert isinstance(reachable, dict)
        # every key is an application-level container
        for application in reachable:
            assert len(mdw.lineage.container_chain(application)) == 1

    def test_landscape_every_app_has_owner(self, landscape):
        service = GovernanceService(landscape.warehouse)
        # the generator always assigns a business-owner role to synthetic
        # source applications (marts get none)
        for app in landscape.source_applications:
            assert service.owner_of(app) is not None


class TestReportingAssistant:
    def test_plan_prefers_mart_items(self, landscape):
        mdw = landscape.warehouse
        assistant = ReportingAssistant(mdw)
        # pick a term known to exist in the mart layer
        name = None
        for attr in landscape.report_attributes:
            name = mdw.facts.name_of(attr).rsplit("_", 1)[0]
            break
        plan = assistant.plan_report([name])
        assert plan.complete
        best = plan.best(name)
        assert best is not None
        assert best.area_score == 3  # mart wins

    def test_unresolved_terms_reported(self, landscape):
        assistant = ReportingAssistant(landscape.warehouse)
        plan = assistant.plan_report(["zzz_does_not_exist"])
        assert not plan.complete
        assert plan.unresolved == ["zzz_does_not_exist"]
        assert "UNRESOLVED" in plan.summary()

    def test_candidates_capped(self, landscape):
        assistant = ReportingAssistant(landscape.warehouse)
        plan = assistant.plan_report(["id"], max_candidates=2)
        for candidates in plan.candidates.values():
            assert len(candidates) <= 2

    def test_provenance_depth_reported(self):
        fig2 = build_figure2_example()
        assistant = ReportingAssistant(fig2.warehouse)
        plan = assistant.plan_report(["client"], expand_synonyms=False)
        best = plan.best("client")
        assert best.provenance_depth == 2  # mart <- integration <- staging
        assert best.source_count == 1

    def test_synonym_resolution(self):
        fig2 = build_figure2_example()
        mdw = fig2.warehouse
        from repro.etl import SynonymThesaurus

        thesaurus = SynonymThesaurus()
        thesaurus.add_synonym("customer", "client")
        thesaurus.materialize(mdw.graph)
        assistant = ReportingAssistant(mdw)
        plan = assistant.plan_report(["customer"], expand_synonyms=True)
        # "customer" resolves through the synonym to the client_id item
        names = [c.name for c in plan.candidates["customer"]]
        assert "client_id" in names
