"""Unit tests for the inverted name index and its search integration."""

import pytest

from repro.core import MetadataWarehouse
from repro.rdf import Literal
from repro.services import SearchFilters
from repro.services.text_index import NameIndex
from repro.synth import LandscapeConfig, generate_landscape


@pytest.fixture
def mdw():
    mdw = MetadataWarehouse()
    cls = mdw.schema.declare_class("Column")
    for i, name in enumerate(
        ["customer_id", "customer_name", "trade_amount", "customer_id"]
    ):
        mdw.facts.add_instance(f"item_{i}", cls, display_name=name)
    return mdw


class TestNameIndex:
    def test_build_from_graph(self, mdw):
        index = NameIndex(mdw.graph, auto_maintain=False)
        assert index.vocabulary_size == 3  # customer_id appears twice
        assert len(index) == 4

    def test_candidates_substring(self, mdw):
        index = NameIndex(mdw.graph, auto_maintain=False)
        assert len(index.candidates("customer")) == 3
        assert len(index.candidates("trade")) == 1
        assert index.candidates("zzz") == set()

    def test_case_insensitive(self, mdw):
        index = NameIndex(mdw.graph, auto_maintain=False)
        assert len(index.candidates("CUSTOMER")) == 3

    def test_candidates_for_terms_unions(self, mdw):
        index = NameIndex(mdw.graph, auto_maintain=False)
        assert len(index.candidates_for_terms(["customer", "trade"])) == 4

    def test_auto_maintained_add(self, mdw):
        index = NameIndex(mdw.graph)
        cls = mdw.schema.class_by_label("Column")
        mdw.facts.add_instance("late", cls, display_name="customer_late")
        assert len(index.candidates("customer_late")) == 1

    def test_auto_maintained_remove(self, mdw):
        index = NameIndex(mdw.graph)
        victim = next(iter(index.candidates("trade")))
        mdw.facts.retire_instance(victim, force=True)
        assert index.candidates("trade") == set()

    def test_close_stops_maintenance(self, mdw):
        index = NameIndex(mdw.graph)
        index.close()
        cls = mdw.schema.class_by_label("Column")
        mdw.facts.add_instance("after_close", cls, display_name="post_close_name")
        assert index.candidates("post_close") == set()

    def test_rebuild_catches_up(self, mdw):
        index = NameIndex(mdw.graph, auto_maintain=False)
        cls = mdw.schema.class_by_label("Column")
        mdw.facts.add_instance("later", cls, display_name="missed_name")
        assert index.candidates("missed") == set()
        index.rebuild()
        assert len(index.candidates("missed")) == 1

    def test_repr(self, mdw):
        assert "vocabulary=3" in repr(NameIndex(mdw.graph, auto_maintain=False))


class TestSearchIntegration:
    def test_indexed_results_identical(self):
        landscape = generate_landscape(LandscapeConfig.small(seed=13))
        mdw = landscape.warehouse
        plain = mdw.search.search("customer")
        mdw.search.enable_index()
        indexed = mdw.search.search("customer")
        assert [h.instance for h in indexed.hits] == [h.instance for h in plain.hits]

    def test_indexed_with_filters_identical(self):
        from repro.core import TERMS

        landscape = generate_landscape(LandscapeConfig.small(seed=13))
        mdw = landscape.warehouse
        filters = SearchFilters(classes=["Attribute"], areas=[TERMS.area_integration])
        plain = mdw.search.search("id", filters)
        mdw.search.enable_index()
        indexed = mdw.search.search("id", filters)
        assert [h.instance for h in indexed.hits] == [h.instance for h in plain.hits]

    def test_regex_bypasses_index(self, mdw):
        index = mdw.search.enable_index()
        results = mdw.search.search("^customer_(id|name)$", regex=True)
        assert len(results) == 3

    def test_index_sees_updates_through_sparql(self, mdw):
        mdw.search.enable_index()
        mdw.update('INSERT DATA { cs:new_one dm:hasName "customer_fresh" }')
        assert any(
            h.name == "customer_fresh" for h in mdw.search.search("customer_fresh").hits
        )

    def test_enable_idempotent(self, mdw):
        assert mdw.search.enable_index() is mdw.search.enable_index()
        assert mdw.search.index is not None
