"""Unit tests for the search facility (use case IV.A, Figures 5 and 6)."""

import pytest

from repro.core import MetadataWarehouse, TERMS, World
from repro.etl import SynonymThesaurus
from repro.services import SearchFilters, SearchService
from repro.synth.figures import build_figure3_snippet


@pytest.fixture
def snippet():
    return build_figure3_snippet()


@pytest.fixture
def mdw(snippet):
    return snippet.warehouse


class TestFigure5Walkthrough:
    """The paper's own worked example of the search algorithm."""

    def test_narrowing_to_application1_view_column(self, mdw, snippet):
        service = mdw.search
        valid = service._valid_classes(
            SearchFilters(classes=["Application1 Item", "Interface Item"])
        )
        # steps 1+2: the intersection is exactly Application1_View_Column
        assert valid == {snippet.classes["Application1 View Column"]}

    def test_step3_finds_customer_id(self, mdw, snippet):
        results = mdw.search.search(
            "customer",
            SearchFilters(classes=["Application1 Item", "Interface Item"]),
        )
        assert [h.instance for h in results.hits] == [snippet.customer_id]

    def test_inherited_group_memberships(self, mdw, snippet):
        """customer_id appears in every parent class's group (Figure 6)."""
        results = mdw.search.search(
            "customer",
            SearchFilters(classes=["Application1 Item", "Interface Item"]),
        )
        group_labels = {label for _, label, _ in results.groups()}
        assert {"Column", "Attribute", "Item", "Application1 Item", "Interface Item"} <= group_labels

    def test_unnarrowed_search(self, mdw, snippet):
        results = mdw.search.search("customer")
        assert snippet.customer_id in [h.instance for h in results.hits]

    def test_partner_not_matched(self, mdw):
        results = mdw.search.search("customer")
        assert all("partner" not in h.name for h in results.hits)


class TestFilters:
    @pytest.fixture
    def mdw(self):
        mdw = MetadataWarehouse()
        item = mdw.schema.declare_class("Item")
        col = mdw.schema.declare_class("Column", parents=item)
        biz = mdw.schema.declare_class("Business Term", world=World.BUSINESS, parents=item)
        a = mdw.facts.add_instance("customer_id_col", col, display_name="customer_id")
        mdw.facts.set_area(a, TERMS.area_inbound)
        mdw.facts.set_level(a, TERMS.level_physical)
        b = mdw.facts.add_instance("customer_total", col, display_name="customer_total")
        mdw.facts.set_area(b, TERMS.area_mart)
        mdw.facts.set_level(b, TERMS.level_logical)
        t = mdw.facts.add_instance("customer_term", biz, display_name="customer")
        return mdw

    def test_area_filter(self, mdw):
        results = mdw.search.search(
            "customer", SearchFilters(areas=[TERMS.area_mart])
        )
        assert results.instance_names() == ["customer_total"]

    def test_level_filter(self, mdw):
        results = mdw.search.search(
            "customer", SearchFilters(levels=[TERMS.level_physical])
        )
        assert results.instance_names() == ["customer_id"]

    def test_world_filter(self, mdw):
        results = mdw.search.search("customer", SearchFilters(world=World.BUSINESS))
        assert results.instance_names() == ["customer"]

    def test_class_filter_by_label(self, mdw):
        results = mdw.search.search("customer", SearchFilters(classes=["Column"]))
        assert len(results) == 2

    def test_class_filter_by_iri(self, mdw):
        cls = mdw.schema.class_by_label("Column")
        results = mdw.search.search("customer", SearchFilters(classes=[cls]))
        assert len(results) == 2

    def test_unknown_class_filter(self, mdw):
        with pytest.raises(KeyError):
            mdw.search.search("customer", SearchFilters(classes=["Nonexistent"]))

    def test_case_insensitive(self, mdw):
        assert len(mdw.search.search("CUSTOMER")) == 3

    def test_regex_mode(self, mdw):
        results = mdw.search.search("^customer_(id|total)$", regex=True)
        assert len(results) == 2

    def test_no_hits(self, mdw):
        assert len(mdw.search.search("zzz_nothing")) == 0


class TestSynonyms:
    @pytest.fixture
    def mdw(self):
        mdw = MetadataWarehouse()
        col = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("client_number", col, display_name="client_number")
        mdw.facts.add_instance("customer_code", col, display_name="customer_code")
        thesaurus = SynonymThesaurus()
        thesaurus.add_synonym("customer", "client")
        thesaurus.materialize(mdw.graph)
        return mdw

    def test_expansion_widens_hits(self, mdw):
        plain = mdw.search.search("customer")
        expanded = mdw.search.search("customer", expand_synonyms=True)
        assert len(plain) == 1
        assert len(expanded) == 2
        assert expanded.expanded_terms == ["customer", "client"]

    def test_matched_term_recorded(self, mdw):
        expanded = mdw.search.search("customer", expand_synonyms=True)
        matched = {h.name: h.matched_term for h in expanded.hits}
        assert matched["client_number"] == "client"
        assert matched["customer_code"] == "customer"

    def test_thesaurus_rebuilt_from_graph(self, mdw):
        service = SearchService(mdw)
        assert service.thesaurus.synonyms("customer") == {"client"}

    def test_invalidate_thesaurus(self, mdw):
        service = SearchService(mdw)
        _ = service.thesaurus
        extra = SynonymThesaurus()
        extra.add_synonym("customer", "partner")
        extra.materialize(mdw.graph)
        service.invalidate_thesaurus()
        assert "partner" in service.thesaurus.synonyms("customer")


class TestGroups:
    def test_counts_sum_per_class(self, snippet):
        mdw = snippet.warehouse
        results = mdw.search.search("id")  # hits all three items
        for cls, label, count in results.groups():
            assert count == len(results.group_members(cls))

    def test_groups_sorted_by_label(self, snippet):
        results = snippet.warehouse.search.search("id")
        labels = [label for _, label, _ in results.groups()]
        assert labels == sorted(labels)

    def test_distinct_hits_not_double_counted(self, snippet):
        results = snippet.warehouse.search.search("id")
        assert len(results) == 3  # client_information_id, partner_id, customer_id


class TestThesaurusDeltaInvalidation:
    """A graph-built thesaurus only goes stale on thesaurus-edge changes."""

    @pytest.fixture
    def mdw(self):
        mdw = MetadataWarehouse()
        col = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("client_number", col, display_name="client_number")
        thesaurus = SynonymThesaurus()
        thesaurus.add_synonym("customer", "client")
        thesaurus.materialize(mdw.graph)
        return mdw

    def test_unrelated_change_keeps_cached_thesaurus(self, mdw):
        service = SearchService(mdw)
        cached = service.thesaurus
        mdw.facts.add_instance(
            "partner_code",
            mdw.schema.namespace.term("Column"),
            display_name="partner_code",
        )
        assert service.thesaurus is cached

    def test_synonym_edge_invalidates(self, mdw):
        service = SearchService(mdw)
        cached = service.thesaurus
        extra = SynonymThesaurus()
        extra.add_synonym("customer", "partner")
        extra.materialize(mdw.graph)
        rebuilt = service.thesaurus
        assert rebuilt is not cached
        assert "partner" in rebuilt.synonyms("customer")

    def test_explicit_thesaurus_is_never_auto_invalidated(self, mdw):
        explicit = SynonymThesaurus()
        explicit.add_synonym("customer", "konto")
        service = SearchService(mdw, thesaurus=explicit)
        extra = SynonymThesaurus()
        extra.add_synonym("customer", "partner")
        extra.materialize(mdw.graph)
        assert service.thesaurus is explicit
