"""Unit tests for lineage (use case IV.B, Figures 7 and 8) and impact."""

import pytest

from repro.core import MetadataWarehouse, TERMS
from repro.services import ImpactAnalysis, LineageService, PathExplosionError
from repro.synth import generate_pipeline
from repro.synth.figures import build_figure2_example, build_figure3_snippet


@pytest.fixture
def snippet():
    return build_figure3_snippet()


class TestFigure8Walkthrough:
    def test_dependents_of_type(self, snippet):
        """(isMappedTo)* rdf:type from client_information_id reaches
        customer_id — the paper's exact example."""
        deps = snippet.warehouse.lineage.dependents_of_type(
            snippet.client_information_id,
            ["Application1 Item", "Interface Item"],
        )
        assert deps == [snippet.customer_id]

    def test_intermediate_not_a_valid_target(self, snippet):
        """partner_id is reached but filtered out: it is no
        Application1_View_Column."""
        trace = snippet.warehouse.lineage.downstream(snippet.client_information_id)
        assert snippet.partner_id in trace.items()
        deps = snippet.warehouse.lineage.dependents_of_type(
            snippet.client_information_id,
            ["Application1 Item", "Interface Item"],
        )
        assert snippet.partner_id not in deps

    def test_no_filters_returns_everything_reached(self, snippet):
        deps = snippet.warehouse.lineage.dependents_of_type(
            snippet.client_information_id, []
        )
        assert set(deps) == {snippet.partner_id, snippet.customer_id}


class TestTraces:
    def test_upstream(self, snippet):
        trace = snippet.warehouse.lineage.upstream(snippet.customer_id)
        assert trace.items() == {
            snippet.customer_id,
            snippet.partner_id,
            snippet.client_information_id,
        }
        assert trace.max_depth() == 2
        assert trace.endpoints() == {snippet.client_information_id}

    def test_downstream(self, snippet):
        trace = snippet.warehouse.lineage.downstream(snippet.client_information_id)
        assert trace.endpoints() == {snippet.customer_id}
        assert len(trace) == 2

    def test_max_depth_cuts(self, snippet):
        trace = snippet.warehouse.lineage.downstream(
            snippet.client_information_id, max_depth=1
        )
        assert snippet.customer_id not in trace.items()

    def test_isolated_item(self, snippet):
        mdw = snippet.warehouse
        lonely = mdw.facts.add_instance("lonely", snippet.classes["Attribute"])
        trace = mdw.lineage.upstream(lonely)
        assert trace.items() == {lonely}
        assert trace.endpoints() == {lonely}
        assert trace.max_depth() == 0

    def test_bad_direction(self, snippet):
        with pytest.raises(ValueError):
            snippet.warehouse.lineage.trace(snippet.customer_id, "sideways")

    def test_contains(self, snippet):
        trace = snippet.warehouse.lineage.upstream(snippet.customer_id)
        assert snippet.partner_id in trace

    def test_cycle_terminates(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Node")
        a = mdw.facts.add_instance("a", cls)
        b = mdw.facts.add_instance("b", cls)
        mdw.facts.add_mapping(a, b)
        mdw.facts.add_mapping(b, a)
        trace = mdw.lineage.downstream(a)
        assert trace.items() == {a, b}


class TestConditions:
    @pytest.fixture
    def mdw(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Node")
        items = {n: mdw.facts.add_instance(n, cls) for n in "abcd"}
        mdw.facts.add_mapping(items["a"], items["b"], condition="country = 'CH'")
        mdw.facts.add_mapping(items["a"], items["c"], condition="country = 'US'")
        mdw.facts.add_mapping(items["b"], items["d"], rule="merge")
        self_items = items
        return mdw, items

    def test_edge_metadata(self, mdw):
        mdw, items = mdw
        edge = mdw.lineage.edge(items["a"], items["b"])
        assert edge.condition == "country = 'CH'"
        edge2 = mdw.lineage.edge(items["b"], items["d"])
        assert edge2.rule == "merge"
        assert edge2.condition is None

    def test_condition_filter_prunes_trace(self, mdw):
        mdw, items = mdw
        trace = mdw.lineage.downstream(
            items["a"],
            condition_filter=lambda e: e.condition is None or "CH" in e.condition,
        )
        assert items["c"] not in trace.items()
        assert items["d"] in trace.items()

    def test_filter_on_paths(self, mdw):
        mdw, items = mdw
        paths = mdw.lineage.paths(items["a"], items["d"])
        assert paths == [[items["a"], items["b"], items["d"]]]
        filtered = mdw.lineage.paths(
            items["a"], items["d"], condition_filter=lambda e: e.condition is None
        )
        assert filtered == []


class TestPathExplosion:
    def test_counts_grow_exponentially(self):
        counts = []
        for depth in (2, 4, 6):
            pipeline = generate_pipeline(
                stages=depth, items_per_stage=3, fan=2, condition_fraction=0.0
            )
            counts.append(pipeline.warehouse.lineage.count_paths(pipeline.source))
        assert counts[0] < counts[1] < counts[2]
        assert counts[2] == 2 ** 6

    def test_condition_filter_bounds_growth(self):
        pipeline = generate_pipeline(
            stages=8, items_per_stage=3, fan=2, condition_fraction=0.6, seed=3
        )
        lineage = pipeline.warehouse.lineage
        unfiltered = lineage.count_paths(pipeline.source)
        filtered = lineage.count_paths(
            pipeline.source,
            condition_filter=lambda e: e.condition is None
            or e.condition == pipeline.conditions_used[0],
        )
        assert filtered < unfiltered

    def test_enumeration_budget(self):
        pipeline = generate_pipeline(
            stages=10, items_per_stage=4, fan=3, condition_fraction=0.0
        )
        lineage = pipeline.warehouse.lineage
        sink = pipeline.stages[-1][0]
        with pytest.raises(PathExplosionError):
            lineage.paths(pipeline.source, sink, max_paths=50)

    def test_count_paths_handles_cycles(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Node")
        a = mdw.facts.add_instance("a", cls)
        b = mdw.facts.add_instance("b", cls)
        c = mdw.facts.add_instance("c", cls)
        mdw.facts.add_mapping(a, b)
        mdw.facts.add_mapping(b, a)
        mdw.facts.add_mapping(b, c)
        assert mdw.lineage.count_paths(a) >= 1


class TestDrilldown:
    @pytest.fixture
    def fig2(self):
        return build_figure2_example()

    def test_container_chain(self, snippet):
        mdw = snippet.warehouse
        # give customer_id a containment chain: column -> view -> schema
        item_cls = snippet.classes["Item"]
        view = mdw.facts.add_instance("app1_view", item_cls)
        schema = mdw.facts.add_instance("app1_schema", item_cls)
        mdw.graph.add_all(
            [
                (snippet.customer_id, TERMS.belongs_to, view),
                (view, TERMS.belongs_to, schema),
            ]
        )
        chain = mdw.lineage.container_chain(snippet.customer_id)
        assert chain == [snippet.customer_id, view, schema]
        assert mdw.lineage.at_granularity(snippet.customer_id, 1) == view
        assert mdw.lineage.at_granularity(snippet.customer_id, 99) == schema

    def test_flows_attribute_level(self, fig2):
        flows = fig2.warehouse.lineage.flows()
        pairs = {(s, t) for s, t, _ in flows}
        assert (fig2.staging_customer_id, fig2.integration_partner_id) in pairs
        assert (fig2.integration_partner_id, fig2.mart_client_id) in pairs

    def test_flows_aggregate_at_granularity(self):
        from repro.synth import LandscapeConfig, generate_landscape

        landscape = generate_landscape(LandscapeConfig.tiny(seed=5))
        lineage = landscape.warehouse.lineage
        attribute_level = lineage.flows()
        aggregated = lineage.flows(source_granularity=2, target_granularity=2)
        assert len(aggregated) <= len(attribute_level)
        assert sum(n for _, _, n in aggregated) == sum(n for _, _, n in attribute_level)

    def test_flows_scope(self, fig2):
        flows = fig2.warehouse.lineage.flows(source_scope=fig2.staging_customer_id)
        assert len(flows) == 1
        assert flows[0][0] == fig2.staging_customer_id


class TestImpact:
    def test_impact_of_item(self, snippet):
        impact = ImpactAnalysis(snippet.warehouse).of_item(snippet.client_information_id)
        assert impact.blast_radius == 2
        assert impact.max_depth == 2
        assert "affects 2" in impact.summary()

    def test_impact_areas(self, snippet):
        impact = ImpactAnalysis(snippet.warehouse).of_item(snippet.client_information_id)
        assert impact.by_area.get(TERMS.area_integration) == 1
        assert impact.by_area.get(TERMS.area_mart) == 1

    def test_impact_of_application(self):
        from repro.synth import LandscapeConfig, generate_landscape

        landscape = generate_landscape(LandscapeConfig.tiny(seed=5))
        application = landscape.source_applications[0]
        impact = ImpactAnalysis(landscape.warehouse).of_application(application)
        assert impact.blast_radius > 0
        assert application not in impact.affected_applications
