"""Unit tests for freshness/quality meta-data, homonym warnings, and
role privileges — the Section I/II guarantees made queryable."""

import pytest

from repro.core import FactError, MetadataWarehouse, TERMS
from repro.etl import SynonymThesaurus
from repro.services import GovernanceService, ReportingAssistant, SearchFilters
from repro.synth import LandscapeConfig, generate_landscape
from repro.ui import render_search_results


@pytest.fixture
def mdw():
    mdw = MetadataWarehouse()
    col = mdw.schema.declare_class("Column")
    fast = mdw.facts.add_instance("rt_customer_feed", col, display_name="customer_feed")
    mdw.facts.set_freshness(fast, "realtime")
    mdw.facts.set_quality(fast, 0.55)
    mdw.facts.set_area(fast, TERMS.area_inbound)
    slow = mdw.facts.add_instance("mart_customer_kpi", col, display_name="customer_kpi")
    mdw.facts.set_freshness(slow, "weekly")
    mdw.facts.set_quality(slow, 0.97)
    mdw.facts.set_area(slow, TERMS.area_mart)
    bare = mdw.facts.add_instance("customer_raw", col, display_name="customer_raw")
    return mdw


class TestFreshnessQualityFacts:
    def test_set_and_get(self, mdw):
        item = mdw.search.search("customer_feed").hits[0].instance
        assert mdw.facts.freshness_of(item) == "realtime"
        assert mdw.facts.quality_of(item) == 0.55

    def test_unset_is_none(self, mdw):
        item = mdw.search.search("customer_raw").hits[0].instance
        assert mdw.facts.freshness_of(item) is None
        assert mdw.facts.quality_of(item) is None

    def test_invalid_grade_rejected(self, mdw):
        item = mdw.search.search("customer_raw").hits[0].instance
        with pytest.raises(FactError, match="freshness"):
            mdw.facts.set_freshness(item, "yearly")

    def test_quality_range_enforced(self, mdw):
        item = mdw.search.search("customer_raw").hits[0].instance
        with pytest.raises(FactError, match="quality"):
            mdw.facts.set_quality(item, 1.5)

    def test_update_replaces(self, mdw):
        item = mdw.search.search("customer_feed").hits[0].instance
        mdw.facts.set_freshness(item, "daily")
        assert mdw.facts.freshness_of(item) == "daily"
        assert mdw.graph.count(item, TERMS.freshness, None) == 1

    def test_still_conformant(self, mdw):
        assert mdw.validate().conformant


class TestSearchFilters:
    def test_freshness_filter(self, mdw):
        results = mdw.search.search("customer", SearchFilters(freshness=["realtime"]))
        assert results.instance_names() == ["customer_feed"]

    def test_multiple_grades(self, mdw):
        results = mdw.search.search(
            "customer", SearchFilters(freshness=["realtime", "weekly"])
        )
        assert len(results) == 2

    def test_freshness_filter_drops_unannotated(self, mdw):
        results = mdw.search.search("customer", SearchFilters(freshness=["daily"]))
        assert len(results) == 0

    def test_min_quality_filter(self, mdw):
        results = mdw.search.search("customer", SearchFilters(min_quality=0.9))
        # high-quality item passes; unannotated item is kept (no failed
        # guarantee); the low-quality feed is dropped
        assert results.instance_names() == ["customer_kpi", "customer_raw"]

    def test_quality_and_area_combine(self, mdw):
        results = mdw.search.search(
            "customer", SearchFilters(min_quality=0.9, areas=[TERMS.area_mart])
        )
        assert results.instance_names() == ["customer_kpi"]


class TestLandscapeServiceLevels:
    @pytest.fixture(scope="class")
    def landscape(self):
        return generate_landscape(LandscapeConfig.tiny(seed=6))

    def test_pipeline_quality_increases(self, landscape):
        facts = landscape.warehouse.facts
        staging_quality = [facts.quality_of(c) for c in landscape.staging_columns]
        mart_quality = [facts.quality_of(a) for a in landscape.report_attributes]
        assert staging_quality and mart_quality
        assert max(staging_quality) < min(mart_quality)

    def test_staging_is_freshest(self, landscape):
        facts = landscape.warehouse.facts
        for column in landscape.staging_columns:
            assert facts.freshness_of(column) in ("realtime", "intraday")
        for attr in landscape.report_attributes:
            assert facts.freshness_of(attr) in ("daily", "weekly")

    def test_reporting_assistant_reports_quality(self, landscape):
        mdw = landscape.warehouse
        name = mdw.facts.name_of(landscape.report_attributes[0])
        plan = ReportingAssistant(mdw).plan_report([name], expand_synonyms=False)
        best = plan.best(name)
        assert best.quality is not None and best.quality >= 0.9
        assert best.freshness in ("daily", "weekly")


class TestHomonymWarnings:
    def test_warning_surfaces(self):
        mdw = MetadataWarehouse()
        col = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("bank_code", col, display_name="bank_code")
        thesaurus = SynonymThesaurus()
        thesaurus.add_homonym("bank", "river bank")
        thesaurus.materialize(mdw.graph)
        results = mdw.search.search("bank", expand_synonyms=True)
        assert results.homonym_warnings == ["river bank"]
        assert "homonyms exist" in render_search_results(results)

    def test_no_warning_without_expansion(self):
        mdw = MetadataWarehouse()
        col = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("bank_code", col, display_name="bank_code")
        results = mdw.search.search("bank")
        assert results.homonym_warnings == []


class TestPrivileges:
    @pytest.fixture
    def setup(self):
        mdw = MetadataWarehouse()
        app_cls = mdw.schema.declare_class("Application")
        role_cls = mdw.schema.declare_class("Role")
        user_cls = mdw.schema.declare_class("User")
        app = mdw.facts.add_instance("payments", app_cls)
        other_app = mdw.facts.add_instance("custody", app_cls)
        role = mdw.facts.add_instance("role_admin", role_cls, display_name="administrator")
        alice = mdw.facts.add_instance("alice", user_cls)
        from repro.rdf import Triple

        mdw.graph.add(Triple(role, TERMS.for_application, app))
        mdw.graph.add(Triple(alice, TERMS.plays_role, role))
        service = GovernanceService(mdw)
        service.grant(role, "read")
        service.grant(role, "admin")
        return mdw, service, app, other_app, role, alice

    def test_grant_and_lookup(self, setup):
        _, service, app, _, role, alice = setup
        assert service.privileges_of_role(role) == {"read", "admin"}
        assert service.privileges_of_user(alice) == {"read", "admin"}

    def test_authorize(self, setup):
        _, service, app, other_app, _, alice = setup
        assert service.authorize(alice, "admin", app)
        assert not service.authorize(alice, "approve", app)
        assert not service.authorize(alice, "admin", other_app)

    def test_revoke(self, setup):
        _, service, app, _, role, alice = setup
        assert service.revoke(role, "admin")
        assert not service.authorize(alice, "admin", app)
        assert not service.revoke(role, "admin")  # already gone

    def test_empty_privilege_rejected(self, setup):
        _, service, _, _, role, _ = setup
        with pytest.raises(ValueError):
            service.grant(role, "")

    def test_landscape_roles_carry_privileges(self):
        landscape = generate_landscape(LandscapeConfig.tiny(seed=6))
        service = GovernanceService(landscape.warehouse)
        app = landscape.source_applications[0]
        owner = service.owner_of(app)
        assert owner is not None
        assert "approve" in service.privileges_of_user(owner, app)

    def test_privilege_facts_conformant(self, setup):
        mdw = setup[0]
        assert mdw.validate().conformant
