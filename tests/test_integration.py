"""End-to-end integration: the full warehouse lifecycle in one scenario.

Generate a landscape → feed a new application through the Figure 4 ETL →
build entailment indexes → run both paper services and the verbatim
listings → historize a release → persist to disk → reopen → verify
everything survived, including an as-of comparison.
"""

import pytest

from repro.core import MetadataWarehouse, TERMS, validate_graph
from repro.etl import EtlOrchestrator, export_ontology
from repro.history import Historizer
from repro.synth import LandscapeConfig, generate_landscape

NEW_APP_FEED = """
<metadata source="onboarding-2026">
  <instance name="esg_scoring_hub" class="Application"/>
  <instance name="esg_scoring_hub_db" class="Database">
    <link property="belongsTo" target="esg_scoring_hub"/>
  </instance>
  <instance name="esg_feed" class="File" area="inbound">
    <link property="belongsTo" target="esg_scoring_hub_db"/>
  </instance>
  <instance name="esg_feed_customer_esg_score" class="Source Column" area="inbound" display-name="customer_esg_score">
    <link property="belongsTo" target="esg_feed"/>
    <mapping target="dwh_int_customer_score" rule="normalize(0..100)" condition="segment = 'private'"/>
  </instance>
  <instance name="dwh_int_customer_score" class="Column" area="integration" display-name="customer_esg_score"/>
</metadata>
"""


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """Run the whole lifecycle once; tests inspect its stages."""
    workdir = tmp_path_factory.mktemp("lifecycle")
    landscape = generate_landscape(LandscapeConfig.tiny(seed=42))
    mdw = landscape.warehouse
    historizer = Historizer(mdw.store)
    historizer.snapshot("2026.R1")

    mdw.build_entailment_index()
    load = EtlOrchestrator(mdw).run([NEW_APP_FEED])

    historizer.snapshot("2026.R2")
    store_dir = workdir / "wh"
    mdw.save(store_dir)
    reopened = MetadataWarehouse.load(store_dir)
    return dict(
        landscape=landscape,
        mdw=mdw,
        load=load,
        historizer=historizer,
        store_dir=store_dir,
        reopened=reopened,
    )


class TestLifecycle:
    def test_etl_load_ok(self, lifecycle):
        load = lifecycle["load"]
        assert load.ok, load.summary()
        assert load.bulk_report.inserted > 0
        assert "OWLPRIME" in load.refreshed_rulebases

    def test_graph_conformant_after_everything(self, lifecycle):
        report = validate_graph(lifecycle["mdw"].graph, max_issues=5)
        assert report.conformant, [i.describe() for i in report.issues]

    def test_new_items_searchable(self, lifecycle):
        results = lifecycle["mdw"].search.search("esg")
        assert "customer_esg_score" in results.instance_names()

    def test_new_lineage_traced_with_condition(self, lifecycle):
        mdw = lifecycle["mdw"]
        from repro.rdf import Literal

        # two items share the display name; the staging-area one is the
        # mapping source
        source = next(
            item
            for item in mdw.graph.subjects(TERMS.has_name, Literal("customer_esg_score"))
            if mdw.graph.value(item, TERMS.in_area, None) == TERMS.area_inbound
        )
        trace = mdw.lineage.downstream(source)
        assert len(trace) == 1
        assert trace.edges[0].rule == "normalize(0..100)"
        assert trace.edges[0].condition == "segment = 'private'"

    def test_entailment_covers_loaded_feed(self, lifecycle):
        mdw = lifecycle["mdw"]
        rows = mdw.query(
            'SELECT ?x WHERE { ?x rdf:type dm:Attribute . ?x dm:hasName "customer_esg_score" }',
            rulebases=["OWLPRIME"],
        )
        assert len(rows) == 2  # the staging column and the integration column

    def test_listing1_verbatim_over_lifecycle_store(self, lifecycle):
        rows = lifecycle["mdw"].sem_sql("""
            SELECT object FROM TABLE(SEM_MATCH(
                {?object dm:hasName ?term},
                SEM_MODELS('DWH_CURR'),
                SEM_RULEBASES('OWLPRIME'),
                SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
                null))
            WHERE regexp_like(term, 'esg', 'i')
            GROUP BY object
        """)
        assert len(rows) >= 2

    def test_release_delta_contains_the_feed(self, lifecycle):
        historizer = lifecycle["historizer"]
        diff = historizer.diff("2026.R1", "2026.R2")
        assert len(diff.added) >= 10
        assert len(diff.removed) == 0
        assert diff.apply(historizer.get("2026.R1").graph) == historizer.get("2026.R2").graph

    def test_persisted_store_complete(self, lifecycle):
        reopened = lifecycle["reopened"]
        original = lifecycle["mdw"]
        assert reopened.graph == original.graph
        assert set(reopened.store.model_names()) == set(original.store.model_names())
        assert reopened.store.index("DWH_CURR", "OWLPRIME") is not None

    def test_reopened_services_work(self, lifecycle):
        reopened = lifecycle["reopened"]
        assert "customer_esg_score" in reopened.search.search("esg").instance_names()
        rows = reopened.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Attribute }", rulebases=["OWLPRIME"]
        )
        assert len(rows) > 0

    def test_as_of_comparison_after_reload(self, lifecycle):
        reopened = lifecycle["reopened"]
        before = reopened.as_of("2026.R1")
        after = reopened.as_of("2026.R2")
        assert len(before.search.search("esg")) == 0
        assert len(after.search.search("esg")) > 0

    def test_historizer_rehydrates_from_reopened_store(self, lifecycle):
        rehydrated = Historizer(lifecycle["reopened"].store)
        assert rehydrated.version_names() == ["2026.R1", "2026.R2"]
        assert not rehydrated.diff("2026.R1", "2026.R2").is_empty

    def test_ontology_roundtrip_of_final_schema(self, lifecycle):
        from repro.etl import import_ontology

        text = export_ontology(lifecycle["mdw"].graph)
        reimported = import_ontology(text)
        assert export_ontology(reimported) == text
