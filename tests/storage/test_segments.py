"""Delta segments: O(delta) size, chain verification, bit-identity."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.store import TripleStore
from repro.storage import (
    MappedSnapshot,
    SnapshotFormatError,
    apply_segments,
    diff_stores,
    read_segment,
    save_snapshot_store,
    write_segment,
)
from repro.storage.segments import publish_segment

NS = "http://example.org/"


def _base_store(triples=400) -> TripleStore:
    store = TripleStore()
    graph = store.get_or_create_model("DWH_CURR")
    for i in range(triples):
        s = IRI(f"{NS}item_{i}")
        graph.add(Triple(s, RDF.type, IRI(f"{NS}Class_{i % 7}")))
        graph.add(Triple(s, IRI(f"{NS}hasName"), Literal(f"name_{i}")))
    derived = Graph(dictionary=graph.dictionary)
    for i in range(0, triples, 4):
        derived.add(Triple(IRI(f"{NS}item_{i}"), RDF.type, IRI(f"{NS}Super")))
    store.attach_index("DWH_CURR", "OWLPRIME", derived)
    return store


def _evolve(store: TripleStore, round_no: int) -> None:
    """A small in-place release: a few removes, a few adds."""
    graph = store.model("DWH_CURR")
    for i in range(3):
        item = IRI(f"{NS}item_{i}")
        graph.discard(Triple(item, IRI(f"{NS}hasName"), Literal(f"name_{i}")))
        graph.add(
            Triple(item, IRI(f"{NS}hasName"), Literal(f"name_{i}_r{round_no}"))
        )
    for i in range(4):
        item = IRI(f"{NS}new_{round_no}_{i}")
        graph.add(Triple(item, RDF.type, IRI(f"{NS}Class_0")))
    derived = store.index("DWH_CURR", "OWLPRIME")
    derived.add(Triple(IRI(f"{NS}new_{round_no}_0"), RDF.type, IRI(f"{NS}Super")))
    store.attach_index("DWH_CURR", "OWLPRIME", derived)


def _snapshot_of(store, path, generation):
    return save_snapshot_store(store, path, generation=generation)


def test_segment_roundtrip(tmp_path):
    old = _base_store()
    new = _base_store()
    _evolve(new, 1)
    entries = diff_stores(old, new)
    assert entries, "evolution produced no delta"
    path = write_segment(tmp_path / "d.seg", entries, 1, 2)
    seg = read_segment(path)
    assert seg.base_generation == 1 and seg.generation == 2
    assert seg.churn == sum(e.churn for e in entries)


def test_segment_is_o_delta_sized(tmp_path):
    store = _base_store()
    full_path = _snapshot_of(store, tmp_path / "full.mdws", 1)
    old = MappedSnapshot.open(full_path).store(mutable_models=())
    _evolve(store, 1)
    seg_path = publish_segment(old, store, tmp_path / "d.seg", 1, 2)
    full_size = full_path.stat().st_size
    seg_size = seg_path.stat().st_size
    # the delta touches ~15 of ~900 triples; the segment must cost a
    # small fraction of a full snapshot, not scale with the model
    assert seg_size < full_size / 10, (seg_size, full_size)


def test_replay_is_bit_identical_to_full_save(tmp_path):
    live = _base_store()
    base_path = _snapshot_of(live, tmp_path / "base.mdws", 10)

    # chain three releases, each diffed against the previous live state
    segments = []
    prev = MappedSnapshot.open(base_path).store(mutable_models=())
    generation = 10
    for round_no in (1, 2, 3):
        _evolve(live, round_no)
        seg = tmp_path / f"delta-{round_no}.seg"
        publish_segment(prev, live, seg, generation, generation + 1)
        segments.append(seg)
        generation += 1
        prev_path = _snapshot_of(live, tmp_path / f"state-{round_no}.mdws", generation)
        prev = MappedSnapshot.open(prev_path).store(mutable_models=())

    attached = MappedSnapshot.open(base_path).store(mutable_models=())
    final_gen = apply_segments(attached, segments, base_generation=10)
    assert final_gen == 13
    replayed_path = _snapshot_of(attached, tmp_path / "replayed.mdws", final_gen)
    full_path = _snapshot_of(live, tmp_path / "final.mdws", final_gen)
    assert replayed_path.read_bytes() == full_path.read_bytes()


def test_broken_chain_is_rejected(tmp_path):
    old = _base_store()
    new = _base_store()
    _evolve(new, 1)
    seg = publish_segment(old, new, tmp_path / "d.seg", 5, 6)
    store = _base_store()
    with pytest.raises(SnapshotFormatError, match="chain"):
        apply_segments(store, [seg], base_generation=4)


def test_truncated_segment_is_rejected(tmp_path):
    old = _base_store()
    new = _base_store()
    _evolve(new, 1)
    path = publish_segment(old, new, tmp_path / "d.seg", 1, 2)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 10])
    with pytest.raises(SnapshotFormatError, match="truncated|checksum"):
        read_segment(path)


def test_corrupted_segment_body_is_rejected(tmp_path):
    old = _base_store()
    new = _base_store()
    _evolve(new, 1)
    path = publish_segment(old, new, tmp_path / "d.seg", 1, 2)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        read_segment(path)


def test_segment_creating_new_model_shares_dictionary(tmp_path):
    old = _base_store()
    new = _base_store()
    hist = Graph()
    hist.add(Triple(IRI(f"{NS}a"), RDF.type, IRI(f"{NS}B")))
    new.adopt_model("HIST_2026.R1", hist)
    seg = publish_segment(old, new, tmp_path / "d.seg", 1, 2)

    base_path = save_snapshot_store(old, tmp_path / "base.mdws", generation=1)
    attached = MappedSnapshot.open(base_path).store(mutable_models=())
    apply_segments(attached, [seg], base_generation=1)
    assert attached.has_model("HIST_2026.R1")
    assert (
        attached.model("HIST_2026.R1").dictionary
        is attached.model("DWH_CURR").dictionary
    )
