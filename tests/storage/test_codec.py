"""Varint and sorted-run codec: boundaries, paging, prefix counts."""

import pytest

from repro.storage.codec import (
    PAGE_TRIPLES,
    RunReader,
    SnapshotFormatError,
    decode_varint,
    encode_run,
    encode_varint,
)


def _roundtrip(value: int) -> int:
    out = bytearray()
    encode_varint(value, out)
    decoded, pos = decode_varint(bytes(out), 0)
    assert pos == len(out)
    return decoded


@pytest.mark.parametrize(
    "value",
    [0, 1, 127, 128, 129, 16383, 16384, 2**32, 2**56, 2**63 - 1],
)
def test_varint_roundtrip(value):
    assert _roundtrip(value) == value


def test_varint_truncated_raises():
    out = bytearray()
    encode_varint(2**32, out)
    with pytest.raises(SnapshotFormatError):
        decode_varint(bytes(out[:-1]), 0)


def _reader(rows):
    rows = sorted(rows)
    buf = encode_run(rows)
    return rows, RunReader(memoryview(buf), 0, len(buf), len(rows))


def test_run_roundtrip_small():
    rows, reader = _reader([(3, 1, 2), (3, 1, 9), (3, 2, 1), (7, 0, 0)])
    assert list(reader.scan(())) == rows
    assert reader.has((3, 2, 1))
    assert not reader.has((3, 2, 2))


def test_run_crosses_page_boundaries():
    # enough rows for several pages, with runs straddling page edges
    rows = [(s, p, o) for s in range(40) for p in range(9) for o in range(9)]
    assert len(rows) > 2 * PAGE_TRIPLES
    rows, reader = _reader(rows)
    assert list(reader.scan(())) == rows
    # per-prefix scans agree with a brute-force filter
    for s in (0, 13, 39):
        assert list(reader.scan((s,))) == [r for r in rows if r[0] == s]
        assert reader.count((s,)) == 81
        for p in (0, 8):
            assert list(reader.scan((s, p))) == [
                r for r in rows if r[:2] == (s, p)
            ]
            assert reader.count((s, p)) == 9
    assert reader.count(()) == len(rows)
    assert reader.count((40,)) == 0
    assert list(reader.scan((40,))) == []


def test_run_distinct_first_skips_interior_pages():
    # one giant group spanning pages plus singleton groups around it
    rows = [(1, 0, o) for o in range(3 * PAGE_TRIPLES)]
    rows += [(0, 0, 0), (2, 0, 0), (3, 5, 5)]
    rows, reader = _reader(rows)
    assert reader.distinct_first() == 4


def test_run_point_counts():
    rows, reader = _reader([(1, 2, 3), (1, 2, 4)])
    assert reader.count((1, 2, 3)) == 1
    assert reader.count((1, 2, 5)) == 0


def test_empty_run():
    rows, reader = _reader([])
    assert list(reader.scan(())) == []
    assert reader.count(()) == 0
    assert reader.distinct_first() == 0
    assert not reader.has((0, 0, 0))


def test_run_rejects_corrupt_directory():
    rows = sorted((i, i, i) for i in range(10))
    buf = bytearray(encode_run(rows))
    buf[0] = 0xFF  # wreck the page count
    reader = RunReader(memoryview(bytes(buf)), 0, len(buf), len(rows))
    with pytest.raises(SnapshotFormatError):
        list(reader.scan(()))
