"""attach-then-replay-tail: the snapshot-backed journal recovery path."""

from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.store import TripleStore
from repro.resilience import attach_and_recover
from repro.resilience.journal import LoadJournal
from repro.storage import save_snapshot_store

NS = "http://example.org/"
NAME = f"{NS}hasName"


def _snapshot(tmp_path, triples=30):
    store = TripleStore()
    graph = store.get_or_create_model("DWH_CURR")
    for i in range(triples):
        s = IRI(f"{NS}item_{i}")
        graph.add(Triple(s, RDF.type, IRI(f"{NS}Class")))
        graph.add(Triple(s, IRI(NAME), Literal(f"name_{i}")))
    path = tmp_path / "base.mdws"
    save_snapshot_store(store, path, generation=graph.generation)
    return path, len(graph)


def _rows(n, start=0):
    return [
        [f"<{NS}tail_{start + i}>", f"<{NAME}>", f'"tail_{start + i}"', "feed"]
        for i in range(n)
    ]


def test_clean_journal_keeps_store_mapped(tmp_path):
    snap_path, size = _snapshot(tmp_path)
    mdw, report = attach_and_recover(snap_path, tmp_path / "missing.journal")
    assert report.action == "none"
    assert len(mdw.graph) == size
    # nothing to replay: the model stays lazily mapped (no materialize)
    assert type(mdw.graph).__name__ == "MappedGraph"


def test_complete_writeahead_replays_tail(tmp_path):
    snap_path, size = _snapshot(tmp_path)
    journal_path = tmp_path / "crash.journal"
    journal = LoadJournal(journal_path, durable=False)
    rows = _rows(8)
    journal.begin("load-1", "DWH_CURR", 0, [rows[:4], rows[4:]])
    journal.checkpoint(0, 4, 0)  # crashed mid-batch 1, before commit
    journal.close()

    mdw, report = attach_and_recover(snap_path, journal_path)
    assert report.action == "replayed"
    assert report.inserted == 8 and report.duplicates == 0
    assert len(mdw.graph) == size + 8
    # replay materialized exactly the affected model; it stays writable
    mdw.graph.add(Triple(IRI(f"{NS}post"), RDF.type, IRI(f"{NS}Class")))
    # a second recovery over the sealed journal is a no-op
    mdw2, report2 = attach_and_recover(snap_path, journal_path)
    assert report2.action == "none"
    assert len(mdw2.graph) == size


def test_incomplete_writeahead_voids_without_materializing(tmp_path):
    snap_path, size = _snapshot(tmp_path)
    journal_path = tmp_path / "torn.journal"
    journal = LoadJournal(journal_path, durable=False)
    # begin claims 3 batches but only 2 land: write-ahead incomplete
    journal._log.append(
        {
            "type": "begin",
            "load_id": "load-torn",
            "model": "DWH_CURR",
            "generation": 0,
            "batches": 3,
            "rows": 4,
        }
    )
    for i, batch in enumerate([_rows(2), _rows(2, start=2)]):
        journal._log.append({"type": "rows", "batch": i, "rows": batch})
    journal._log.checkpoint()
    journal.close()

    mdw, report = attach_and_recover(snap_path, journal_path)
    assert report.action == "void"
    assert len(mdw.graph) == size
    assert type(mdw.graph).__name__ == "MappedGraph"


def test_replay_is_idempotent_against_partial_state(tmp_path):
    # rows already present in the snapshot replay as duplicates
    store = TripleStore()
    graph = store.get_or_create_model("DWH_CURR")
    graph.add(Triple(IRI(f"{NS}tail_0"), IRI(NAME), Literal("tail_0")))
    snap_path = tmp_path / "partial.mdws"
    save_snapshot_store(store, snap_path)

    journal_path = tmp_path / "replay.journal"
    journal = LoadJournal(journal_path, durable=False)
    journal.begin("load-2", "DWH_CURR", 0, [_rows(3)])
    journal.close()

    mdw, report = attach_and_recover(snap_path, journal_path)
    assert report.action == "replayed"
    assert report.inserted == 2 and report.duplicates == 1
    assert len(mdw.graph) == 3
