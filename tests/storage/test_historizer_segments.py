"""Historizer segment mode: O(delta) version persistence and chain replay.

``segment_dir`` switches a :class:`Historizer` from full-copy
historization tables to one delta-segment file per version. These
tests pin the contract: a reopened historizer replays the chain to
bit-identical version graphs, segment sizes scale with churn rather
than model size, and a broken chain is rejected loudly.
"""

import pytest

from repro.core import MetadataWarehouse
from repro.history import HistorizationError, Historizer
from repro.rdf.ntriples import serialize_ntriples
from repro.storage.segments import read_segment


def _release(mdw, tag, instances=3):
    """Grow the live model a little, like one release delta."""
    cls = mdw.schema.declare_class(f"Thing{tag}")
    for i in range(instances):
        mdw.facts.add_instance(f"item_{tag}_{i}", cls)


@pytest.fixture
def mdw():
    mdw = MetadataWarehouse()
    _release(mdw, "base", instances=5)
    return mdw


class TestSegmentPublication:
    def test_one_segment_per_version(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("2009.R1")
        _release(mdw, "r2")
        hist.snapshot("2009.R2")
        files = sorted(p.name for p in tmp_path.glob("*.mdwseg"))
        assert files == ["000001-2009.R1.mdwseg", "000002-2009.R2.mdwseg"]

    def test_chain_links_are_consecutive(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("a")
        _release(mdw, "b")
        hist.snapshot("b")
        first, second = sorted(tmp_path.glob("*.mdwseg"))
        seg1, seg2 = read_segment(first), read_segment(second)
        assert (seg1.base_generation, seg1.generation) == (0, 1)
        assert (seg2.base_generation, seg2.generation) == (1, 2)

    def test_segment_size_is_o_delta(self, mdw, tmp_path):
        """A one-instance release's segment is far smaller than the
        full-model first segment — the point of segment mode."""
        _release(mdw, "bulk", instances=40)
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("big")
        _release(mdw, "tiny", instances=1)
        hist.snapshot("small")
        first, second = sorted(tmp_path.glob("*.mdwseg"))
        assert second.stat().st_size < first.stat().st_size / 4

    def test_store_stays_lean(self, mdw, tmp_path):
        """Segment mode keeps HIST_* models out of the backing store."""
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("2009.R1")
        assert not mdw.store.has_model("HIST_2009.R1")
        # the version itself is still fully queryable in memory
        assert hist.get("2009.R1").graph == mdw.graph

    def test_versions_stay_isolated(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        version = hist.snapshot("r1")
        before = version.edge_count
        _release(mdw, "later")
        assert version.edge_count == before
        assert len(mdw.graph) > before

    def test_slash_in_name_rejected(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        with pytest.raises(HistorizationError):
            hist.snapshot("../escape")


class TestChainReplay:
    def test_replay_is_bit_identical(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        expected = {}
        for tag in ("r1", "r2", "r3"):
            _release(mdw, tag)
            version = hist.snapshot(tag)
            expected[tag] = serialize_ntriples(version.graph)

        reopened = Historizer(MetadataWarehouse().store, model="DWH_CURR",
                              segment_dir=tmp_path)
        assert reopened.version_names() == ["r1", "r2", "r3"]
        for tag, triples in expected.items():
            assert serialize_ntriples(reopened.get(tag).graph) == triples

    def test_replayed_versions_queryable(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        _release(mdw, "q")
        hist.snapshot("r1")
        reopened = Historizer(MetadataWarehouse().store, segment_dir=tmp_path)
        facade = reopened.as_warehouse("r1")
        rows = facade.query(
            "SELECT ?s ?n WHERE { ?s dm:hasName ?n }"
        )
        names = {str(row.asdict()["n"].lexical) for row in rows}
        assert "item_q_0" in names

    def test_replay_continues_the_chain(self, mdw, tmp_path):
        """New snapshots after a replay extend the same segment chain."""
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("r1")
        live = MetadataWarehouse()
        cont = Historizer(live.store, segment_dir=tmp_path)
        _release(live, "next")
        cont.snapshot("r2")
        files = sorted(p.name for p in tmp_path.glob("*.mdwseg"))
        assert files == ["000001-r1.mdwseg", "000002-r2.mdwseg"]
        replayed = Historizer(MetadataWarehouse().store, segment_dir=tmp_path)
        assert replayed.version_names() == ["r1", "r2"]

    def test_broken_chain_rejected(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("r1")
        _release(mdw, "r2")
        hist.snapshot("r2")
        _release(mdw, "r3")
        hist.snapshot("r3")
        (tmp_path / "000002-r2.mdwseg").unlink()
        with pytest.raises(HistorizationError, match="chain broken"):
            Historizer(MetadataWarehouse().store, segment_dir=tmp_path)

    def test_diffs_work_after_replay(self, mdw, tmp_path):
        hist = Historizer(mdw.store, segment_dir=tmp_path)
        hist.snapshot("r1")
        _release(mdw, "r2", instances=2)
        hist.snapshot("r2")
        reopened = Historizer(MetadataWarehouse().store, segment_dir=tmp_path)
        delta = reopened.diff("r1", "r2")
        assert len(list(delta.added)) > 0
        assert len(list(delta.removed)) == 0
