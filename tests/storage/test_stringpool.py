"""Term codec and the shared offset-indexed string pool."""

import pytest

from repro.rdf.terms import BNode, IRI, Literal
from repro.storage.codec import SnapshotFormatError
from repro.storage.stringpool import (
    MappedStringPool,
    build_pool,
    decode_term,
    encode_term,
)

TERMS = [
    IRI("http://www.credit-suisse.com/dwh/customer_id"),
    IRI("http://example.org/ünïcödé/žluťoučký"),
    BNode("b0"),
    Literal("plain"),
    Literal(""),
    Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")),
    Literal("naïve — déjà vu ✓ 中文", language="fr"),
    Literal("x" * 100_000),  # long literal: length survives varint framing
    Literal("tab\tnewline\nquote\"backslash\\"),
]


@pytest.mark.parametrize("term", TERMS, ids=lambda t: type(t).__name__ + str(TERMS.index(t) if t in TERMS else ""))
def test_term_codec_roundtrip(term):
    assert decode_term(encode_term(term)) == term


def test_typed_and_lang_literals_stay_distinct():
    plain = Literal("v")
    typed = Literal("v", datatype=IRI("http://example.org/dt"))
    lang = Literal("v", language="en")
    records = {encode_term(t) for t in (plain, typed, lang)}
    assert len(records) == 3
    for t in (plain, typed, lang):
        assert decode_term(encode_term(t)) == t


def _mapped(terms):
    pool, offsets, hashes = build_pool(terms)
    buf = memoryview(pool + offsets + hashes)
    return MappedStringPool(
        buf,
        0,
        len(pool),
        len(pool),
        len(offsets),
        len(pool) + len(offsets),
        len(hashes),
    )


def test_pool_lookup_both_directions():
    mapped = _mapped(TERMS)
    for tid, term in enumerate(TERMS):
        assert mapped.term(tid) == term
        assert mapped.find(term) == tid


def test_pool_find_missing_is_none():
    mapped = _mapped(TERMS)
    assert mapped.find(IRI("http://example.org/not-there")) is None
    assert mapped.find(Literal("plain", language="de")) is None


def test_pool_rejects_misaligned_sections():
    pool, offsets, hashes = build_pool(TERMS)
    buf = memoryview(pool + offsets + hashes)
    with pytest.raises(SnapshotFormatError):
        MappedStringPool(
            buf, 0, len(pool), len(pool), len(offsets) - 1, 0, len(hashes)
        )


def test_empty_pool():
    mapped = _mapped([])
    assert mapped.find(IRI("http://example.org/a")) is None
