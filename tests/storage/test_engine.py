"""The StorageEngine interface: conformance of both implementations."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.ntriples import serialize_ntriples
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.store import TripleStore
from repro.storage import StorageError, detect_engine, get_engine

NS = "http://example.org/"

ENGINES = ["memory", "mmap"]


def _store() -> TripleStore:
    store = TripleStore()
    graph = store.get_or_create_model("DWH_CURR")
    for i in range(50):
        s = IRI(f"{NS}item_{i}")
        graph.add(Triple(s, RDF.type, IRI(f"{NS}Class_{i % 3}")))
        graph.add(Triple(s, IRI(f"{NS}hasName"), Literal(f"nämé_{i}")))
    hist = Graph(dictionary=graph.dictionary)
    hist.add_all(graph)
    hist.freeze()
    store.adopt_model("HIST_2026.R1", hist)
    derived = Graph(dictionary=graph.dictionary)
    derived.add(Triple(IRI(f"{NS}item_0"), RDF.type, IRI(f"{NS}Super")))
    store.attach_index("DWH_CURR", "OWLPRIME", derived)
    return store


def _target(tmp_path, engine_name):
    return tmp_path / ("store" if engine_name == "memory" else "store.mdws")


@pytest.mark.parametrize("engine_name", ENGINES)
def test_save_load_roundtrip(tmp_path, engine_name):
    engine = get_engine(engine_name)
    store = _store()
    path = engine.save(store, _target(tmp_path, engine_name), generation=3)
    if engine_name == "memory":
        with pytest.warns(DeprecationWarning, match="migrate"):
            loaded = engine.load(path)
    else:
        loaded = engine.load(path)
    assert loaded.model_names() == store.model_names()
    assert loaded.index_names() == store.index_names()
    for name in store.model_names():
        assert serialize_ntriples(loaded.model(name)) == serialize_ntriples(
            store.model(name)
        )
        assert loaded.model(name).frozen == store.model(name).frozen
    for key in store.index_names():
        assert serialize_ntriples(loaded.index(*key)) == serialize_ntriples(
            store.index(*key)
        )


@pytest.mark.parametrize("engine_name", ENGINES)
def test_detect_engine_recognizes_output(tmp_path, engine_name):
    engine = get_engine(engine_name)
    path = engine.save(_store(), _target(tmp_path, engine_name))
    assert detect_engine(path).name == engine_name


@pytest.mark.parametrize("engine_name", ENGINES)
def test_info_reports_without_full_load(tmp_path, engine_name):
    engine = get_engine(engine_name)
    path = engine.save(_store(), _target(tmp_path, engine_name))
    info = engine.info(path)
    assert info["engine"] == engine_name if "engine" in info else True
    assert info  # non-empty inspection document


@pytest.mark.parametrize("engine_name", ENGINES)
def test_queries_agree_across_engines(tmp_path, engine_name):
    from repro.core.warehouse import MetadataWarehouse

    store = _store()
    engine = get_engine(engine_name)
    path = engine.save(store, _target(tmp_path, engine_name))
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        mdw = MetadataWarehouse.load(path)
    rows = mdw.query(
        "SELECT ?s ?n WHERE { ?s <http://example.org/hasName> ?n }"
    )
    assert len(rows) == 50


def test_unknown_engine_rejected():
    with pytest.raises(StorageError, match="available"):
        get_engine("oracle")


def test_detect_rejects_junk(tmp_path):
    junk = tmp_path / "junk.bin"
    junk.write_bytes(b"not a snapshot")
    with pytest.raises(StorageError, match="magic"):
        detect_engine(junk)
    with pytest.raises(StorageError):
        detect_engine(tmp_path / "missing")
    empty_dir = tmp_path / "dir"
    empty_dir.mkdir()
    with pytest.raises(StorageError, match="manifest"):
        detect_engine(empty_dir)


def test_memory_load_warns_deprecation(tmp_path):
    engine = get_engine("memory")
    path = engine.save(_store(), tmp_path / "legacy")
    with pytest.warns(DeprecationWarning, match="snapshot migrate"):
        engine.load(path)
