"""Partitioner invariants the sharded gateway relies on.

Ontology and thesaurus replicate to every shard; instance facts land on
exactly one shard; reified mapping nodes co-locate with their source;
the whole split is a deterministic pure function of the store content.
"""

import pytest

from repro.core import MetadataWarehouse, TERMS
from repro.etl import SynonymThesaurus
from repro.rdf.namespace import RDF
from repro.storage import (
    changed_shards,
    partition_store,
    shard_filename,
    shard_of,
    write_shard_snapshots,
)

N = 3


def build_warehouse(extra_instances=()):
    """A small landscape: a mapping chain, a thesaurus, one class."""
    mdw = MetadataWarehouse()
    node = mdw.schema.declare_class("Node")
    items = [mdw.facts.add_instance(f"item{k}", node) for k in range(12)]
    for i, (a, b) in enumerate(zip(items, items[1:])):
        mdw.facts.add_mapping(a, b, rule=f"rule-{i}", condition="country = 'CH'")
    thesaurus = SynonymThesaurus()
    thesaurus.add_synonym("item", "element")
    thesaurus.materialize(mdw.graph)
    for name in extra_instances:
        mdw.facts.add_instance(name, node)
    return mdw, items, node


@pytest.fixture
def warehouse():
    return build_warehouse()


class TestShardOf:
    def test_deterministic_and_in_range(self, warehouse):
        mdw, items, _ = warehouse
        for term in items:
            assert 0 <= shard_of(term, N) < N
            assert shard_of(term, N) == shard_of(term, N)

    def test_spreads_across_shards(self, warehouse):
        """CRC placement of a dozen items is not degenerate."""
        _, items, _ = warehouse
        assert len({shard_of(t, N) for t in items}) > 1

    def test_rejects_non_positive(self, warehouse):
        _, items, _ = warehouse
        with pytest.raises(ValueError):
            shard_of(items[0], 0)

    def test_filename(self):
        assert shard_filename(1, 4) == "shard-1-of-4.mdws"


class TestPartitioning:
    def test_counts_cover_the_source(self, warehouse):
        mdw, _, _ = warehouse
        plan = partition_store(mdw.store, N, mdw.model_name)
        total = len(list(mdw.graph.triples()))
        assert plan.replicated_triples + plan.routed_triples == total
        assert plan.routed_triples > 0 and plan.replicated_triples > 0

    def test_union_equals_source(self, warehouse):
        mdw, _, _ = warehouse
        plan = partition_store(mdw.store, N, mdw.model_name)
        union = set()
        for store in plan.stores:
            union.update(store.model(mdw.model_name).triples())
        assert union == set(mdw.graph.triples())

    def test_ontology_and_thesaurus_replicated(self, warehouse):
        mdw, _, node = warehouse
        plan = partition_store(mdw.store, N, mdw.model_name)
        declaration = list(mdw.graph.triples(node, RDF.term("type"), None))
        synonyms = [
            t for t in mdw.graph.triples(None, TERMS.synonym_of, None)
        ]
        assert declaration and synonyms
        for store in plan.stores:
            graph = store.model(mdw.model_name)
            for triple in declaration + synonyms:
                assert triple in set(graph.triples())

    def test_instance_triples_on_exactly_one_shard(self, warehouse):
        mdw, items, _ = warehouse
        plan = partition_store(mdw.store, N, mdw.model_name)
        for item in items:
            owner = shard_of(item, N)
            for index, store in enumerate(plan.stores):
                graph = store.model(mdw.model_name)
                count = len(list(graph.triples(item, TERMS.has_name, None)))
                assert count == (1 if index == owner else 0)

    def test_mapping_nodes_colocated_with_source(self, warehouse):
        """Reified mapping meta-data follows the *source* instance, so
        downstream expansion (and ``LineageService.edge``) stays on one
        shard."""
        mdw, _, _ = warehouse
        plan = partition_store(mdw.store, N, mdw.model_name)
        edges = list(mdw.graph.triples(None, TERMS.is_mapped_to, None))
        assert edges
        for edge in edges:
            owner = shard_of(edge.subject, N)
            graph = plan.stores[owner].model(mdw.model_name)
            assert edge in set(graph.triples())
            for mapping in mdw.graph.objects(edge.subject, TERMS.has_mapping):
                mapping_triples = list(mdw.graph.triples(mapping, None, None))
                assert mapping_triples
                shard_triples = set(graph.triples(mapping, None, None))
                assert shard_triples == set(mapping_triples)

    def test_entailment_index_partitioned_and_attached(self, warehouse):
        mdw, _, _ = warehouse
        mdw.build_entailment_index("OWLPRIME")
        derived = mdw.store.index(mdw.model_name, "OWLPRIME")
        plan = partition_store(mdw.store, N, mdw.model_name)
        union = set()
        for store in plan.stores:
            part = store.index(mdw.model_name, "OWLPRIME")
            assert part is not None
            union.update(part.triples())
        assert union == set(derived.triples())


class TestDeterminism:
    def test_snapshots_byte_identical_across_runs(self, warehouse, tmp_path):
        mdw, _, _ = warehouse
        dirs = (tmp_path / "a", tmp_path / "b")
        for directory in dirs:
            plan = partition_store(mdw.store, N, mdw.model_name)
            write_shard_snapshots(plan, directory)
        for index in range(N):
            name = shard_filename(index, N)
            assert (dirs[0] / name).read_bytes() == (dirs[1] / name).read_bytes()

    def test_identical_content_changes_nothing(self, warehouse):
        mdw, _, _ = warehouse
        old = partition_store(mdw.store, N, mdw.model_name)
        new = partition_store(mdw.store, N, mdw.model_name)
        assert changed_shards(old, new) == []

    def test_delta_touches_only_owner_shard(self):
        mdw_old, _, _ = build_warehouse()
        mdw_new, _, _ = build_warehouse(extra_instances=("fresh_column",))
        old = partition_store(mdw_old.store, N, mdw_old.model_name)
        new = partition_store(mdw_new.store, N, mdw_new.model_name)
        fresh = mdw_new.facts.namespace.term("fresh_column")
        assert changed_shards(old, new) == [shard_of(fresh, N)]

    def test_shard_count_change_replaces_everything(self, warehouse):
        mdw, _, _ = warehouse
        old = partition_store(mdw.store, N, mdw.model_name)
        new = partition_store(mdw.store, N + 1, mdw.model_name)
        assert changed_shards(old, new) == list(range(N + 1))
