"""Eviction pressure: a mapped snapshot serves queries the heap cannot.

The paper's warehouse outgrew casual caching years in; the storage
tier's answer here is the mmap snapshot — attach keeps the string pool
and triple runs on disk and lets the OS page them, so a process whose
address space cannot hold the materialized store still answers point
lookups and the Listing 1/2 use-case queries.

The test calibrates in subprocesses: one run measures the address-space
peak (``VmPeak``) of the mapped path, another of full materialization,
and a third then replays the mapped path under an ``RLIMIT_AS`` cap set
between the two — mapped queries must succeed where materializing the
same store dies of :class:`MemoryError`.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="needs RLIMIT_AS and /proc/self/status",
)

#: Instances in the string-heavy dataset (long dm:hasName literals make
#: the pool big enough that mapped-vs-materialized is a wide gap).
N_INSTANCES = 15_000
_PAD = "x" * 120

#: The child exits 42 on MemoryError so the parent can tell "died of the
#: cap" from "died of a bug".
_MEMORY_ERROR_EXIT = 42

_CHILD = r"""
import resource
import sys

mode, path, cap = sys.argv[1], sys.argv[2], int(sys.argv[3])
if cap:
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
try:
    from repro.core import MetadataWarehouse
    from repro.core.vocabulary import TERMS
    from repro.rdf.terms import Literal

    wh = MetadataWarehouse.attach_snapshot(path)
    if mode == "materialize":
        for name in wh.store.model_names():
            graph = wh.store.model(name)
            if hasattr(graph, "materialize"):
                graph.materialize()
    else:
        # point lookups straight off the mapping
        name = Literal("column_5_" + "x" * 120)
        subjects = list(wh.graph.subjects(TERMS.has_name, name))
        assert len(subjects) == 1, subjects
        assert len(list(wh.graph.triples(subjects[0], None, None))) >= 2
        # Listing 1: SEM_MATCH name search through the SQL layer
        rows = wh.sem_sql('''
            SELECT object FROM TABLE(SEM_MATCH(
                {?object dm:hasName ?term},
                SEM_MODELS('DWH_CURR'),
                null,
                SEM_ALIASES(SEM_ALIAS('dm',
                    'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
                null))
            WHERE regexp_like(term, 'column_77_', 'i')
            GROUP BY object
        ''')
        assert len(list(rows)) >= 1
        # Listing 2: one mapping hop upstream of a named item
        rows = wh.query(
            'SELECT ?source WHERE { ?item dm:hasName "column_7_' + "x" * 120
            + '" . ?source dt:isMappedTo ?item . }'
        )
        assert len(list(rows)) == 1
except MemoryError:
    sys.exit(42)
peak = 0
with open("/proc/self/status") as status:
    for line in status:
        if line.startswith("VmPeak:"):
            peak = int(line.split()[1]) * 1024
print(peak)
"""


def _run_child(mode: str, path: Path, cap: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(path), str(cap)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    from repro.core import MetadataWarehouse

    mdw = MetadataWarehouse()
    cls = mdw.schema.declare_class("Column")
    previous = None
    for i in range(N_INSTANCES):
        instance = mdw.facts.add_instance(
            f"col_{i}", cls, display_name=f"column_{i}_{_PAD}"
        )
        if previous is not None and i % 7 == 0:
            mdw.facts.add_mapping(previous, instance, rule=f"rule-{i}")
        previous = instance
    path = tmp_path_factory.mktemp("eviction") / "big.mdws"
    mdw.save_snapshot(path)
    return path


class TestEvictionPressure:
    def test_mapped_queries_survive_an_address_space_cap(self, snapshot_path):
        mapped = _run_child("mapped", snapshot_path, cap=0)
        assert mapped.returncode == 0, mapped.stderr
        materialized = _run_child("materialize", snapshot_path, cap=0)
        assert materialized.returncode == 0, materialized.stderr
        mapped_peak = int(mapped.stdout.strip())
        materialized_peak = int(materialized.stdout.strip())

        # the whole point of the mapped store: materialization needs a
        # multiple of the address space the mapped path does
        assert materialized_peak > mapped_peak * 1.5, (
            f"materialize peak {materialized_peak} not clearly above "
            f"mapped peak {mapped_peak}; dataset too small to test eviction"
        )

        cap = mapped_peak + (materialized_peak - mapped_peak) // 3

        # mapped point lookups and the Listing 1/2 queries fit the cap
        capped = _run_child("mapped", snapshot_path, cap=cap)
        assert capped.returncode == 0, (
            f"mapped queries failed under RLIMIT_AS={cap}: {capped.stderr}"
        )

        # ... while materializing the same store cannot
        denied = _run_child("materialize", snapshot_path, cap=cap)
        assert denied.returncode == _MEMORY_ERROR_EXIT, (
            f"expected MemoryError under RLIMIT_AS={cap}, got "
            f"exit {denied.returncode}: {denied.stderr}"
        )
