"""Snapshot files: save/attach round trips, validation, rejection."""

import struct
import zlib

import pytest

from repro.rdf.graph import Graph, ReadOnlyGraphError
from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.store import TripleStore
from repro.storage import MappedSnapshot, SnapshotFormatError, save_snapshot_store
from repro.storage.snapshot import FORMAT_VERSION, HEADER_SIZE, MAGIC

NS = "http://example.org/"


def _store(triples=60, freeze=False) -> TripleStore:
    store = TripleStore()
    graph = store.get_or_create_model("DWH_CURR")
    for i in range(triples):
        s = IRI(f"{NS}item_{i}")
        graph.add(Triple(s, RDF.type, IRI(f"{NS}Class_{i % 5}")))
        graph.add(Triple(s, IRI(f"{NS}hasName"), Literal(f"name_{i}")))
    derived = Graph(dictionary=graph.dictionary)
    for i in range(0, triples, 3):
        derived.add(
            Triple(IRI(f"{NS}item_{i}"), RDF.type, IRI(f"{NS}Super"))
        )
    store.attach_index("DWH_CURR", "OWLPRIME", derived)
    if freeze:
        graph.freeze()
        derived.freeze()
    return store


def test_roundtrip_content_and_counts(tmp_path):
    store = _store()
    path = save_snapshot_store(store, tmp_path / "s.mdws", generation=7)
    snap = MappedSnapshot.open(path)
    assert snap.generation == 7
    attached = snap.store()
    original = store.model("DWH_CURR")
    mapped = attached.model("DWH_CURR")
    assert mapped == original and original == mapped
    assert len(mapped) == len(original)
    assert mapped.distinct_subject_count() == original.distinct_subject_count()
    assert mapped.distinct_predicate_count() == original.distinct_predicate_count()
    assert mapped.distinct_object_count() == original.distinct_object_count()
    assert attached.index("DWH_CURR", "OWLPRIME") == store.index(
        "DWH_CURR", "OWLPRIME"
    )
    # every pattern shape answers identically
    probe = Triple(IRI(f"{NS}item_3"), IRI(f"{NS}hasName"), Literal("name_3"))
    for pattern in [
        (None, None, None),
        (probe.subject, None, None),
        (None, probe.predicate, None),
        (None, None, probe.object),
        (probe.subject, probe.predicate, None),
        (probe.subject, None, probe.object),
        (None, probe.predicate, probe.object),
        (probe.subject, probe.predicate, probe.object),
    ]:
        key = lambda t: (t.subject.sort_key(), t.predicate.sort_key(), t.object.sort_key())
        assert sorted(mapped.triples(*pattern), key=key) == sorted(
            original.triples(*pattern), key=key
        )
        assert mapped.count(*pattern) == original.count(*pattern)


def test_save_is_deterministic(tmp_path):
    store = _store()
    a = save_snapshot_store(store, tmp_path / "a.mdws", generation=1)
    b = save_snapshot_store(store, tmp_path / "b.mdws", generation=1)
    assert a.read_bytes() == b.read_bytes()


def test_mapped_graphs_share_one_dictionary(tmp_path):
    path = save_snapshot_store(_store(), tmp_path / "s.mdws")
    attached = MappedSnapshot.open(path).store(mutable_models=())
    model = attached.model("DWH_CURR")
    index = attached.index("DWH_CURR", "OWLPRIME")
    assert model.dictionary is index.dictionary
    view = attached.view(["DWH_CURR"], rulebases=["OWLPRIME"])
    assert view.dictionary is model.dictionary


def test_mapped_graph_is_read_only(tmp_path):
    path = save_snapshot_store(_store(), tmp_path / "s.mdws")
    mapped = MappedSnapshot.open(path).store(mutable_models=()).model("DWH_CURR")
    t = Triple(IRI(f"{NS}x"), IRI(f"{NS}y"), IRI(f"{NS}z"))
    for call in [
        lambda: mapped.add(t),
        lambda: mapped.remove(t),
        lambda: mapped.discard(t),
        lambda: mapped.add_all([t]),
        lambda: mapped.clear(),
    ]:
        with pytest.raises(ReadOnlyGraphError):
            call()
    writable = mapped.materialize()
    writable.add(t)
    assert t in writable and t not in mapped


def test_empty_graph_snapshot(tmp_path):
    store = TripleStore()
    store.get_or_create_model("DWH_CURR")
    path = save_snapshot_store(store, tmp_path / "empty.mdws")
    attached = MappedSnapshot.open(path).store(mutable_models=())
    mapped = attached.model("DWH_CURR")
    assert len(mapped) == 0
    assert list(mapped) == []
    assert mapped.distinct_subject_count() == 0
    assert not mapped


def _valid_bytes(tmp_path):
    path = save_snapshot_store(_store(triples=20), tmp_path / "v.mdws")
    return path, bytearray(path.read_bytes())


def test_rejects_bad_magic(tmp_path):
    path, raw = _valid_bytes(tmp_path)
    raw[0] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotFormatError, match="magic"):
        MappedSnapshot.open(path)


def test_rejects_header_corruption(tmp_path):
    path, raw = _valid_bytes(tmp_path)
    raw[16] ^= 0x01  # inside the generation field, behind the header CRC
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        MappedSnapshot.open(path)


def test_rejects_future_format_version(tmp_path):
    path, raw = _valid_bytes(tmp_path)
    header = struct.Struct("<8sIIQQQII")
    fields = list(header.unpack_from(bytes(raw), 0))
    assert fields[0] == MAGIC and fields[1] == FORMAT_VERSION
    fields[1] = FORMAT_VERSION + 1
    packed = header.pack(*fields)
    packed = packed[:-4] + struct.pack("<I", zlib.crc32(packed[:-4]))
    raw[:HEADER_SIZE] = packed
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotFormatError, match="format 2 unsupported"):
        MappedSnapshot.open(path)


def test_rejects_truncated_file(tmp_path):
    path, raw = _valid_bytes(tmp_path)
    for cut in (10, HEADER_SIZE, len(raw) // 2, len(raw) - 5):
        path.write_bytes(bytes(raw[:cut]))
        with pytest.raises(SnapshotFormatError):
            MappedSnapshot.open(path)


def test_rejects_section_corruption(tmp_path):
    path, raw = _valid_bytes(tmp_path)
    raw[HEADER_SIZE + 3] ^= 0xFF  # inside the first section's payload
    path.write_bytes(bytes(raw))
    snap = MappedSnapshot.open(path)  # TOC still valid: open succeeds
    assert snap.verify() is False


def test_frozen_flag_roundtrips(tmp_path):
    frozen_store = _store(freeze=True)
    path = save_snapshot_store(frozen_store, tmp_path / "f.mdws")
    snap = MappedSnapshot.open(path)
    assert snap.store(mutable_models=()).model("DWH_CURR").frozen
    # an unfrozen-saved model defaults back to a mutable graph on load
    path2 = save_snapshot_store(_store(freeze=False), tmp_path / "u.mdws")
    loaded = MappedSnapshot.open(path2).store()
    graph = loaded.model("DWH_CURR")
    assert not graph.frozen
    graph.add(Triple(IRI(f"{NS}new"), RDF.type, IRI(f"{NS}Class_0")))


def test_stats_parity_with_in_memory_catalog(tmp_path):
    store = _store()
    original = store.model("DWH_CURR")
    original.stats().ensure_fresh(trigger="test")
    path = save_snapshot_store(store, tmp_path / "s.mdws")
    mapped = MappedSnapshot.open(path).store(mutable_models=()).model("DWH_CURR")
    for predicate in (RDF.type, IRI(f"{NS}hasName")):
        pid = original.dictionary.lookup(predicate)
        expected = original.stats().predicate(pid)
        mid = mapped.dictionary.lookup(predicate)
        actual = mapped.stats().predicate(mid)
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert actual.count == expected.count
            assert actual.distinct_subjects == expected.distinct_subjects
            assert actual.distinct_objects == expected.distinct_objects
