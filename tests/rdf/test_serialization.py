"""Unit tests for N-Triples, Turtle, and RDF/XML serialization."""

import xml.etree.ElementTree as ET

import pytest

from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    NamespaceManager,
    NTriplesParseError,
    RDF,
    Triple,
    TurtleParseError,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_rdfxml,
    serialize_turtle,
)

EX = Graph(
    [
        Triple(IRI("http://x/alice"), RDF.type, IRI("http://x/Person")),
        Triple(IRI("http://x/alice"), IRI("http://x/name"), Literal("Alice")),
        Triple(IRI("http://x/alice"), IRI("http://x/age"), Literal(30)),
        Triple(IRI("http://x/alice"), IRI("http://x/bio"), Literal("said \"hi\"\nbye", language="en")),
        Triple(BNode("b1"), IRI("http://x/knows"), IRI("http://x/alice")),
    ]
)


class TestNTriples:
    def test_roundtrip(self):
        text = serialize_ntriples(EX)
        assert Graph(parse_ntriples(text)) == EX

    def test_deterministic_sorted_output(self):
        text = serialize_ntriples(EX)
        assert text == serialize_ntriples(Graph(reversed(list(EX))))
        lines = text.strip().splitlines()
        assert lines == sorted(lines)

    def test_empty_graph(self):
        assert serialize_ntriples(Graph()) == ""
        assert list(parse_ntriples("")) == []

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n<http://x/s> <http://x/p> <http://x/o> .\n"
        assert len(list(parse_ntriples(text))) == 1

    def test_error_carries_line_number(self):
        text = "<http://x/s> <http://x/p> <http://x/o> .\nbroken line\n"
        with pytest.raises(NTriplesParseError) as exc:
            list(parse_ntriples(text))
        assert exc.value.lineno == 2

    def test_missing_dot(self):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples("<http://x/s> <http://x/p> <http://x/o>"))

    def test_wrong_term_count(self):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples("<http://x/s> <http://x/p> ."))

    def test_literal_with_spaces_inside(self):
        text = '<http://x/s> <http://x/p> "two words here" .'
        [t] = list(parse_ntriples(text))
        assert t.object == Literal("two words here")

    def test_unterminated_literal(self):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples('<http://x/s> <http://x/p> "open .'))


class TestTurtle:
    def test_roundtrip(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        text = serialize_turtle(EX, nsm)
        assert parse_turtle(text) == EX

    def test_rdf_type_shortened_to_a(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        assert " a ex:Person" in serialize_turtle(EX, nsm)

    def test_prefix_declared(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        assert "@prefix ex: <http://x/> ." in serialize_turtle(EX, nsm)

    def test_object_list_comma(self):
        g = Graph(
            [
                Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("a")),
                Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("b")),
            ]
        )
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        assert '"a", "b"' in serialize_turtle(g, nsm)

    def test_parse_predicate_lists(self):
        text = """
        @prefix ex: <http://x/> .
        ex:s ex:p ex:o ; ex:q "v" , "w" .
        """
        g = parse_turtle(text)
        assert len(g) == 3

    def test_parse_integer_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p 42 .")
        assert next(iter(g)).object == Literal(42)

    def test_parse_decimal_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p 4.25 .")
        obj = next(iter(g)).object
        assert obj.lexical == "4.25"
        assert obj.datatype.local_name == "decimal"

    def test_parse_boolean_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p true .")
        assert next(iter(g)).object.lexical == "true"

    def test_parse_lang_literal(self):
        g = parse_turtle('@prefix ex: <http://x/> .\nex:s ex:p "hallo"@de .')
        assert next(iter(g)).object == Literal("hallo", language="de")

    def test_parse_qname_datatype(self):
        g = parse_turtle('@prefix ex: <http://x/> .\nex:s ex:p "7"^^xsd:integer .')
        assert next(iter(g)).object == Literal(7)

    def test_parse_bnode_label(self):
        g = parse_turtle("@prefix ex: <http://x/> .\n_:n1 ex:p ex:o .")
        assert next(iter(g)).subject == BNode("n1")

    def test_parse_a_keyword(self):
        g = parse_turtle("@prefix ex: <http://x/> .\nex:s a ex:T .")
        assert next(iter(g)).predicate == RDF.type

    def test_comments_skipped(self):
        g = parse_turtle("# comment\n@prefix ex: <http://x/> . # trailing\nex:s ex:p ex:o .")
        assert len(g) == 1

    def test_unbound_prefix_error(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("nope:s nope:p nope:o .")

    def test_anonymous_bnode_rejected(self):
        with pytest.raises(TurtleParseError) as exc:
            parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p [ ex:q ex:o ] .")
        assert "anonymous" in str(exc.value)

    def test_collection_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p (1 2) .")

    def test_missing_dot(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p ex:o")

    def test_literal_subject_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle('"lit" <http://x/p> <http://x/o> .')

    def test_nsm_receives_document_prefixes(self):
        nsm = NamespaceManager()
        parse_turtle("@prefix zz: <http://zz/> .\nzz:s zz:p zz:o .", nsm)
        assert nsm.expand("zz:s") == IRI("http://zz/s")

    def test_deterministic(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        assert serialize_turtle(EX, nsm) == serialize_turtle(Graph(reversed(list(EX))), nsm)


class TestRdfXml:
    def nsm(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        return nsm

    def test_well_formed_xml(self):
        doc = serialize_rdfxml(EX, self.nsm())
        root = ET.fromstring(doc)
        assert root.tag == "{http://www.w3.org/1999/02/22-rdf-syntax-ns#}RDF"

    def test_subject_descriptions(self):
        doc = serialize_rdfxml(EX, self.nsm())
        root = ET.fromstring(doc)
        rdfns = "{http://www.w3.org/1999/02/22-rdf-syntax-ns#}"
        descriptions = root.findall(f"{rdfns}Description")
        assert len(descriptions) == 2  # alice + bnode

    def test_resource_vs_literal_properties(self):
        doc = serialize_rdfxml(EX, self.nsm())
        assert 'rdf:resource="http://x/Person"' in doc
        assert ">Alice</ex:name>" in doc
        assert 'rdf:datatype="http://www.w3.org/2001/XMLSchema#integer">30<' in doc
        assert 'xml:lang="en"' in doc

    def test_bnode_uses_nodeid(self):
        doc = serialize_rdfxml(EX, self.nsm())
        assert 'rdf:nodeID="b1"' in doc

    def test_unbound_predicate_namespace_rejected(self):
        g = Graph([Triple(IRI("http://x/s"), IRI("http://unbound/p"), Literal("o"))])
        with pytest.raises(ValueError):
            serialize_rdfxml(g, self.nsm())

    def test_escaping_in_literal_body(self):
        g = Graph([Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("a < b & c"))])
        doc = serialize_rdfxml(g, self.nsm())
        assert "a &lt; b &amp; c" in doc
        ET.fromstring(doc)
