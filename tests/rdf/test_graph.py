"""Unit tests for the indexed Graph and GraphView."""

import pytest

from repro.rdf import Graph, GraphView, IRI, Literal, ReadOnlyGraphError, Triple, Variable

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


def t(s, p, o):
    obj = o if not isinstance(o, str) else iri(o)
    return Triple(iri(s), iri(p), obj)


@pytest.fixture
def graph():
    g = Graph(name="test")
    g.add(t("alice", "knows", "bob"))
    g.add(t("alice", "knows", "carol"))
    g.add(t("bob", "knows", "carol"))
    g.add(Triple(iri("alice"), iri("name"), Literal("Alice")))
    return g


class TestAddRemove:
    def test_add_returns_true_when_new(self, graph):
        assert graph.add(t("carol", "knows", "alice"))

    def test_add_duplicate_returns_false(self, graph):
        assert not graph.add(t("alice", "knows", "bob"))
        assert len(graph) == 4

    def test_add_raw_tuple(self):
        g = Graph()
        g.add((iri("s"), iri("p"), iri("o")))
        assert len(g) == 1

    def test_add_non_ground_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add(Triple(Variable("s"), iri("p"), iri("o")))

    def test_remove(self, graph):
        graph.remove(t("alice", "knows", "bob"))
        assert t("alice", "knows", "bob") not in graph
        assert len(graph) == 3

    def test_remove_missing_raises(self, graph):
        with pytest.raises(KeyError):
            graph.remove(t("nobody", "knows", "nothing"))

    def test_discard_missing_ok(self, graph):
        assert not graph.discard(t("nobody", "knows", "nothing"))

    def test_remove_then_readd(self, graph):
        triple = t("alice", "knows", "bob")
        graph.remove(triple)
        assert graph.add(triple)
        assert triple in graph

    def test_remove_pattern(self, graph):
        removed = graph.remove_pattern(iri("alice"), iri("knows"), None)
        assert removed == 2
        assert len(graph) == 2

    def test_remove_prunes_indexes(self):
        g = Graph()
        triple = t("s", "p", "o")
        g.add(triple)
        g.remove(triple)
        # all index dicts fully pruned: no residual empty entries
        assert not g._spo and not g._pos and not g._osp

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert list(graph) == []

    def test_add_all_counts_inserted(self, graph):
        n = graph.add_all([t("x", "knows", "y"), t("alice", "knows", "bob")])
        assert n == 1


class TestMatching:
    def test_fully_bound_hit(self, graph):
        assert list(graph.triples(iri("alice"), iri("knows"), iri("bob")))

    def test_fully_bound_miss(self, graph):
        assert not list(graph.triples(iri("bob"), iri("knows"), iri("alice")))

    def test_s_bound(self, graph):
        assert len(list(graph.triples(iri("alice"), None, None))) == 3

    def test_p_bound(self, graph):
        assert len(list(graph.triples(None, iri("knows"), None))) == 3

    def test_o_bound(self, graph):
        assert len(list(graph.triples(None, None, iri("carol")))) == 2

    def test_sp_bound(self, graph):
        assert len(list(graph.triples(iri("alice"), iri("knows"), None))) == 2

    def test_po_bound(self, graph):
        assert len(list(graph.triples(None, iri("knows"), iri("carol")))) == 2

    def test_so_bound(self, graph):
        assert len(list(graph.triples(iri("alice"), None, iri("bob")))) == 1

    def test_all_wild(self, graph):
        assert len(list(graph.triples())) == 4

    def test_missing_subject_empty(self, graph):
        assert not list(graph.triples(iri("zelda"), None, None))

    def test_contains(self, graph):
        assert t("alice", "knows", "bob") in graph
        assert t("bob", "knows", "alice") not in graph

    def test_count_matches_iteration(self, graph):
        for pattern in [
            (None, None, None),
            (iri("alice"), None, None),
            (None, iri("knows"), None),
            (iri("alice"), iri("knows"), None),
            (None, iri("knows"), iri("carol")),
        ]:
            assert graph.count(*pattern) == len(list(graph.triples(*pattern)))


class TestAccessors:
    def test_subjects(self, graph):
        subs = set(graph.subjects(iri("knows"), iri("carol")))
        assert subs == {iri("alice"), iri("bob")}

    def test_objects(self, graph):
        objs = set(graph.objects(iri("alice"), iri("knows")))
        assert objs == {iri("bob"), iri("carol")}

    def test_predicates(self, graph):
        preds = set(graph.predicates(iri("alice"), iri("bob")))
        assert preds == {iri("knows")}

    def test_subjects_distinct(self, graph):
        assert len(list(graph.subjects(iri("knows"), None))) == 2  # alice, bob

    def test_value_object(self, graph):
        assert graph.value(iri("alice"), iri("name"), None) == Literal("Alice")

    def test_value_missing_is_none(self, graph):
        assert graph.value(iri("zelda"), iri("name"), None) is None

    def test_value_requires_one_unbound(self, graph):
        with pytest.raises(ValueError):
            graph.value(iri("alice"), None, None)

    def test_nodes(self, graph):
        nodes = set(graph.nodes())
        assert iri("alice") in nodes
        assert Literal("Alice") in nodes
        assert iri("knows") not in nodes  # predicate-only terms are not nodes

    def test_node_count(self, graph):
        assert graph.node_count() == len(set(graph.nodes()))


class TestSetOperations:
    def test_union(self, graph):
        other = Graph([t("dave", "knows", "alice")])
        u = graph.union(other)
        assert len(u) == 5
        assert len(graph) == 4  # original untouched

    def test_union_operator(self, graph):
        assert len(graph | Graph([t("x", "y", "z")])) == 5

    def test_intersection(self, graph):
        other = Graph([t("alice", "knows", "bob"), t("q", "r", "s")])
        assert set(graph & other) == {t("alice", "knows", "bob")}

    def test_difference(self, graph):
        other = Graph([t("alice", "knows", "bob")])
        assert len(graph - other) == 3

    def test_copy_independent(self, graph):
        c = graph.copy()
        c.add(t("new", "p", "o"))
        assert len(graph) == 4
        assert len(c) == 5

    def test_equality(self, graph):
        assert graph == graph.copy()
        assert graph != Graph()


class TestFreeze:
    def test_frozen_rejects_add(self, graph):
        graph.freeze()
        with pytest.raises(ReadOnlyGraphError):
            graph.add(t("x", "y", "z"))

    def test_frozen_rejects_remove(self, graph):
        graph.freeze()
        with pytest.raises(ReadOnlyGraphError):
            graph.discard(t("alice", "knows", "bob"))

    def test_frozen_still_readable(self, graph):
        graph.freeze()
        assert len(graph) == 4
        assert t("alice", "knows", "bob") in graph

    def test_graph_unhashable(self, graph):
        with pytest.raises(TypeError):
            hash(graph)


class TestGraphView:
    def test_union_semantics(self, graph):
        extra = Graph([t("derived", "edge", "here")], name="index")
        view = GraphView([graph, extra])
        assert len(view) == 5
        assert t("derived", "edge", "here") in view

    def test_duplicates_reported_once(self, graph):
        dup = Graph([t("alice", "knows", "bob")])
        view = GraphView([graph, dup])
        assert len(view) == 4

    def test_view_is_read_only(self, graph):
        view = GraphView([graph])
        with pytest.raises(ReadOnlyGraphError):
            view.add(t("x", "y", "z"))
        with pytest.raises(ReadOnlyGraphError):
            view.remove(t("alice", "knows", "bob"))

    def test_view_reflects_layer_mutation(self, graph):
        view = GraphView([graph])
        graph.add(t("late", "p", "o"))
        assert t("late", "p", "o") in view

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            GraphView([])

    def test_pattern_matching(self, graph):
        extra = Graph([t("alice", "knows", "dave")])
        view = GraphView([graph, extra])
        assert len(list(view.triples(iri("alice"), iri("knows"), None))) == 3

    def test_accessors(self, graph):
        view = GraphView([graph])
        assert set(view.objects(iri("alice"), iri("knows"))) == {iri("bob"), iri("carol")}
        assert set(view.subjects(iri("knows"), iri("carol"))) == {iri("alice"), iri("bob")}
        assert view.value(iri("alice"), iri("name"), None) == Literal("Alice")

    def test_graph_equals_view(self, graph):
        assert graph == GraphView([graph])
