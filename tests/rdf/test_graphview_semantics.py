"""GraphView layering semantics: dedup, the disjoint fast path, and
read-only enforcement — plus planner tie determinism.

The view is how entailment indexes become visible (Section III.B), so
its set semantics must hold whether or not the store could prove the
layers disjoint.
"""

import pytest

from repro.rdf import (
    Graph,
    GraphView,
    IRI,
    Literal,
    ReadOnlyGraphError,
    Triple,
    TripleStore,
)
from repro.sparql.planner import order_patterns
from repro.rdf.terms import Variable


def t(n, p="p"):
    return Triple(IRI(f"http://x/s{n}"), IRI(f"http://x/{p}"), IRI(f"http://x/o{n}"))


class TestDuplicateSemantics:
    def test_triple_in_both_layers_reported_once(self):
        shared = t(1)
        a = Graph([shared, t(2)])
        b = Graph([shared, t(3)])
        view = GraphView([a, b])
        assert sorted(view.triples(), key=lambda tr: tr.subject.value) == sorted(
            [shared, t(2), t(3)], key=lambda tr: tr.subject.value
        )
        assert len(view) == 3
        assert view.count(None, None, None) == 3

    def test_count_with_pattern_dedups(self):
        shared = t(1)
        view = GraphView([Graph([shared]), Graph([shared])])
        assert view.count(shared.subject, None, None) == 1
        assert list(view.triples_ids()) and len(list(view.triples_ids())) == 1

    def test_contains_across_layers(self):
        view = GraphView([Graph([t(1)]), Graph([t(2)])])
        assert t(1) in view and t(2) in view and t(3) not in view


class TestDisjointHint:
    def layers(self):
        return Graph([t(1), t(2)]), Graph([t(3), t(4)])

    def test_disjoint_hint_matches_dedup_path(self):
        a, b = self.layers()
        hinted = GraphView([a, b], disjoint_hint=True)
        plain = GraphView([a, b])
        assert set(hinted.triples()) == set(plain.triples())
        assert set(hinted.triples_ids()) == set(plain.triples_ids())
        assert len(hinted) == len(plain) == 4
        for pattern in [
            (None, None, None),
            (t(1).subject, None, None),
            (None, t(1).predicate, None),
            (None, None, t(3).object),
        ]:
            assert hinted.count(*pattern) == plain.count(*pattern)

    def test_single_layer_view_is_disjoint(self):
        a, _ = self.layers()
        assert GraphView([a]).disjoint_hint is True

    def test_store_hints_disjoint_for_fresh_index(self):
        store = TripleStore()
        store.create_model("M").add(t(1))
        store.attach_index("M", "RB", Graph([t(2)]))
        view = store.view(["M"], rulebases=["RB"])
        assert view.disjoint_hint is True
        assert len(view) == 2

    def test_store_drops_hint_after_base_mutation(self):
        store = TripleStore()
        base = store.create_model("M")
        base.add(t(1))
        store.attach_index("M", "RB", Graph([t(2)]))
        base.add(t(3))  # model changed since the index build
        view = store.view(["M"], rulebases=["RB"])
        assert view.disjoint_hint is False
        assert len(view) == 3

    def test_store_never_hints_for_multiple_models(self):
        store = TripleStore()
        store.create_model("A").add(t(1))
        store.create_model("B").add(t(2))
        assert store.view(["A", "B"]).disjoint_hint is False


class TestReadOnly:
    def test_view_add_raises(self):
        view = GraphView([Graph([t(1)])])
        with pytest.raises(ReadOnlyGraphError):
            view.add(t(2))
        with pytest.raises(ReadOnlyGraphError):
            view.discard(t(1))

    def test_frozen_graph_mutation_raises(self):
        g = Graph([t(1)])
        g.freeze()
        with pytest.raises(ReadOnlyGraphError):
            g.add(t(2))
        with pytest.raises(ReadOnlyGraphError):
            g.discard(t(1))
        with pytest.raises(ReadOnlyGraphError):
            g.clear()
        assert len(g) == 1  # untouched


class TestPlannerDeterminism:
    def test_equal_selectivity_ties_keep_original_order(self):
        g = Graph([t(1, "p1"), t(2, "p2")])
        patterns = [
            Triple(Variable("a"), IRI("http://x/p1"), Variable("b")),
            Triple(Variable("a"), IRI("http://x/p2"), Variable("c")),
        ]
        # both estimate to 1 row and share ?a: the tie must break on the
        # original pattern position, every time
        for _ in range(5):
            assert order_patterns(g, patterns) == patterns
            assert order_patterns(g, list(reversed(patterns))) == list(
                reversed(patterns)
            )
