"""Unit tests for staging tables and the bulk loader (Figure 4 pipeline)."""

import pytest

from repro.rdf import (
    BNode,
    BulkLoader,
    BulkLoadError,
    IRI,
    Literal,
    StagingRow,
    StagingTable,
    Triple,
    TripleStore,
)
from repro.rdf.staging import parse_lexical_term, row_to_triple


class TestParseLexicalTerm:
    def test_iri(self):
        assert parse_lexical_term("<http://x/a>") == IRI("http://x/a")

    def test_bnode(self):
        assert parse_lexical_term("_:b7") == BNode("b7")

    def test_plain_literal(self):
        assert parse_lexical_term('"Zurich"') == Literal("Zurich")

    def test_lang_literal(self):
        assert parse_lexical_term('"Zurich"@de') == Literal("Zurich", language="de")

    def test_typed_literal(self):
        term = parse_lexical_term('"100"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert term == Literal(100)

    def test_escaped_quote(self):
        assert parse_lexical_term('"a\\"b"') == Literal('a"b')

    def test_whitespace_stripped(self):
        assert parse_lexical_term("  <http://x/a>  ") == IRI("http://x/a")

    @pytest.mark.parametrize(
        "bad",
        ["", "plainword", "<unterminated", '"unterminated', '"x"@', '"x"^^bad', '"x"%'],
    )
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_lexical_term(bad)


class TestRowToTriple:
    def test_good_row(self):
        row = StagingRow("<http://x/s>", "<http://x/p>", '"o"')
        assert row_to_triple(row) == Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            row_to_triple(StagingRow('"s"', "<http://x/p>", '"o"'))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(ValueError):
            row_to_triple(StagingRow("<http://x/s>", "_:p", '"o"'))


class TestStagingTable:
    def test_insert_and_len(self):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"', source="feed-a")
        assert len(st) == 1
        assert next(iter(st)).source == "feed-a"

    def test_insert_triples(self):
        st = StagingTable()
        n = st.insert_triples(
            [Triple(IRI("http://x/s"), IRI("http://x/p"), Literal(i)) for i in range(3)]
        )
        assert n == 3
        assert len(st) == 3

    def test_truncate(self):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        st.truncate()
        assert len(st) == 0


@pytest.fixture
def store():
    return TripleStore()


class TestBulkLoader:
    def test_load_creates_model(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        report = BulkLoader(store).load(st, "DWH_CURR")
        assert report.inserted == 1
        assert store.has_model("DWH_CURR")
        assert len(store.model("DWH_CURR")) == 1

    def test_staging_truncated_after_load(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        BulkLoader(store).load(st, "M")
        assert len(st) == 0

    def test_staging_kept_when_requested(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        BulkLoader(store).load(st, "M", truncate_staging=False)
        assert len(st) == 1

    def test_duplicates_counted(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        report = BulkLoader(store).load(st, "M")
        assert report.inserted == 1
        assert report.duplicates == 1
        assert report.total_rows == 2

    def test_lenient_quarantines_bad_rows(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"good"', source="feed")
        st.insert("garbage", "<http://x/p>", '"bad"', source="feed")
        report = BulkLoader(store).load(st, "M")
        assert report.inserted == 1
        assert len(report.rejected) == 1
        assert report.rejected[0][0].subject == "garbage"

    def test_strict_raises_and_leaves_model_untouched(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"good"')
        st.insert("garbage", "<http://x/p>", '"bad"')
        with pytest.raises(BulkLoadError):
            BulkLoader(store, strict=True).load(st, "M")
        assert not store.has_model("M")

    def test_per_source_accounting(self, store):
        st = StagingTable()
        st.insert("<http://x/a>", "<http://x/p>", '"1"', source="feed-a")
        st.insert("<http://x/b>", "<http://x/p>", '"2"', source="feed-b")
        st.insert("<http://x/c>", "<http://x/p>", '"3"', source="feed-b")
        report = BulkLoader(store).load(st, "M")
        assert report.per_source == {"feed-a": 1, "feed-b": 2}

    def test_load_many_merges(self, store):
        t1, t2 = StagingTable("a"), StagingTable("b")
        t1.insert("<http://x/a>", "<http://x/p>", '"1"', source="a")
        t2.insert("<http://x/b>", "<http://x/p>", '"2"', source="b")
        t2.insert("bad", "<http://x/p>", '"3"', source="b")
        report = BulkLoader(store).load_many([t1, t2], "M")
        assert report.inserted == 2
        assert len(report.rejected) == 1
        assert report.per_source == {"a": 1, "b": 1}

    def test_summary_text(self, store):
        st = StagingTable()
        st.insert("<http://x/s>", "<http://x/p>", '"o"')
        report = BulkLoader(store).load(st, "M")
        assert "1 inserted" in report.summary()
