"""Unit tests for namespaces and the prefix manager."""

import pytest

from repro.rdf import DM, DT, IRI, Namespace, NamespaceManager, OWL, RDF, RDFS, XSD


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x/ns#")
        assert ns.Customer == IRI("http://x/ns#Customer")

    def test_item_access(self):
        ns = Namespace("http://x/ns#")
        assert ns["Customer"] == IRI("http://x/ns#Customer")

    def test_contains(self):
        ns = Namespace("http://x/ns#")
        assert ns.Customer in ns
        assert IRI("http://other/") not in ns

    def test_equality(self):
        assert Namespace("http://x/") == Namespace("http://x/")
        assert Namespace("http://x/") != Namespace("http://y/")

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_underscore_attr_raises(self):
        ns = Namespace("http://x/")
        with pytest.raises(AttributeError):
            ns._private


class TestWellKnownVocabularies:
    def test_rdf_type(self):
        assert RDF.type.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

    def test_rdfs_subclassof(self):
        assert RDFS.subClassOf.value == "http://www.w3.org/2000/01/rdf-schema#subClassOf"

    def test_owl_class(self):
        assert OWL.Class.value == "http://www.w3.org/2002/07/owl#Class"

    def test_xsd_integer(self):
        assert XSD.integer.value == "http://www.w3.org/2001/XMLSchema#integer"

    def test_paper_namespaces(self):
        # The exact aliases used in Listings 1 and 2 of the paper.
        assert DM.base == "http://www.credit-suisse.com/dwh/mdm/data_modeling#"
        assert DT.base == "http://www.credit-suisse.com/dwh/mdm/data_transfer#"


class TestNamespaceManager:
    def test_defaults_bound(self):
        nsm = NamespaceManager()
        assert "rdf" in nsm and "rdfs" in nsm and "owl" in nsm and "xsd" in nsm

    def test_no_defaults(self):
        assert len(NamespaceManager(bind_defaults=False)) == 0

    def test_bind_and_expand(self):
        nsm = NamespaceManager()
        nsm.bind("dm", DM)
        assert nsm.expand("dm:hasName") == DM.hasName

    def test_bind_string_base(self):
        nsm = NamespaceManager()
        nsm.bind("ex", "http://x/")
        assert nsm.expand("ex:a") == IRI("http://x/a")

    def test_expand_unbound_prefix(self):
        with pytest.raises(KeyError):
            NamespaceManager().expand("nope:a")

    def test_expand_requires_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("plain")

    def test_compact(self):
        nsm = NamespaceManager()
        nsm.bind("dm", DM)
        assert nsm.compact(DM.hasName) == "dm:hasName"

    def test_compact_unknown_is_none(self):
        assert NamespaceManager().compact(IRI("http://unknown/x")) is None

    def test_compact_prefers_longest_base(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("a", "http://x/")
        nsm.bind("b", "http://x/deep/")
        assert nsm.compact(IRI("http://x/deep/term")) == "b:term"

    def test_compact_rejects_invalid_local(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("a", "http://x/")
        # '/' in the remainder is not a valid qname local part
        assert nsm.compact(IRI("http://x/a/b")) is None

    def test_rebind_prefix(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("a", "http://one/")
        nsm.bind("a", "http://two/")
        assert nsm.expand("a:x") == IRI("http://two/x")
        # old base no longer compacts through the stale prefix
        assert nsm.compact(IRI("http://one/x")) is None

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            NamespaceManager().bind("has space", "http://x/")

    def test_bind_non_namespace_rejected(self):
        with pytest.raises(TypeError):
            NamespaceManager().bind("x", 42)

    def test_bindings_sorted(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("z", "http://z/")
        nsm.bind("a", "http://a/")
        assert [p for p, _ in nsm.bindings()] == ["a", "z"]
