"""Unit tests for RDF terms."""

import pytest

from repro.rdf import BNode, IRI, Literal, Triple, Variable
from repro.rdf.terms import (
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    escape_literal,
    unescape_literal,
)


class TestIRI:
    def test_value_roundtrip(self):
        iri = IRI("http://example.org/Customer")
        assert iri.value == "http://example.org/Customer"

    def test_equality_and_hash(self):
        assert IRI("http://x/a") == IRI("http://x/a")
        assert IRI("http://x/a") != IRI("http://x/b")
        assert hash(IRI("http://x/a")) == hash(IRI("http://x/a"))

    def test_not_equal_to_string(self):
        assert IRI("http://x/a") != "http://x/a"

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("http://x/a") != Literal("http://x/a")

    def test_n3(self):
        assert IRI("http://x/a").n3() == "<http://x/a>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            IRI(42)

    @pytest.mark.parametrize("bad", ["http://x/<a>", "http://x/a b", 'http://x/"', "a\nb"])
    def test_forbidden_characters_rejected(self, bad):
        with pytest.raises(ValueError):
            IRI(bad)

    def test_immutable(self):
        iri = IRI("http://x/a")
        with pytest.raises(AttributeError):
            iri.value = "http://x/b"

    def test_local_name_hash(self):
        assert IRI("http://x/ns#Customer").local_name == "Customer"

    def test_local_name_slash(self):
        assert IRI("http://x/ns/Customer").local_name == "Customer"

    def test_namespace(self):
        assert IRI("http://x/ns#Customer").namespace == "http://x/ns#"

    def test_local_name_no_separator(self):
        assert IRI("urn:isbn").local_name == "urn:isbn" or IRI("mailto:x").local_name


class TestBNode:
    def test_fresh_labels_distinct(self):
        assert BNode() != BNode()

    def test_same_label_equal(self):
        assert BNode("x") == BNode("x")

    def test_n3(self):
        assert BNode("b1").n3() == "_:b1"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_immutable(self):
        b = BNode("x")
        with pytest.raises(AttributeError):
            b.label = "y"


class TestLiteral:
    def test_plain(self):
        lit = Literal("Zurich")
        assert lit.lexical == "Zurich"
        assert lit.datatype is None
        assert lit.language is None

    def test_int_coercion(self):
        lit = Literal(100)
        assert lit.lexical == "100"
        assert lit.datatype.value == XSD_INTEGER
        assert lit.to_python() == 100

    def test_bool_coercion(self):
        lit = Literal(True)
        assert lit.lexical == "true"
        assert lit.datatype.value == XSD_BOOLEAN
        assert lit.to_python() is True

    def test_bool_false(self):
        assert Literal(False).to_python() is False

    def test_float_coercion(self):
        lit = Literal(1.5)
        assert lit.datatype.value == XSD_DOUBLE
        assert lit.to_python() == 1.5

    def test_language_normalized_lowercase(self):
        assert Literal("hi", language="EN").language == "en"

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=IRI(XSD_INTEGER), language="en")

    def test_plain_vs_datatyped_distinct(self):
        assert Literal("42") != Literal(42)

    def test_language_distinguishes(self):
        assert Literal("chat", language="en") != Literal("chat", language="fr")

    def test_n3_plain(self):
        assert Literal("abc").n3() == '"abc"'

    def test_n3_escaping(self):
        assert Literal('a"b\nc').n3() == '"a\\"b\\nc"'

    def test_n3_language(self):
        assert Literal("abc", language="en").n3() == '"abc"@en'

    def test_n3_datatype(self):
        assert Literal(7).n3() == f'"7"^^<{XSD_INTEGER}>'

    def test_is_numeric(self):
        assert Literal(7).is_numeric()
        assert not Literal("7").is_numeric()

    def test_to_python_plain_is_str(self):
        assert Literal("x").to_python() == "x"

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            Literal(None)


class TestVariable:
    def test_strip_question_mark(self):
        assert Variable("?x") == Variable("x")

    def test_n3(self):
        assert Variable("term").n3() == "?term"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("")


class TestTriple:
    def test_unpacking(self):
        s, p, o = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert s == IRI("http://x/s")
        assert o == Literal("o")

    def test_accessors(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))
        assert t.subject == IRI("http://x/s")
        assert t.predicate == IRI("http://x/p")
        assert t.object == IRI("http://x/o")

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("s"), IRI("http://x/p"), Literal("o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("http://x/s"), Literal("p"), Literal("o"))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("http://x/s"), BNode(), Literal("o"))

    def test_is_ground(self):
        assert Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o")).is_ground()
        assert not Triple(Variable("s"), IRI("http://x/p"), Literal("o")).is_ground()
        assert not Triple(None, IRI("http://x/p"), Literal("o")).is_ground()

    def test_equality_as_tuple(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert t == (IRI("http://x/s"), IRI("http://x/p"), Literal("o"))

    def test_hashable(self):
        t1 = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        t2 = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert len({t1, t2}) == 1


class TestOrdering:
    def test_kind_order(self):
        # IRI < BNode < Literal per the deterministic total order
        assert IRI("http://z/") < BNode("a")
        assert BNode("z") < Literal("a")

    def test_sorting_mixed_terms(self):
        terms = [Literal("b"), IRI("http://x/a"), BNode("m"), Literal("a")]
        ordered = sorted(terms)
        assert ordered[0] == IRI("http://x/a")
        assert ordered[1] == BNode("m")
        assert ordered[2:] == [Literal("a"), Literal("b")]


class TestEscaping:
    @pytest.mark.parametrize(
        "raw",
        ["plain", 'quo"te', "back\\slash", "new\nline", "tab\there", "cr\rhere", ""],
    )
    def test_roundtrip(self, raw):
        assert unescape_literal(escape_literal(raw)) == raw

    def test_unicode_escape(self):
        assert unescape_literal("\\u00e9") == "é"

    def test_long_unicode_escape(self):
        assert unescape_literal("\\U0001F600") == "\U0001F600"

    def test_dangling_backslash(self):
        with pytest.raises(ValueError):
            unescape_literal("abc\\")

    def test_unknown_escape(self):
        with pytest.raises(ValueError):
            unescape_literal("\\q")
