"""Property-based tests for the RDF substrate (hypothesis).

The central property: the indexed Graph answers every pattern shape
identically to a naive full-scan oracle, and both serializations
round-trip arbitrary graphs.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import (
    BNode,
    Graph,
    GraphView,
    IRI,
    Literal,
    Triple,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)

# -- strategies ---------------------------------------------------------------

_local = st.text(alphabet=string.ascii_letters + string.digits + "_", min_size=1, max_size=8)

iris = st.builds(lambda l: IRI("http://t/" + l), _local)
bnodes = st.builds(BNode, _local)

_literal_text = st.text(
    alphabet=string.printable, min_size=0, max_size=12
).filter(lambda s: "\x0b" not in s and "\x0c" not in s)

plain_literals = st.builds(Literal, _literal_text)
lang_literals = st.builds(
    lambda s, l: Literal(s, language=l),
    _literal_text,
    st.sampled_from(["en", "de", "fr", "en-gb"]),
)
typed_literals = st.one_of(
    st.builds(Literal, st.integers(min_value=-10**9, max_value=10**9)),
    st.builds(Literal, st.booleans()),
)
literals = st.one_of(plain_literals, lang_literals, typed_literals)

subjects = st.one_of(iris, bnodes)
objects_ = st.one_of(iris, bnodes, literals)
triples = st.builds(Triple, subjects, iris, objects_)
triple_lists = st.lists(triples, max_size=30)


# -- naive oracle --------------------------------------------------------------


def naive_match(triple_set, s, p, o):
    return {
        t
        for t in triple_set
        if (s is None or t.subject == s)
        and (p is None or t.predicate == p)
        and (o is None or t.object == o)
    }


@st.composite
def graph_and_pattern(draw):
    ts = draw(triple_lists)
    g = Graph(ts)
    # Bias pattern terms toward terms that occur in the graph.
    pool_s = [t.subject for t in ts] or [IRI("http://t/none")]
    pool_p = [t.predicate for t in ts] or [IRI("http://t/none")]
    pool_o = [t.object for t in ts] or [IRI("http://t/none")]
    s = draw(st.one_of(st.none(), st.sampled_from(pool_s), subjects))
    p = draw(st.one_of(st.none(), st.sampled_from(pool_p), iris))
    o = draw(st.one_of(st.none(), st.sampled_from(pool_o), objects_))
    return g, set(ts), (s, p, o)


@settings(max_examples=200)
@given(graph_and_pattern())
def test_pattern_matching_matches_naive_oracle(data):
    g, triple_set, (s, p, o) = data
    assert set(g.triples(s, p, o)) == naive_match(triple_set, s, p, o)


@settings(max_examples=200)
@given(graph_and_pattern())
def test_count_matches_naive_oracle(data):
    g, triple_set, (s, p, o) = data
    assert g.count(s, p, o) == len(naive_match(triple_set, s, p, o))


@given(triple_lists)
def test_graph_size_equals_set_size(ts):
    assert len(Graph(ts)) == len(set(ts))


@given(triple_lists, triple_lists)
def test_add_then_remove_restores(base, extra):
    g = Graph(base)
    before = set(g)
    truly_new = [t for t in set(extra) if t not in g]
    for t in truly_new:
        assert g.add(t)
    for t in truly_new:
        g.remove(t)
    assert set(g) == before
    assert len(g) == len(before)


@given(triple_lists, triple_lists)
def test_set_operations_match_python_sets(a, b):
    ga, gb = Graph(a), Graph(b)
    assert set(ga | gb) == set(a) | set(b)
    assert set(ga & gb) == set(a) & set(b)
    assert set(ga - gb) == set(a) - set(b)


@given(triple_lists, triple_lists)
def test_view_equals_union(a, b):
    view = GraphView([Graph(a), Graph(b)])
    assert set(view) == set(a) | set(b)
    assert len(view) == len(set(a) | set(b))


@settings(max_examples=150)
@given(triple_lists)
def test_ntriples_roundtrip(ts):
    g = Graph(ts)
    assert Graph(parse_ntriples(serialize_ntriples(g))) == g


@settings(max_examples=150)
@given(triple_lists)
def test_turtle_roundtrip(ts):
    g = Graph(ts)
    assert parse_turtle(serialize_turtle(g)) == g


@given(triple_lists)
def test_serialization_deterministic(ts):
    g1, g2 = Graph(ts), Graph(reversed(ts))
    assert serialize_ntriples(g1) == serialize_ntriples(g2)
    assert serialize_turtle(g1) == serialize_turtle(g2)


@given(triple_lists)
def test_nodes_are_subjects_and_objects(ts):
    g = Graph(ts)
    expected = {t.subject for t in ts} | {t.object for t in ts}
    assert set(g.nodes()) == expected
    assert g.node_count() == len(expected)
