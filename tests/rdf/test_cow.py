"""Copy-on-write graph copies (``Graph.cow_copy``).

The snapshot publisher and the historizer both rely on: a cow copy is
O(outer dicts) to take, bit-identical to its source at capture time, and
isolated from every later mutation of the other side — with only the
touched subtrees ever privatized.
"""

import random

from repro.rdf import Graph, Namespace, RDF, Triple
from repro.rdf.ntriples import serialize_ntriples

EX = Namespace("http://x/")


def seeded_graph(n=30):
    g = Graph(name="live")
    for i in range(n):
        g.add(Triple(EX.term(f"s{i % 7}"), EX.term(f"p{i % 3}"), EX.term(f"o{i}")))
    return g


class TestCowCopy:
    def test_copy_is_bit_identical(self):
        g = seeded_graph()
        snap = g.cow_copy("snap")
        assert snap.name == "snap"
        assert len(snap) == len(g)
        assert serialize_ntriples(snap) == serialize_ntriples(g)

    def test_source_mutations_do_not_leak_into_copy(self):
        g = seeded_graph()
        snap = g.cow_copy()
        frozen = serialize_ntriples(snap)
        g.add(Triple(EX.new, RDF.type, EX.Thing))
        g.discard(Triple(EX.s0, EX.p0, EX.o0))
        assert serialize_ntriples(snap) == frozen

    def test_copy_mutations_do_not_leak_into_source(self):
        g = seeded_graph()
        before = serialize_ntriples(g)
        snap = g.cow_copy()
        snap.add(Triple(EX.new, RDF.type, EX.Thing))
        snap.discard(Triple(EX.s0, EX.p0, EX.o0))
        assert serialize_ntriples(g) == before

    def test_frozen_copy_supports_reads_and_refuses_writes(self):
        import pytest

        from repro.rdf.graph import ReadOnlyGraphError

        g = seeded_graph()
        snap = g.cow_copy()
        snap.freeze()
        assert set(snap.triples(EX.s0, None, None)) == set(
            g.triples(EX.s0, None, None)
        )
        with pytest.raises(ReadOnlyGraphError):
            snap.add(Triple(EX.new, RDF.type, EX.Thing))

    def test_clear_under_cow_leaves_copy_intact(self):
        g = seeded_graph()
        snap = g.cow_copy()
        frozen = serialize_ntriples(snap)
        g.clear()
        assert len(g) == 0
        assert serialize_ntriples(snap) == frozen
        # after clear the graph owns everything again (cow mode ended)
        g.add(Triple(EX.fresh, RDF.type, EX.Thing))
        assert serialize_ntriples(snap) == frozen

    def test_shared_term_dictionary(self):
        g = seeded_graph()
        snap = g.cow_copy()
        assert snap.dictionary is g.dictionary

    def test_stacked_epochs(self):
        # snapshot, mutate, snapshot again: three generations, all isolated
        g = seeded_graph()
        snap1 = g.cow_copy("g1")
        g.add(Triple(EX.era2, RDF.type, EX.Thing))
        snap2 = g.cow_copy("g2")
        g.add(Triple(EX.era3, RDF.type, EX.Thing))
        assert Triple(EX.era2, RDF.type, EX.Thing) not in snap1
        assert Triple(EX.era2, RDF.type, EX.Thing) in snap2
        assert Triple(EX.era3, RDF.type, EX.Thing) not in snap1
        assert Triple(EX.era3, RDF.type, EX.Thing) not in snap2

    def test_randomized_isolation(self):
        rng = random.Random(42)
        g = seeded_graph(60)
        reference = g.copy()  # deep copy: the oracle
        snap = g.cow_copy()
        snap_reference = serialize_ntriples(snap)
        pool = list(g) + [
            Triple(EX.term(f"rs{i}"), EX.term(f"rp{i % 5}"), EX.term(f"ro{i}"))
            for i in range(40)
        ]
        for _ in range(200):
            t = rng.choice(pool)
            if rng.random() < 0.5:
                assert g.add(t) == reference.add(t)
            else:
                assert g.discard(t) == reference.discard(t)
        assert serialize_ntriples(g) == serialize_ntriples(reference)
        assert serialize_ntriples(snap) == snap_reference
        # index-path queries agree with the oracle after heavy churn
        for s in (EX.s0, EX.s3, EX.term("rs7")):
            assert set(g.triples(s, None, None)) == set(
                reference.triples(s, None, None)
            )
