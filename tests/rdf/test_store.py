"""Unit tests for TripleStore named models and entailment-index views."""

import pytest

from repro.rdf import Graph, IRI, ModelNotFoundError, Triple, TripleStore


def t(n):
    return Triple(IRI(f"http://x/s{n}"), IRI("http://x/p"), IRI(f"http://x/o{n}"))


@pytest.fixture
def store():
    s = TripleStore()
    s.create_model("DWH_CURR").add_all([t(1), t(2)])
    s.create_model("DWH_PREV").add(t(3))
    return s


class TestModels:
    def test_create_and_get(self, store):
        assert len(store.model("DWH_CURR")) == 2

    def test_create_duplicate_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_model("DWH_CURR")

    def test_create_empty_name_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_model("")

    def test_unknown_model(self, store):
        with pytest.raises(ModelNotFoundError) as exc:
            store.model("NOPE")
        assert "DWH_CURR" in str(exc.value)

    def test_get_or_create(self, store):
        g = store.get_or_create_model("NEW")
        assert len(g) == 0
        assert store.get_or_create_model("NEW") is g

    def test_drop(self, store):
        store.drop_model("DWH_PREV")
        assert not store.has_model("DWH_PREV")
        with pytest.raises(ModelNotFoundError):
            store.drop_model("DWH_PREV")

    def test_rename(self, store):
        store.rename_model("DWH_CURR", "DWH_2009")
        assert store.has_model("DWH_2009")
        assert not store.has_model("DWH_CURR")
        assert store.model("DWH_2009").name == "DWH_2009"

    def test_rename_to_existing_rejected(self, store):
        with pytest.raises(ValueError):
            store.rename_model("DWH_CURR", "DWH_PREV")

    def test_model_names_sorted(self, store):
        assert store.model_names() == ["DWH_CURR", "DWH_PREV"]

    def test_contains_len_iter(self, store):
        assert "DWH_CURR" in store
        assert len(store) == 2
        assert list(store) == ["DWH_CURR", "DWH_PREV"]

    def test_total_triples(self, store):
        assert store.total_triples() == 3


class TestIndexes:
    def test_attach_and_view(self, store):
        derived = Graph([t(99)])
        store.attach_index("DWH_CURR", "OWLPRIME", derived)
        # Without the rulebase the derived triple is invisible
        plain = store.view(["DWH_CURR"])
        assert t(99) not in plain
        # With it, visible
        reasoned = store.view(["DWH_CURR"], rulebases=["OWLPRIME"])
        assert t(99) in reasoned
        assert len(reasoned) == 3

    def test_attach_to_unknown_model(self, store):
        with pytest.raises(ModelNotFoundError):
            store.attach_index("NOPE", "OWLPRIME", Graph())

    def test_reattach_replaces(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(98)]))
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(99)]))
        view = store.view(["DWH_CURR"], rulebases=["OWLPRIME"])
        assert t(99) in view and t(98) not in view

    def test_detach(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(99)]))
        store.detach_index("DWH_CURR", "OWLPRIME")
        assert t(99) not in store.view(["DWH_CURR"], rulebases=["OWLPRIME"])

    def test_unbuilt_rulebase_is_not_an_error(self, store):
        view = store.view(["DWH_CURR"], rulebases=["RDFS"])
        assert len(view) == 2

    def test_index_names(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph())
        store.attach_index("DWH_PREV", "RDFS", Graph())
        assert store.index_names() == [("DWH_CURR", "OWLPRIME"), ("DWH_PREV", "RDFS")]
        assert store.index_names("DWH_CURR") == [("DWH_CURR", "OWLPRIME")]

    def test_drop_model_drops_indexes(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(99)]))
        store.drop_model("DWH_CURR")
        assert store.index("DWH_CURR", "OWLPRIME") is None

    def test_rename_model_keeps_indexes(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(99)]))
        store.rename_model("DWH_CURR", "DWH_NEXT")
        assert store.index("DWH_NEXT", "OWLPRIME") is not None
        assert t(99) in store.view(["DWH_NEXT"], rulebases=["OWLPRIME"])

    def test_total_triples_with_indexes(self, store):
        store.attach_index("DWH_CURR", "OWLPRIME", Graph([t(99)]))
        assert store.total_triples() == 3
        assert store.total_triples(include_indexes=True) == 4


class TestViews:
    def test_multi_model_view(self, store):
        view = store.view(["DWH_CURR", "DWH_PREV"])
        assert len(view) == 3

    def test_view_requires_models(self, store):
        with pytest.raises(ValueError):
            store.view([])

    def test_view_unknown_model(self, store):
        with pytest.raises(ModelNotFoundError):
            store.view(["NOPE"])
