"""The statistics catalog behind the cost-based planner.

Collection correctness, drift tolerance between rebuilds (counts exact,
distincts served stale until the churn threshold), and the layer-merge
semantics of :class:`CombinedStats` — in particular that distinct counts
take the max across layers, not the sum, so a base model stacked with
its entailment index does not double-count shared subjects.
"""

import pytest

from repro.rdf import CombinedStats, Graph, Namespace, Triple

EX = Namespace("http://stats.test/")


def skewed_graph():
    """One predicate: 10 triples, 10 subjects, 3 objects (o0 heavy)."""
    g = Graph()
    for i in range(10):
        g.add(Triple(EX[f"s{i}"], EX.p, EX[f"o{min(i, 2)}"]))
    return g


class TestCatalogCollection:
    def test_counts_and_distincts(self):
        g = skewed_graph()
        stats = g.stats().predicate(g.dictionary.lookup(EX.p))
        assert stats.count == 10
        assert stats.distinct_subjects == 10
        assert stats.distinct_objects == 3

    def test_heavy_hitters_sorted_descending(self):
        g = skewed_graph()
        stats = g.stats().predicate(g.dictionary.lookup(EX.p))
        freqs = [f for _, f in stats.top_objects]
        assert freqs == sorted(freqs, reverse=True)
        assert freqs[0] == 8  # o2 holds subjects s2..s9

    def test_weighted_fanout_exceeds_mean_under_skew(self):
        g = skewed_graph()
        stats = g.stats().predicate(g.dictionary.lookup(EX.p))
        assert stats.weighted_object_fanout() > stats.object_fanout()

    def test_unknown_predicate_is_none(self):
        g = skewed_graph()
        assert g.stats().predicate(10**9) is None


class TestDriftTolerance:
    def test_count_exact_while_stale(self):
        g = skewed_graph()
        catalog = g.stats()
        pid = g.dictionary.lookup(EX.p)
        catalog.predicate(pid)  # build
        refreshes = catalog.refreshes
        g.add(Triple(EX.extra, EX.p, EX.o0))
        stats = catalog.predicate(pid)
        # one add is below the churn threshold: no rebuild, but the
        # count is corrected by the net drift
        assert catalog.refreshes == refreshes
        assert stats.count == 11

    def test_rebuild_past_churn_threshold(self):
        g = skewed_graph()
        catalog = g.stats()
        pid = g.dictionary.lookup(EX.p)
        catalog.predicate(pid)
        refreshes = catalog.refreshes
        for i in range(10):  # churn 10 > 0.25 x 10 built triples
            g.add(Triple(EX[f"extra{i}"], EX.p, EX.o0))
        stats = catalog.predicate(pid)
        assert catalog.refreshes == refreshes + 1
        # the rebuild recollected distincts exactly
        assert stats.distinct_subjects == 20


class TestCombinedStatsMerge:
    def layered(self):
        """Base + entailment-style layer sharing all ten subjects."""
        base = skewed_graph()
        derived = Graph(dictionary=base.dictionary)
        for i in range(10):
            derived.add(Triple(EX[f"s{i}"], EX.p, EX[f"derived{i}"]))
        return base, derived

    def test_counts_add_distincts_take_max(self):
        base, derived = self.layered()
        combined = CombinedStats([base.stats(), derived.stats()])
        stats = combined.predicate(base.dictionary.lookup(EX.p))
        assert stats.count == 20
        # both layers cover the same ten subjects: summing would halve
        # every per-subject fanout estimate
        assert stats.distinct_subjects == 10
        assert stats.distinct_objects == 10  # 3 base, 10 derived: max

    def test_heavy_hitters_merge_by_term_id(self):
        base, derived = self.layered()
        combined = CombinedStats([base.stats(), derived.stats()])
        stats = combined.predicate(base.dictionary.lookup(EX.p))
        top = dict(stats.top_subjects)
        # every subject holds one triple per layer
        assert set(top.values()) == {2}

    def test_merge_cache_tracks_layer_churn(self):
        base, derived = self.layered()
        combined = CombinedStats([base.stats(), derived.stats()])
        pid = base.dictionary.lookup(EX.p)
        before = combined.predicate(pid).count
        base.add(Triple(EX.extra, EX.p, EX.o0))
        assert combined.predicate(pid).count == before + 1

    def test_single_layer_passthrough(self):
        base, _ = self.layered()
        catalog = base.stats()
        combined = CombinedStats([catalog])
        pid = base.dictionary.lookup(EX.p)
        assert combined.predicate(pid) is catalog.predicate(pid)
