"""Unit tests for store persistence (save/load round-trip)."""

import json

import pytest

from repro.core import MetadataWarehouse
from repro.history import Historizer
from repro.rdf import (
    Graph,
    IRI,
    Literal,
    PersistenceError,
    Triple,
    TripleStore,
    load_store,
    save_store,
)


def sample_store():
    store = TripleStore()
    g = store.create_model("DWH_CURR")
    g.add(Triple(IRI("http://x/s"), IRI("http://x/p"), Literal('with "quotes"\nand newline')))
    g.add(Triple(IRI("http://x/s"), IRI("http://x/p"), Literal(42)))
    prev = store.create_model("DWH_PREV")
    prev.add(Triple(IRI("http://x/old"), IRI("http://x/p"), IRI("http://x/o")))
    prev.freeze()
    store.attach_index("DWH_CURR", "OWLPRIME", Graph([Triple(IRI("http://x/d"), IRI("http://x/p"), IRI("http://x/e"))]))
    return store


class TestRoundtrip:
    def test_models_roundtrip(self, tmp_path):
        store = sample_store()
        save_store(store, tmp_path / "store")
        loaded = load_store(tmp_path / "store")
        assert loaded.model_names() == store.model_names()
        for name in store.model_names():
            assert loaded.model(name) == store.model(name)

    def test_frozen_flag_preserved(self, tmp_path):
        save_store(sample_store(), tmp_path / "store")
        loaded = load_store(tmp_path / "store")
        assert loaded.model("DWH_PREV").frozen
        assert not loaded.model("DWH_CURR").frozen

    def test_indexes_roundtrip(self, tmp_path):
        store = sample_store()
        save_store(store, tmp_path / "store")
        loaded = load_store(tmp_path / "store")
        index = loaded.index("DWH_CURR", "OWLPRIME")
        assert index is not None
        assert index == store.index("DWH_CURR", "OWLPRIME")

    def test_save_is_deterministic(self, tmp_path):
        store = sample_store()
        save_store(store, tmp_path / "a")
        save_store(store, tmp_path / "b")
        for sub in ("manifest.json", "models/DWH_CURR.nt"):
            assert (tmp_path / "a" / sub).read_text() == (tmp_path / "b" / sub).read_text()

    def test_resave_removes_dropped_models(self, tmp_path):
        store = sample_store()
        save_store(store, tmp_path / "store")
        store.drop_model("DWH_PREV")
        save_store(store, tmp_path / "store")
        loaded = load_store(tmp_path / "store")
        assert not loaded.has_model("DWH_PREV")

    def test_empty_store(self, tmp_path):
        save_store(TripleStore(), tmp_path / "store")
        assert len(load_store(tmp_path / "store")) == 0


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError, match="manifest"):
            load_store(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            load_store(tmp_path)

    def test_wrong_format_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format_version": 99}))
        with pytest.raises(PersistenceError, match="format"):
            load_store(tmp_path)

    def test_missing_model_file(self, tmp_path):
        save_store(sample_store(), tmp_path)
        (tmp_path / "models" / "DWH_CURR.nt").unlink()
        with pytest.raises(PersistenceError, match="missing model file"):
            load_store(tmp_path)

    def test_triple_count_mismatch(self, tmp_path):
        save_store(sample_store(), tmp_path)
        path = tmp_path / "models" / "DWH_CURR.nt"
        path.write_text(path.read_text() + "<http://x/extra> <http://x/p> <http://x/o> .\n")
        with pytest.raises(PersistenceError, match="manifest says"):
            load_store(tmp_path)

    def test_colliding_model_names(self, tmp_path):
        store = TripleStore()
        store.create_model("a/b")
        store.create_model("a_b")
        with pytest.raises(PersistenceError, match="collide"):
            save_store(store, tmp_path)


class TestWarehouseIntegration:
    def test_warehouse_save_load(self, tmp_path):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Customer")
        mdw.facts.add_instance("customer_id", cls)
        mdw.build_entailment_index()
        mdw.save(tmp_path / "wh")

        reopened = MetadataWarehouse.load(tmp_path / "wh")
        assert reopened.graph == mdw.graph
        assert len(reopened.search.search("customer")) == 1
        # index came back: entailment-only facts visible with the rulebase
        assert reopened.store.index("DWH_CURR", "OWLPRIME") is not None

    def test_history_survives_roundtrip(self, tmp_path):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Thing")
        mdw.facts.add_instance("t1", cls)
        historizer = Historizer(mdw.store)
        historizer.snapshot("2009.R1")
        mdw.facts.add_instance("t2", cls)
        mdw.save(tmp_path / "wh")

        reopened = MetadataWarehouse.load(tmp_path / "wh")
        as_of = reopened.as_of("2009.R1")
        assert len(as_of.graph) < len(reopened.graph)
        assert as_of.graph.frozen

    def test_as_of_unknown_version(self):
        mdw = MetadataWarehouse()
        with pytest.raises(KeyError):
            mdw.as_of("nope")

    def test_as_of_queries_the_snapshot(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Thing")
        mdw.facts.add_instance("early", cls)
        historizer = Historizer(mdw.store)
        historizer.snapshot("R1")
        mdw.facts.add_instance("late", cls)

        as_of = mdw.as_of("R1")
        assert len(as_of.search.search("early")) == 1
        assert len(as_of.search.search("late")) == 0
        assert len(mdw.search.search("late")) == 1

    def test_historizer_as_warehouse(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("Thing")
        mdw.facts.add_instance("x", cls)
        historizer = Historizer(mdw.store)
        historizer.snapshot("R1")
        old = historizer.as_warehouse("R1")
        assert len(old.search.search("x")) == 1


class TestLoadedIndexFreshness:
    def test_update_refreshes_loaded_index(self, tmp_path):
        """An index that arrived with a persisted store is refreshed by
        warehouse.update(), not silently left stale."""
        mdw = MetadataWarehouse()
        parent = mdw.schema.declare_class("Item")
        mdw.schema.declare_class("Column", parents=parent)
        mdw.build_entailment_index()
        mdw.save(tmp_path / "wh")

        reopened = MetadataWarehouse.load(tmp_path / "wh")
        reopened.update(
            'INSERT DATA { cs:late rdf:type dm:Column . cs:late dm:hasName "late" }'
        )
        rows = reopened.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Item }", rulebases=["OWLPRIME"]
        )
        assert len(rows) == 1  # derived through the refreshed index
