"""Unit tests for fact assertion, validation, statistics, and the facade."""

import pytest

from repro.core import (
    EdgeCategory,
    FactError,
    MetadataWarehouse,
    NodeKind,
    TERMS,
    World,
    collect_statistics,
    validate_graph,
)
from repro.rdf import Graph, IRI, Literal, Namespace, RDF, Triple

EX = Namespace("http://x/")


@pytest.fixture
def mdw():
    return MetadataWarehouse()


@pytest.fixture
def customer(mdw):
    return mdw.schema.declare_class("Customer", world=World.BUSINESS)


class TestInstances:
    def test_add_instance(self, mdw, customer):
        inst = mdw.facts.add_instance("customer_id", customer)
        assert mdw.facts.exists(inst)
        assert mdw.facts.name_of(inst) == "customer_id"

    def test_display_name(self, mdw, customer):
        inst = mdw.facts.add_instance("cust_001", customer, display_name="John Doe")
        assert mdw.facts.name_of(inst) == "John Doe"

    def test_undeclared_class_rejected(self, mdw):
        with pytest.raises(FactError):
            mdw.facts.add_instance("x", EX.Ghost)

    def test_no_class_rejected(self, mdw):
        with pytest.raises(FactError):
            mdw.facts.add_instance("x", [])

    def test_clash_with_class_name(self):
        # when the schema and instance namespaces coincide, an instance
        # cannot reuse a class's identifier
        from repro.core.warehouse import INSTANCE_NS

        mdw = MetadataWarehouse(schema_ns=INSTANCE_NS)
        cls = mdw.schema.declare_class("Customer")
        with pytest.raises(FactError):
            mdw.facts.add_instance("Customer", cls)

    def test_multiple_classes(self, mdw, customer):
        other = mdw.schema.declare_class("Partner")
        inst = mdw.facts.add_instance("dual", [customer, other])
        assert mdw.hierarchy.classes_of(inst, direct=True) == {customer, other}

    def test_add_type_later(self, mdw, customer):
        other = mdw.schema.declare_class("Partner")
        inst = mdw.facts.add_instance("x", customer)
        mdw.facts.add_type(inst, other)
        assert other in mdw.hierarchy.classes_of(inst, direct=True)

    def test_add_type_undeclared_rejected(self, mdw, customer):
        inst = mdw.facts.add_instance("x", customer)
        with pytest.raises(FactError):
            mdw.facts.add_type(inst, EX.Ghost)


class TestValues:
    def test_set_value(self, mdw, customer):
        prop = mdw.schema.declare_property("hasBalance", domain=customer)
        inst = mdw.facts.add_instance("acct", customer)
        mdw.facts.set_value(inst, prop, 100)
        assert mdw.facts.values_of(inst, prop) == [Literal(100)]

    def test_undeclared_property_rejected(self, mdw, customer):
        inst = mdw.facts.add_instance("x", customer)
        with pytest.raises(FactError):
            mdw.facts.set_value(inst, EX.ghost, "v")

    def test_domain_enforced(self, mdw, customer):
        other = mdw.schema.declare_class("Unrelated")
        prop = mdw.schema.declare_property("hasBalance", domain=customer)
        inst = mdw.facts.add_instance("x", other)
        with pytest.raises(FactError, match="domain"):
            mdw.facts.set_value(inst, prop, 1)

    def test_domain_satisfied_through_subclass(self, mdw, customer):
        sub = mdw.schema.declare_class("PrivateCustomer", parents=customer)
        prop = mdw.schema.declare_property("hasBalance", domain=customer)
        inst = mdw.facts.add_instance("x", sub)
        mdw.facts.set_value(inst, prop, 1)  # must not raise

    def test_no_domain_means_any(self, mdw, customer):
        prop = mdw.schema.declare_property("free")
        inst = mdw.facts.add_instance("x", customer)
        mdw.facts.set_value(inst, prop, "anything")

    def test_classless_subject_rejected(self, mdw, customer):
        prop = mdw.schema.declare_property("hasBalance", domain=customer)
        with pytest.raises(FactError, match="no class"):
            mdw.facts.set_value(EX.stranger, prop, 1)


class TestRelationships:
    def test_relate(self, mdw, customer):
        prop = mdw.schema.declare_property("knows")
        a = mdw.facts.add_instance("a", customer)
        b = mdw.facts.add_instance("b", customer)
        mdw.facts.relate(a, prop, b)
        assert (a, prop, b) in mdw.graph

    def test_relate_literal_rejected(self, mdw, customer):
        prop = mdw.schema.declare_property("knows")
        a = mdw.facts.add_instance("a", customer)
        with pytest.raises(FactError):
            mdw.facts.relate(a, prop, Literal("b"))

    def test_mapping_plain(self, mdw, customer):
        a = mdw.facts.add_instance("a", customer)
        b = mdw.facts.add_instance("b", customer)
        assert mdw.facts.add_mapping(a, b) is None
        assert mdw.facts.mappings_from(a) == [b]
        assert mdw.facts.mappings_to(b) == [a]

    def test_mapping_with_rule(self, mdw, customer):
        a = mdw.facts.add_instance("a", customer)
        b = mdw.facts.add_instance("b", customer)
        node = mdw.facts.add_mapping(a, b, rule="cast(customer_id as int)", condition="country = 'CH'")
        assert node is not None
        assert (node, TERMS.mapping_rule, Literal("cast(customer_id as int)")) in mdw.graph
        assert (node, TERMS.mapping_condition, Literal("country = 'CH'")) in mdw.graph

    def test_area_level_annotations(self, mdw, customer):
        inst = mdw.facts.add_instance("x", customer)
        mdw.facts.set_area(inst, TERMS.area_integration)
        mdw.facts.set_level(inst, TERMS.level_logical)
        assert mdw.facts.area_of(inst) == TERMS.area_integration
        assert mdw.facts.level_of(inst) == TERMS.level_logical


class TestValidation:
    def test_empty_graph_conformant(self):
        report = validate_graph(Graph())
        assert report.conformant
        assert report.conformance_ratio == 1.0

    def test_warehouse_built_graph_conformant(self, mdw, customer):
        prop = mdw.schema.declare_property("hasName", domain=customer)
        inst = mdw.facts.add_instance("c1", customer)
        mdw.facts.set_value(inst, prop, "X")
        report = mdw.validate()
        assert report.conformant, [i.describe() for i in report.issues]

    def test_violations_detected(self, customer, mdw):
        inst = mdw.facts.add_instance("x", customer)
        prop = mdw.schema.declare_property("p")
        # hand-inject a forbidden edge: instance -> property
        mdw.graph.add(Triple(inst, EX.weird, prop))
        report = mdw.validate()
        assert not report.conformant
        assert report.violation_count == 1
        assert report.issues[0].object_kind is NodeKind.PROPERTY
        assert "outside Table I" in report.issues[0].describe()

    def test_max_issues_caps_list_not_count(self, mdw, customer):
        inst = mdw.facts.add_instance("x", customer)
        prop = mdw.schema.declare_property("p")
        for i in range(5):
            mdw.graph.add(Triple(EX[f"i{i}"], EX.weird, prop))
        report = validate_graph(mdw.graph, max_issues=2)
        assert len(report.issues) == 2
        assert report.violation_count == 5

    def test_summary_text(self, mdw, customer):
        text = mdw.validate().summary()
        assert "violations" in text and "facts" in text


class TestStatistics:
    def test_counts(self, mdw, customer):
        prop = mdw.schema.declare_property("hasName", domain=customer)
        inst = mdw.facts.add_instance("c1", customer)
        mdw.facts.set_value(inst, prop, "X")
        stats = mdw.statistics()
        assert stats.edges == len(mdw.graph)
        assert stats.nodes == mdw.graph.node_count()
        assert stats.nodes_by_kind[NodeKind.CLASS] >= 1
        assert stats.nodes_by_kind[NodeKind.INSTANCE] >= 1
        assert stats.edges_by_category[EdgeCategory.FACTS] >= 2
        assert stats.violations == 0

    def test_density(self):
        stats = collect_statistics(Graph([Triple(EX.a, EX.p, EX.b)]))
        assert stats.density == 0.5  # 1 edge / 2 nodes

    def test_render_table_i(self, mdw, customer):
        mdw.facts.add_instance("c1", customer)
        text = mdw.statistics().render_table_i()
        assert "FACTS" in text
        assert "Edges (Class, Instance)" in text
        assert "HIERARCHIES" in text.upper() or "hierarchies" in text


class TestWarehouseFacade:
    def test_query_and_entailment_visibility(self, mdw, customer):
        sub = mdw.schema.declare_class("PrivateCustomer", parents=customer)
        mdw.facts.add_instance("c1", sub)
        mdw.build_entailment_index()
        with_rb = mdw.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Customer }", rulebases=["OWLPRIME"]
        )
        without = mdw.query("SELECT ?x WHERE { ?x rdf:type dm:Customer }")
        assert len(with_rb) == 1
        assert len(without) == 0

    def test_refresh_indexes(self, mdw, customer):
        sub = mdw.schema.declare_class("Sub", parents=customer)
        mdw.build_entailment_index()
        mdw.facts.add_instance("late", sub)
        refreshed = mdw.refresh_indexes()
        assert "OWLPRIME" in refreshed
        rows = mdw.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Customer }", rulebases=["OWLPRIME"]
        )
        assert len(rows) == 1

    def test_sem_sql_roundtrip(self, mdw, customer):
        inst = mdw.facts.add_instance("customer_id", customer)
        rows = mdw.sem_sql(
            """
            SELECT term FROM TABLE(SEM_MATCH(
                {?o dm:hasName ?term},
                SEM_MODELS('DWH_CURR'),
                SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'))))
            WHERE regexp_like(term, 'customer')
            """
        )
        assert rows.values("term") == ["customer_id"]

    def test_namespaces_prebound(self, mdw):
        assert mdw.namespaces.expand("dm:hasName").value.endswith("#hasName")
        assert mdw.namespaces.expand("dt:isMappedTo").value.endswith("#isMappedTo")

    def test_repr(self, mdw):
        assert "DWH_CURR" in repr(mdw)
