"""Unit tests for the Table I type system (node kinds, edge categories)."""

import pytest

from repro.core import EdgeCategory, NodeKind, classify_edge, node_kind
from repro.core.model import TableIViolation
from repro.rdf import Graph, IRI, Literal, Namespace, OWL, RDF, RDFS, Triple

EX = Namespace("http://x/")


@pytest.fixture
def graph():
    g = Graph()
    g.add(Triple(EX.Customer, RDF.type, OWL.Class))
    g.add(Triple(EX.Individual, RDF.type, OWL.Class))
    g.add(Triple(EX.hasName, RDF.type, RDF.Property))
    g.add(Triple(EX.john, RDF.type, EX.Customer))
    g.add(Triple(EX.jane, RDF.type, EX.Customer))
    return g


class TestNodeKind:
    def test_literal_is_value(self, graph):
        assert node_kind(graph, Literal("Zurich")) is NodeKind.VALUE

    def test_marked_class(self, graph):
        assert node_kind(graph, EX.Customer) is NodeKind.CLASS

    def test_rdfs_class_marker(self):
        g = Graph([Triple(EX.C, RDF.type, RDFS.Class)])
        assert node_kind(g, EX.C) is NodeKind.CLASS

    def test_marked_property(self, graph):
        assert node_kind(graph, EX.hasName) is NodeKind.PROPERTY

    def test_owl_object_property_marker(self):
        g = Graph([Triple(EX.p, RDF.type, OWL.ObjectProperty)])
        assert node_kind(g, EX.p) is NodeKind.PROPERTY

    def test_unmarked_is_instance(self, graph):
        assert node_kind(graph, EX.john) is NodeKind.INSTANCE
        assert node_kind(graph, EX.unseen) is NodeKind.INSTANCE

    def test_vocabulary_terms_are_classes(self, graph):
        assert node_kind(graph, OWL.Class) is NodeKind.CLASS
        assert node_kind(graph, RDF.Property) is NodeKind.CLASS


class TestClassifyEdge:
    def test_instance_instance_fact(self, graph):
        c = classify_edge(graph, Triple(EX.john, EX.knows, EX.jane))
        assert c.category is EdgeCategory.FACTS
        assert c.cell == "Edges (Instance, Instance)"

    def test_instance_value_fact(self, graph):
        c = classify_edge(graph, Triple(EX.john, EX.hasName, Literal("John")))
        assert c.category is EdgeCategory.FACTS
        assert c.cell == "Edges (Instance, Value)"

    def test_rdf_type_fact(self, graph):
        c = classify_edge(graph, Triple(EX.john, RDF.type, EX.Customer))
        assert c.category is EdgeCategory.FACTS
        assert c.cell == "Edges (Class, Instance)"

    def test_class_marker_fact(self, graph):
        c = classify_edge(graph, Triple(EX.Customer, RDF.type, OWL.Class))
        assert c.category is EdgeCategory.FACTS

    def test_property_value_fact(self, graph):
        c = classify_edge(graph, Triple(EX.hasName, RDFS.comment, Literal("a name")))
        assert c.category is EdgeCategory.FACTS
        assert c.cell == "Edges (Value, Property)"

    def test_domain_is_schema(self, graph):
        c = classify_edge(graph, Triple(EX.hasName, RDFS.domain, EX.Customer))
        assert c.category is EdgeCategory.SCHEMA
        assert c.cell == "Edges (Class, Property)"

    def test_range_is_schema(self, graph):
        c = classify_edge(graph, Triple(EX.hasName, RDFS.range, EX.Individual))
        assert c.category is EdgeCategory.SCHEMA

    def test_class_label_is_schema(self, graph):
        c = classify_edge(graph, Triple(EX.Customer, RDFS.label, Literal("Customer")))
        assert c.category is EdgeCategory.SCHEMA
        assert c.cell == "Edges (Class, Value)"

    def test_subclass_is_hierarchy(self, graph):
        c = classify_edge(graph, Triple(EX.Individual, RDFS.subClassOf, EX.Customer))
        assert c.category is EdgeCategory.HIERARCHY
        assert c.cell == "Edges (Class, Class)"

    def test_subproperty_is_hierarchy(self, graph):
        c = classify_edge(graph, Triple(EX.hasName, RDFS.subPropertyOf, EX.hasLabel))
        assert c.category is EdgeCategory.HIERARCHY
        assert c.cell == "Edges (Property, Property)"

    def test_subclass_marker_wins_over_kinds(self, graph):
        # even between unmarked nodes, rdfs:subClassOf is a hierarchy edge
        c = classify_edge(graph, Triple(EX.unknown1, RDFS.subClassOf, EX.unknown2))
        assert c.category is EdgeCategory.HIERARCHY

    def test_instance_to_property_forbidden(self, graph):
        with pytest.raises(TableIViolation) as exc:
            classify_edge(graph, Triple(EX.john, EX.weird, EX.hasName))
        assert exc.value.subject_kind is NodeKind.INSTANCE
        assert exc.value.object_kind is NodeKind.PROPERTY

    def test_instance_to_class_non_type_forbidden(self, graph):
        # relating an instance to a class through an arbitrary predicate
        # is exactly the unstructured mess Table I forbids
        with pytest.raises(TableIViolation):
            classify_edge(graph, Triple(EX.Customer, EX.weird, EX.john))

    def test_explicit_kinds_skip_inference(self, graph):
        c = classify_edge(
            graph,
            Triple(EX.a, EX.p, EX.b),
            subject_kind=NodeKind.INSTANCE,
            object_kind=NodeKind.INSTANCE,
        )
        assert c.category is EdgeCategory.FACTS
