"""Unit tests for schema declarations and hierarchy navigation."""

import pytest

from repro.core import MetadataWarehouse, SchemaError, World
from repro.core.schema import _to_identifier
from repro.rdf import IRI, Literal, RDFS


@pytest.fixture
def mdw():
    return MetadataWarehouse()


class TestIdentifiers:
    def test_spaces_to_underscores(self):
        assert _to_identifier("Source File Column") == "Source_File_Column"

    def test_specials_collapsed(self):
        assert _to_identifier("a--b!!c") == "a_b_c"

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            _to_identifier("!!!")


class TestDeclareClass:
    def test_basic(self, mdw):
        cls = mdw.schema.declare_class("Customer")
        assert mdw.schema.is_class(cls)
        assert mdw.schema.label(cls) == "Customer"

    def test_world_recorded(self, mdw):
        cls = mdw.schema.declare_class("Customer", world=World.BUSINESS)
        assert mdw.schema.world(cls) is World.BUSINESS
        tech = mdw.schema.declare_class("Table")
        assert mdw.schema.world(tech) is World.TECHNICAL

    def test_display_name_with_spaces(self, mdw):
        cls = mdw.schema.declare_class("Source File Column")
        assert cls.local_name == "Source_File_Column"
        assert mdw.schema.label(cls) == "Source File Column"

    def test_parents(self, mdw):
        party = mdw.schema.declare_class("Party")
        individual = mdw.schema.declare_class("Individual", parents=party)
        assert mdw.hierarchy.is_subclass_of(individual, party)

    def test_parent_list(self, mdw):
        a = mdw.schema.declare_class("A")
        b = mdw.schema.declare_class("B")
        c = mdw.schema.declare_class("C", parents=[a, b])
        assert mdw.hierarchy.superclasses(c) == {a, b}

    def test_redeclare_extends(self, mdw):
        mdw.schema.declare_class("Customer")
        parent = mdw.schema.declare_class("Party")
        again = mdw.schema.declare_class("Customer", parents=parent)
        assert mdw.hierarchy.is_subclass_of(again, parent)

    def test_subject_area(self, mdw):
        cls = mdw.schema.declare_class("Interface", subject_area="Data Flows")
        assert mdw.validate().conformant

    def test_undeclared_parent_becomes_class(self, mdw):
        child = mdw.schema.declare_class("Child")
        ghost = mdw.schema.namespace.Ghost
        mdw.schema.add_subclass(child, ghost)
        assert mdw.schema.is_class(ghost)

    def test_self_parent_rejected(self, mdw):
        cls = mdw.schema.declare_class("C")
        with pytest.raises(SchemaError):
            mdw.schema.add_subclass(cls, cls)

    def test_class_by_label(self, mdw):
        cls = mdw.schema.declare_class("Source Column")
        assert mdw.schema.class_by_label("Source Column") == cls
        assert mdw.schema.class_by_label("Nope") is None

    def test_classes_sorted(self, mdw):
        mdw.schema.declare_class("Zeta")
        mdw.schema.declare_class("Alpha")
        names = [c.local_name for c in mdw.schema.classes()]
        assert names == sorted(names)


class TestDeclareProperty:
    def test_basic(self, mdw):
        prop = mdw.schema.declare_property("hasName")
        assert mdw.schema.is_property(prop)

    def test_domain(self, mdw):
        cls = mdw.schema.declare_class("Customer")
        prop = mdw.schema.declare_property("hasName", domain=cls)
        assert mdw.schema.domain_of(prop) == [cls]
        assert mdw.schema.properties_of(cls) == [prop]

    def test_multiple_domains(self, mdw):
        a = mdw.schema.declare_class("A")
        b = mdw.schema.declare_class("B")
        prop = mdw.schema.declare_property("p", domain=[a, b])
        assert mdw.schema.domain_of(prop) == sorted([a, b], key=lambda c: c.value)

    def test_subproperty(self, mdw):
        parent = mdw.schema.declare_property("hasName")
        child = mdw.schema.declare_property("hasFirstName", parents=parent)
        assert mdw.hierarchy.is_subproperty_of(child, parent)

    def test_name_clash_with_class_rejected(self, mdw):
        mdw.schema.declare_class("Customer")
        with pytest.raises(SchemaError):
            mdw.schema.declare_property("Customer")

    def test_range(self, mdw):
        target = mdw.schema.declare_class("Account")
        prop = mdw.schema.declare_property("owns", range_=target)
        assert (prop, RDFS.range, target) in mdw.graph

    def test_self_superproperty_rejected(self, mdw):
        p = mdw.schema.declare_property("p")
        with pytest.raises(SchemaError):
            mdw.schema.add_subproperty(p, p)


class TestHierarchy:
    @pytest.fixture
    def classes(self, mdw):
        item = mdw.schema.declare_class("Item")
        attr = mdw.schema.declare_class("Attribute", parents=item)
        col = mdw.schema.declare_class("Column", parents=attr)
        src = mdw.schema.declare_class("SourceColumn", parents=col)
        other = mdw.schema.declare_class("Other", parents=item)
        return dict(item=item, attr=attr, col=col, src=src, other=other)

    def test_superclasses_transitive(self, mdw, classes):
        assert mdw.hierarchy.superclasses(classes["src"]) == {
            classes["col"],
            classes["attr"],
            classes["item"],
        }

    def test_subclasses_transitive(self, mdw, classes):
        assert mdw.hierarchy.subclasses(classes["item"]) == {
            classes["attr"],
            classes["col"],
            classes["src"],
            classes["other"],
        }

    def test_include_self(self, mdw, classes):
        assert classes["src"] in mdw.hierarchy.superclasses(classes["src"], include_self=True)
        assert classes["src"] not in mdw.hierarchy.superclasses(classes["src"])

    def test_direct_only(self, mdw, classes):
        assert mdw.hierarchy.direct_superclasses(classes["src"]) == [classes["col"]]
        assert mdw.hierarchy.direct_subclasses(classes["item"]) == sorted(
            [classes["attr"], classes["other"]], key=lambda c: c.value
        )

    def test_is_subclass_of_reflexive(self, mdw, classes):
        assert mdw.hierarchy.is_subclass_of(classes["src"], classes["src"])
        assert mdw.hierarchy.is_subclass_of(classes["src"], classes["item"])
        assert not mdw.hierarchy.is_subclass_of(classes["item"], classes["src"])

    def test_roots(self, mdw, classes):
        assert mdw.hierarchy.class_roots() == [classes["item"]]

    def test_depth(self, mdw, classes):
        assert mdw.hierarchy.depth(classes["item"]) == 0
        assert mdw.hierarchy.depth(classes["src"]) == 3

    def test_cycle_tolerated(self, mdw):
        a = mdw.schema.declare_class("CycleA")
        b = mdw.schema.declare_class("CycleB")
        mdw.schema.add_subclass(a, b)
        mdw.schema.add_subclass(b, a)
        assert a in mdw.hierarchy.superclasses(a)  # reachable through the cycle
        assert mdw.hierarchy.depth(a) >= 1

    def test_least_common_subsumers(self, mdw, classes):
        lcs = mdw.hierarchy.least_common_subsumers(classes["src"], classes["other"])
        assert lcs == [classes["item"]]
        lcs2 = mdw.hierarchy.least_common_subsumers(classes["src"], classes["col"])
        assert lcs2 == [classes["col"]]

    def test_instances_of_through_hierarchy(self, mdw, classes):
        inst = mdw.facts.add_instance("x", classes["src"])
        assert inst in mdw.hierarchy.instances_of(classes["item"])
        assert inst not in mdw.hierarchy.instances_of(classes["item"], direct=True)

    def test_classes_of_multiple_inheritance(self, mdw, classes):
        inst = mdw.facts.add_instance("multi", [classes["src"], classes["other"]])
        found = mdw.hierarchy.classes_of(inst)
        assert classes["item"] in found
        assert classes["other"] in found
        assert mdw.hierarchy.classes_of(inst, direct=True) == {
            classes["src"],
            classes["other"],
        }
