"""Delta-aware invalidation of the hierarchy manager's memo cache.

An incremental release load should leave unrelated cached reach sets in
place; these tests observe the cache directly (white box) to pin the
eviction policy: fact-level changes evict nothing, ``rdf:type`` changes
evict only the touched instance's expansion, hierarchy-edge changes
evict the reach sets over that predicate.
"""

from repro.core.hierarchy import HierarchyManager
from repro.rdf import Graph, Namespace, RDF, RDFS, Literal, Triple

EX = Namespace("http://x/")


def build():
    g = Graph()
    g.add(Triple(EX.Column, RDFS.subClassOf, EX.Attribute))
    g.add(Triple(EX.Attribute, RDFS.subClassOf, EX.Item))
    g.add(Triple(EX.narrow, RDFS.subPropertyOf, EX.wide))
    g.add(Triple(EX.c1, RDF.type, EX.Column))
    g.add(Triple(EX.c2, RDF.type, EX.Column))
    return g, HierarchyManager(g)


def warm(h):
    h.subclasses(EX.Item)
    h.superclasses(EX.Column)
    h.subproperties(EX.wide)
    h.classes_of(EX.c1)
    h.classes_of(EX.c2)


class TestDeltaInvalidation:
    def test_fact_level_change_evicts_nothing(self):
        g, h = build()
        warm(h)
        cached = dict(h._cache)
        g.add(Triple(EX.c1, EX.hasName, Literal("customer_id")))
        h.subclasses(EX.Item)  # triggers the flush
        assert h._cache == cached

    def test_retype_evicts_only_that_instance(self):
        g, h = build()
        warm(h)
        g.add(Triple(EX.c1, RDF.type, EX.Item))
        assert h.classes_of(EX.c1) == {EX.Column, EX.Attribute, EX.Item}
        # c2's expansion and every reach set survived the flush
        assert ("classes_of", EX.c2) in h._cache
        assert ("reach", EX.Item, RDFS.subClassOf, False) in h._cache

    def test_subclass_edge_evicts_reach_and_expansions(self):
        g, h = build()
        warm(h)
        g.add(Triple(EX.Item, RDFS.subClassOf, EX.Root))
        assert EX.Root in h.superclasses(EX.Column)
        assert h.classes_of(EX.c1) == {EX.Column, EX.Attribute, EX.Item, EX.Root}
        # the property hierarchy is over a different predicate: untouched
        assert ("reach", EX.wide, RDFS.subPropertyOf, False) in h._cache

    def test_subproperty_edge_leaves_class_reach_cached(self):
        g, h = build()
        warm(h)
        g.add(Triple(EX.narrower, RDFS.subPropertyOf, EX.narrow))
        assert h.subproperties(EX.wide) == {EX.narrow, EX.narrower}
        assert ("reach", EX.Item, RDFS.subClassOf, False) in h._cache
        assert ("classes_of", EX.c1) in h._cache

    def test_overflow_falls_back_to_full_clear(self):
        import repro.core.hierarchy as hierarchy_module

        g, h = build()
        warm(h)
        original = hierarchy_module._DIRTY_LIMIT
        hierarchy_module._DIRTY_LIMIT = 3
        try:
            for i in range(5):
                g.add(Triple(EX.term(f"i{i}"), RDF.type, EX.Column))
            assert h._dirty_all
            h.subclasses(EX.Item)
            assert not h._dirty_all  # flushed via wholesale clear
        finally:
            hierarchy_module._DIRTY_LIMIT = original

    def test_untracked_graph_still_correct(self):
        class Duck:
            """Minimal graph double without subscribe()."""

            def __init__(self, graph):
                self._g = graph

            def __getattr__(self, name):
                if name == "subscribe":
                    raise AttributeError(name)
                return getattr(self._g, name)

        g = Graph()
        g.add(Triple(EX.Column, RDFS.subClassOf, EX.Item))
        g.add(Triple(EX.c1, RDF.type, EX.Column))
        h = HierarchyManager(Duck(g))
        assert h.classes_of(EX.c1) == {EX.Column, EX.Item}
        g.add(Triple(EX.Item, RDFS.subClassOf, EX.Root))
        assert h.classes_of(EX.c1) == {EX.Column, EX.Item, EX.Root}

    def test_close_detaches_listener(self):
        g, h = build()
        warm(h)
        h.close()
        g.add(Triple(EX.c1, RDF.type, EX.Item))
        # untracked now: generation change wipes the cache wholesale
        assert h.classes_of(EX.c1) == {EX.Column, EX.Attribute, EX.Item}
