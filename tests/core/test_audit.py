"""Unit tests for graph change notification and the audit journal."""

import pytest

from repro.core import AuditJournal, MetadataWarehouse
from repro.etl import EtlOrchestrator
from repro.rdf import Graph, IRI, Literal, Namespace, Triple

EX = Namespace("http://x/")


def t(i):
    return Triple(EX[f"s{i}"], EX.p, Literal(i))


class TestGraphListeners:
    def test_add_notifies(self):
        g = Graph()
        events = []
        g.subscribe(lambda action, triple: events.append((action, triple)))
        g.add(t(1))
        assert events == [("add", t(1))]

    def test_duplicate_add_silent(self):
        g = Graph([t(1)])
        events = []
        g.subscribe(lambda a, tr: events.append(a))
        g.add(t(1))
        assert events == []

    def test_remove_notifies(self):
        g = Graph([t(1)])
        events = []
        g.subscribe(lambda a, tr: events.append((a, tr)))
        g.remove(t(1))
        assert events == [("remove", t(1))]

    def test_missed_remove_silent(self):
        g = Graph()
        events = []
        g.subscribe(lambda a, tr: events.append(a))
        g.discard(t(1))
        assert events == []

    def test_clear_notifies_each(self):
        g = Graph([t(1), t(2)])
        events = []
        g.subscribe(lambda a, tr: events.append(a))
        g.clear()
        assert events == ["remove", "remove"]
        assert len(g) == 0

    def test_unsubscribe(self):
        g = Graph()
        events = []
        listener = lambda a, tr: events.append(a)
        g.subscribe(listener)
        g.unsubscribe(listener)
        g.add(t(1))
        assert events == []

    def test_multiple_listeners(self):
        g = Graph()
        a_events, b_events = [], []
        g.subscribe(lambda a, tr: a_events.append(a))
        g.subscribe(lambda a, tr: b_events.append(a))
        g.add(t(1))
        assert a_events == ["add"] and b_events == ["add"]


class TestAuditJournal:
    def test_records_manager_writes(self):
        mdw = MetadataWarehouse()
        journal = mdw.enable_audit()
        cls = mdw.schema.declare_class("Column")
        mdw.facts.add_instance("c1", cls)
        assert journal.total_changes == len(mdw.graph)
        assert all(e.action == "add" for e in journal.entries())

    def test_sequence_monotone(self):
        g = Graph()
        journal = AuditJournal(g)
        for i in range(5):
            g.add(t(i))
        sequences = [e.sequence for e in journal.entries()]
        assert sequences == [1, 2, 3, 4, 5]

    def test_epochs_attribute_changes(self):
        mdw = MetadataWarehouse()
        journal = mdw.enable_audit()
        cls = mdw.schema.declare_class("Column")
        journal.begin_epoch("release 2026.R2")
        mdw.facts.add_instance("late", cls)
        summary = journal.epoch_summary()
        assert "initial" in summary and "release 2026.R2" in summary
        assert summary["release 2026.R2"]["add"] == 2  # type + name

    def test_entries_filtering(self):
        g = Graph()
        journal = AuditJournal(g)
        g.add(t(1))
        journal.begin_epoch("second")
        g.add(t(2))
        g.remove(t(1))
        assert len(journal.entries(action="remove")) == 1
        assert len(journal.entries(epoch="second")) == 2
        assert len(journal.entries(since=2)) == 1

    def test_capacity_bounds_entries_not_counters(self):
        g = Graph()
        journal = AuditJournal(g, capacity=3)
        for i in range(10):
            g.add(t(i))
        assert len(journal) == 3
        assert journal.total_changes == 10
        assert journal.tail(2)[-1].sequence == 10

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AuditJournal(Graph(), capacity=0)

    def test_bad_epoch(self):
        journal = AuditJournal(Graph())
        with pytest.raises(ValueError):
            journal.begin_epoch("")

    def test_hottest_predicates(self):
        g = Graph()
        journal = AuditJournal(g)
        for i in range(3):
            g.add(Triple(EX[f"s{i}"], EX.hot, Literal(i)))
        g.add(Triple(EX.s9, EX.cold, Literal(9)))
        top = journal.hottest_predicates(1)
        assert top == [(EX.hot.value, 3)]

    def test_journal_sees_bulk_load(self):
        mdw = MetadataWarehouse()
        journal = mdw.enable_audit()
        journal.begin_epoch("feed load")
        feed = '<metadata source="f"><class name="T"/><instance name="x" class="T"/></metadata>'
        EtlOrchestrator(mdw).run([feed])
        assert journal.epoch_summary()["feed load"]["add"] > 0

    def test_journal_sees_retirement(self):
        mdw = MetadataWarehouse()
        cls = mdw.schema.declare_class("T")
        item = mdw.facts.add_instance("x", cls)
        journal = mdw.enable_audit()
        mdw.facts.retire_instance(item, force=True)
        assert journal.entries(action="remove")

    def test_close_detaches(self):
        g = Graph()
        journal = AuditJournal(g)
        journal.close()
        g.add(t(1))
        assert journal.total_changes == 0

    def test_enable_audit_idempotent(self):
        mdw = MetadataWarehouse()
        assert mdw.enable_audit() is mdw.enable_audit()
        assert mdw.audit is not None

    def test_report_text(self):
        g = Graph()
        journal = AuditJournal(g)
        g.add(t(1))
        text = journal.report()
        assert "1 change(s)" in text and "initial" in text

    def test_describe_entry(self):
        g = Graph()
        journal = AuditJournal(g)
        g.add(t(1))
        assert journal.tail(1)[0].describe().startswith("#1 [initial] +")
