"""Release application (``EtlOrchestrator.apply_release``).

A release describes the *complete* desired model state; these tests pin
the mode resolution, the O(delta) incremental path's bit-identity with a
full rebuild, convergence under re-application (the crash-recovery
story), and the historizer hookup.
"""

import random

import pytest

from repro.core.warehouse import MetadataWarehouse
from repro.etl import EtlOrchestrator, ReleaseLoadResult
from repro.history import Historizer
from repro.rdf import Graph, RDF, Triple
from repro.rdf.ntriples import serialize_ntriples
from repro.resilience.chaos import make_release_feeds


def fresh_warehouse(feeds=()):
    mdw = MetadataWarehouse()
    mdw.build_entailment_index("OWLPRIME")
    if feeds:
        EtlOrchestrator(mdw).apply_release(feeds, mode="full")
    return mdw


def fingerprint(mdw):
    return {
        "model": serialize_ntriples(mdw.graph),
        "index": serialize_ntriples(mdw.store.index(mdw.model_name, "OWLPRIME")),
    }


class TestModeResolution:
    def test_auto_is_full_on_empty_model(self):
        mdw = MetadataWarehouse()
        feeds = make_release_feeds(random.Random(1))
        result = EtlOrchestrator(mdw).apply_release(feeds)
        assert result.mode == "full"
        assert result.ok and result.added == len(mdw.graph)

    def test_auto_is_incremental_on_loaded_model(self):
        feeds = make_release_feeds(random.Random(1))
        mdw = fresh_warehouse(feeds)
        result = EtlOrchestrator(mdw).apply_release(feeds)
        assert result.mode == "incremental"
        assert result.ok

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            EtlOrchestrator(MetadataWarehouse()).apply_release((), mode="sideways")

    def test_desired_graph_excludes_staged_sources(self):
        mdw = MetadataWarehouse()
        with pytest.raises(ValueError, match="mutually exclusive"):
            EtlOrchestrator(mdw).apply_release(
                ["<metadata source='x'/>"], desired=Graph()
            )


class TestIncrementalEquivalence:
    def test_incremental_matches_full_rebuild(self):
        rng = random.Random(7)
        release1 = make_release_feeds(rng)
        # overlapping successor: shared head, one document replaced —
        # the delta has both additions and retractions
        release2 = release1[:-1] + make_release_feeds(rng, documents=1)

        full = fresh_warehouse(release1)
        EtlOrchestrator(full).apply_release(release2, mode="full")

        incremental = fresh_warehouse(release1)
        result = EtlOrchestrator(incremental).apply_release(
            release2, mode="incremental"
        )
        assert result.added > 0 and result.removed > 0
        assert "OWLPRIME" in " ".join(result.refreshed_rulebases)
        assert fingerprint(incremental) == fingerprint(full)

    def test_reapplication_converges(self):
        # the crash-recovery contract: applying the same release again
        # (e.g. after a crash mid-apply) is an effective no-op
        rng = random.Random(11)
        release1 = make_release_feeds(rng)
        release2 = release1[:-1] + make_release_feeds(rng, documents=1)
        mdw = fresh_warehouse(release1)
        orchestrator = EtlOrchestrator(mdw)
        orchestrator.apply_release(release2, mode="incremental")
        state = fingerprint(mdw)

        again = orchestrator.apply_release(release2, mode="incremental")
        assert (again.added, again.removed) == (0, 0)
        assert again.refreshed_rulebases == []
        assert fingerprint(mdw) == state

    def test_noop_release_changes_nothing(self):
        feeds = make_release_feeds(random.Random(3))
        mdw = fresh_warehouse(feeds)
        generation = mdw.graph.generation
        result = EtlOrchestrator(mdw).apply_release(feeds, mode="incremental")
        assert (result.added, result.removed) == (0, 0)
        assert mdw.graph.generation == generation  # nothing to republish

    def test_graph_level_desired_path(self):
        feeds = make_release_feeds(random.Random(5))
        mdw = fresh_warehouse(feeds)
        desired = mdw.graph.copy(name="desired")
        victim = next(iter(desired.triples(None, RDF.type, None)))
        desired.discard(victim)
        result = EtlOrchestrator(mdw, validate=False).apply_release(
            desired=desired, mode="incremental"
        )
        assert isinstance(result, ReleaseLoadResult)
        assert result.ok and result.bulk_report is None
        assert (result.added, result.removed) == (0, 1)
        assert victim not in mdw.graph


class TestHistorizerHookup:
    def test_version_snapshot_after_apply(self):
        rng = random.Random(9)
        release1 = make_release_feeds(rng)
        release2 = release1[:-1] + make_release_feeds(rng, documents=1)
        mdw = MetadataWarehouse()
        historizer = Historizer(mdw.store, model=mdw.model_name)
        orchestrator = EtlOrchestrator(mdw)
        r1 = orchestrator.apply_release(
            release1, mode="full", version="2026.R1", historizer=historizer
        )
        r2 = orchestrator.apply_release(
            release2, mode="incremental", version="2026.R2", historizer=historizer
        )
        assert r1.version == "2026.R1" and r2.version == "2026.R2"
        assert historizer.version_names() == ["2026.R1", "2026.R2"]
        # frozen captures, and the diff between them is exactly the delta
        diff = historizer.diff("2026.R1", "2026.R2")
        assert len(diff.added) == r2.added and len(diff.removed) == r2.removed

    def test_restore_is_delta_driven(self):
        feeds = make_release_feeds(random.Random(13))
        mdw = fresh_warehouse(feeds)
        historizer = Historizer(mdw.store, model=mdw.model_name)
        historizer.snapshot("2026.R1")
        before = serialize_ntriples(mdw.graph)

        extra = Triple(
            mdw.facts.namespace.term("late_arrival"),
            RDF.type,
            mdw.schema.namespace.term("Application"),
        )
        mdw.graph.add(extra)
        generation = mdw.graph.generation
        historizer.restore("2026.R1")
        assert serialize_ntriples(mdw.graph) == before
        # exactly one triple differed, so exactly one change event fired
        assert mdw.graph.generation == generation + 1
