"""Unit tests for the Figure 4 pipeline: XML parsing, transformation,
ontology round-trip, thesaurus, orchestration."""

import pytest

from repro.core import MetadataWarehouse, TERMS, World
from repro.etl import (
    EtlOrchestrator,
    SynonymThesaurus,
    XmlSourceError,
    export_ontology,
    import_ontology,
    load_thesaurus_ntriples,
    parse_metadata_xml,
)
from repro.etl.transformer import XmlToRdfTransformer
from repro.rdf import Graph, Literal, RDF, RDFS, StagingTable, Triple

FEED = """
<metadata source="app-registry">
  <class name="Application" world="technical"/>
  <class name="Attribute"/>
  <class name="Source Column" parent="Attribute" label="Source Column"/>
  <property name="hasVersion" domain="Application"/>
  <property name="hasFirstName" world="business"/>
  <instance name="payments_app" class="Application" area="integration" level="physical">
    <value property="hasVersion">4.2</value>
    <link property="feeds" target="dwh_core"/>
    <mapping target="core_payments" rule="daily load" condition="country='CH'"/>
  </instance>
  <instance name="dwh_core" class="Application"/>
  <instance name="core_payments" class="Source Column"/>
</metadata>
"""


class TestXmlParsing:
    def test_parse_counts(self):
        doc = parse_metadata_xml(FEED)
        assert doc.source == "app-registry"
        assert len(doc.classes) == 3
        assert len(doc.properties) == 2
        assert len(doc.instances) == 3
        assert doc.item_count == 8

    def test_class_attributes(self):
        doc = parse_metadata_xml(FEED)
        source_column = doc.classes[2]
        assert source_column.name == "Source Column"
        assert source_column.parents == ["Attribute"]

    def test_instance_payload(self):
        doc = parse_metadata_xml(FEED)
        inst = doc.instances[0]
        assert inst.values == [("hasVersion", "4.2")]
        assert inst.links == [("feeds", "dwh_core")]
        assert inst.mappings == [("core_payments", "daily load", "country='CH'")]
        assert inst.area == "integration"
        assert inst.level == "physical"

    def test_not_xml(self):
        with pytest.raises(XmlSourceError, match="well-formed"):
            parse_metadata_xml("{json: true}")

    def test_wrong_root(self):
        with pytest.raises(XmlSourceError, match="root element"):
            parse_metadata_xml("<data/>")

    def test_unknown_element(self):
        with pytest.raises(XmlSourceError, match="unknown element"):
            parse_metadata_xml("<metadata><widget/></metadata>")

    def test_missing_required_attribute(self):
        with pytest.raises(XmlSourceError, match="requires"):
            parse_metadata_xml("<metadata><class/></metadata>")

    def test_multi_class_instance(self):
        doc = parse_metadata_xml(
            '<metadata><instance name="x" class="A, B"/></metadata>'
        )
        assert doc.instances[0].classes == ["A", "B"]


class TestTransformer:
    def test_triples_conform(self):
        doc = parse_metadata_xml(FEED)
        triples = XmlToRdfTransformer().transform(doc)
        graph = Graph(triples)
        from repro.core import validate_graph

        report = validate_graph(graph)
        assert report.conformant, [i.describe() for i in report.issues]

    def test_area_level_annotations(self):
        doc = parse_metadata_xml(FEED)
        transformer = XmlToRdfTransformer()
        graph = Graph(transformer.transform(doc))
        app = transformer.instance_iri("payments_app")
        assert graph.value(app, TERMS.in_area, None) == TERMS.area_integration
        assert graph.value(app, TERMS.at_level, None) == TERMS.level_physical

    def test_unknown_area_rejected(self):
        doc = parse_metadata_xml('<metadata><instance name="x" class="A" area="moon"/></metadata>')
        with pytest.raises(ValueError, match="unknown area"):
            XmlToRdfTransformer().transform(doc)

    def test_mapping_reification(self):
        doc = parse_metadata_xml(FEED)
        transformer = XmlToRdfTransformer()
        graph = Graph(transformer.transform(doc))
        app = transformer.instance_iri("payments_app")
        target = transformer.instance_iri("core_payments")
        assert (app, TERMS.is_mapped_to, target) in graph
        mapping = graph.value(app, TERMS.has_mapping, None)
        assert mapping is not None
        assert graph.value(mapping, TERMS.mapping_rule, None) == Literal("daily load")

    def test_stage_records_source(self):
        doc = parse_metadata_xml(FEED)
        staging = StagingTable()
        n = XmlToRdfTransformer().stage(doc, staging)
        assert n == len(staging) > 0
        assert next(iter(staging)).source == "app-registry"


class TestOntologyRoundtrip:
    def make_schema(self):
        mdw = MetadataWarehouse()
        item = mdw.schema.declare_class("Item", world=World.BUSINESS)
        attr = mdw.schema.declare_class("Attribute", parents=item)
        mdw.schema.declare_class("Source Column", parents=attr, subject_area="DWH")
        mdw.schema.declare_property("hasName", domain=attr)
        return mdw

    def test_export_contains_declarations(self):
        text = export_ontology(self.make_schema().graph)
        assert "owl:Class" in text
        assert "rdfs:subClassOf" in text
        assert "rdfs:domain" in text

    def test_export_excludes_instances(self):
        mdw = self.make_schema()
        cls = mdw.schema.class_by_label("Attribute")
        mdw.facts.add_instance("secret_instance", cls)
        text = export_ontology(mdw.graph)
        assert "secret_instance" not in text

    def test_roundtrip_preserves_schema(self):
        mdw = self.make_schema()
        text = export_ontology(mdw.graph)
        reimported = import_ontology(text)
        assert export_ontology(reimported) == text

    def test_import_stages(self):
        mdw = self.make_schema()
        staging = StagingTable()
        graph = import_ontology(export_ontology(mdw.graph), staging=staging)
        assert len(staging) == len(graph)


class TestThesaurus:
    def test_symmetric(self):
        th = SynonymThesaurus()
        th.add_synonym("Customer", "client")
        assert th.synonyms("client") == {"customer"}
        assert th.synonyms("customer") == {"client"}

    def test_not_transitive(self):
        th = SynonymThesaurus()
        th.add_synonyms([("a", "b"), ("b", "c")])
        assert "c" not in th.synonyms("a")

    def test_expand_original_first(self):
        th = SynonymThesaurus()
        th.add_synonym("customer", "client")
        assert th.expand("CUSTOMER") == ["customer", "client"]

    def test_self_pair_ignored(self):
        th = SynonymThesaurus()
        th.add_synonym("x", "x")
        assert len(th) == 0

    def test_len_counts_pairs(self):
        th = SynonymThesaurus()
        th.add_synonym("a", "b")
        th.add_synonym("a", "c")
        assert len(th) == 2

    def test_materialize_and_rebuild(self):
        th = SynonymThesaurus()
        th.add_synonym("customer", "client")
        th.add_homonym("bank", "river bank")
        g = Graph()
        added = th.materialize(g)
        assert added == 4  # two pairs x two value edges
        rebuilt = SynonymThesaurus.from_graph(g)
        assert rebuilt.synonyms("customer") == {"client"}
        assert rebuilt.homonyms("bank") == {"river bank"}

    def test_materialized_graph_conformant(self):
        th = SynonymThesaurus()
        th.add_synonym("customer", "client")
        g = Graph()
        th.materialize(g)
        from repro.core import validate_graph

        assert validate_graph(g).conformant

    def test_load_ntriples(self):
        text = (
            '<http://dbpedia.org/resource/Customer> <http://dbpedia.org/ontology/wikiPageRedirects> <http://dbpedia.org/resource/Client> .\n'
            '<http://dbpedia.org/resource/Bank> <http://dbpedia.org/ontology/disambiguates> "River bank" .\n'
        )
        th = load_thesaurus_ntriples(text)
        assert th.synonyms("customer") == {"client"}
        assert th.homonyms("bank") == {"river bank"}


class TestOrchestrator:
    def test_full_run(self):
        mdw = MetadataWarehouse()
        result = EtlOrchestrator(mdw).run([FEED])
        assert result.ok
        assert result.documents == 1
        assert result.bulk_report.inserted > 0
        assert result.validation.conformant
        assert "document" in result.summary()

    def test_ontology_and_facts_share_staging(self):
        authoring = MetadataWarehouse()
        authoring.schema.declare_class("Application")
        ontology = export_ontology(authoring.graph)

        mdw = MetadataWarehouse()
        result = EtlOrchestrator(mdw).run([FEED], ontology_text=ontology)
        assert result.ok
        assert result.staged_rows > 0

    def test_index_refresh_after_load(self):
        mdw = MetadataWarehouse()
        mdw.build_entailment_index()
        result = EtlOrchestrator(mdw).run([FEED])
        assert "OWLPRIME" in result.refreshed_rulebases
        # inherited membership visible through the rulebase
        rows = mdw.query(
            "SELECT ?x WHERE { ?x rdf:type dm:Attribute }", rulebases=["OWLPRIME"]
        )
        assert len(rows) == 1  # core_payments via Source Column < Attribute

    def test_thesaurus_integration(self):
        mdw = MetadataWarehouse()
        th = SynonymThesaurus()
        th.add_synonym("customer", "client")
        result = EtlOrchestrator(mdw).run([FEED], thesaurus=th)
        assert result.thesaurus_edges == 2

    def test_load_documents_programmatic(self):
        mdw = MetadataWarehouse()
        doc = parse_metadata_xml(FEED)
        result = EtlOrchestrator(mdw).load_documents([doc])
        assert result.ok
        assert result.documents == 1

    def test_idempotent_reload(self):
        mdw = MetadataWarehouse()
        orch = EtlOrchestrator(mdw)
        first = orch.run([FEED])
        size = len(mdw.graph)
        second = orch.run([FEED])
        # mapping reification mints fresh bnodes; everything else dedups
        assert second.bulk_report.duplicates > 0
        assert len(mdw.graph) <= size + 5
