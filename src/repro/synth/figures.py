"""Exact builders for the paper's running examples.

* :func:`build_figure2_example` — the Customer data flow of Figure 2:
  staging ``customer_id`` (string) → integration ``partner_id``
  (integer, with the Individual/Institution generalization) → data-mart
  ``client``.
* :func:`build_figure3_snippet` — the three-layer Customer
  Identification snippet of Figure 3, which Figures 5 and 8 walk:
  ``client_information_id`` → ``partner_id`` → ``customer_id`` at the
  fact layer, the ``Application1_View_Column`` schema classes above it,
  and the class hierarchy on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.model import World
from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.rdf.terms import IRI


@dataclass
class Figure2Example:
    warehouse: MetadataWarehouse
    staging_customer_id: IRI
    integration_partner_id: IRI
    mart_client_id: IRI
    classes: Dict[str, IRI]


def build_figure2_example() -> Figure2Example:
    """The Figure 2 customer pipeline, exactly as the paper tells it."""
    mdw = MetadataWarehouse()
    s = mdw.schema

    # business generalization: Individuals and Institutions are Partners
    party = s.declare_class("Party", world=World.BUSINESS)
    partner = s.declare_class("Partner", world=World.BUSINESS, parents=party)
    s.declare_class("Individual", world=World.BUSINESS, parents=partner)
    s.declare_class("Institution", world=World.BUSINESS, parents=partner)
    client = s.declare_class("Client", world=World.BUSINESS, parents=party)

    item = s.declare_class("Item")
    attribute = s.declare_class("Attribute", parents=item)
    source_column = s.declare_class("Source Column", parents=attribute)
    column = s.declare_class("Column", parents=attribute)
    mart_column = s.declare_class("Mart Column", parents=column)

    # DWH inbound interface (staging): Customer entities keyed by
    # customer_id, a string
    staging_customer_id = mdw.facts.add_instance(
        "staging_customer_id", source_column, display_name="customer_id"
    )
    mdw.facts.set_area(staging_customer_id, TERMS.area_inbound)
    mdw.facts.set_level(staging_customer_id, TERMS.level_physical)

    # integration: all Partners referenced by partner_id, an integer
    integration_partner_id = mdw.facts.add_instance(
        "int_partner_id", column, display_name="partner_id"
    )
    mdw.facts.set_area(integration_partner_id, TERMS.area_integration)
    mdw.facts.set_level(integration_partner_id, TERMS.level_logical)
    mdw.facts.add_mapping(
        staging_customer_id,
        integration_partner_id,
        rule="customer_id (string) -> unique partner_id (integer)",
    )

    # data mart: all customers are referred to as Clients
    mart_client_id = mdw.facts.add_instance(
        "mart_client_id", mart_column, display_name="client_id"
    )
    mdw.facts.set_area(mart_client_id, TERMS.area_mart)
    mdw.facts.set_level(mart_client_id, TERMS.level_conceptual)
    mdw.facts.add_mapping(
        integration_partner_id,
        mart_client_id,
        rule="partner (Individuals and Institutions) -> client",
    )

    return Figure2Example(
        warehouse=mdw,
        staging_customer_id=staging_customer_id,
        integration_partner_id=integration_partner_id,
        mart_client_id=mart_client_id,
        classes={
            "Party": party,
            "Partner": partner,
            "Client": client,
            "Source Column": source_column,
            "Column": column,
            "Mart Column": mart_column,
        },
    )


@dataclass
class Figure3Snippet:
    warehouse: MetadataWarehouse
    client_information_id: IRI
    partner_id: IRI
    customer_id: IRI
    classes: Dict[str, IRI]


def build_figure3_snippet() -> Figure3Snippet:
    """The Customer Identification snippet of Figure 3 / 5 / 8."""
    mdw = MetadataWarehouse()
    s = mdw.schema

    # hierarchy layer (top of Figure 3)
    item = s.declare_class("Item")
    attribute = s.declare_class("Attribute", parents=item)
    interface_item = s.declare_class("Interface Item", parents=item)
    application1_item = s.declare_class("Application1 Item", parents=item)
    source_file_column = s.declare_class("Source File Column", parents=attribute)
    # the class Figure 5's narrowing singles out: a view column belonging
    # to Application1 that is also part of an interface
    application1_view_column = s.declare_class(
        "Application1 View Column",
        label="Column",
        parents=[attribute, application1_item, interface_item],
    )

    # fact layer (bottom): the mapping chain of Figure 3
    client_information_id = mdw.facts.add_instance(
        "client_information_id", source_file_column, display_name="client_information_id"
    )
    mdw.facts.set_area(client_information_id, TERMS.area_inbound)
    partner_id = mdw.facts.add_instance(
        "partner_id", source_file_column, display_name="partner_id"
    )
    mdw.facts.set_area(partner_id, TERMS.area_integration)
    customer_id = mdw.facts.add_instance(
        "customer_id", application1_view_column, display_name="customer_id"
    )
    mdw.facts.set_area(customer_id, TERMS.area_mart)

    mdw.facts.add_mapping(client_information_id, partner_id)
    mdw.facts.add_mapping(partner_id, customer_id)

    return Figure3Snippet(
        warehouse=mdw,
        client_information_id=client_information_id,
        partner_id=partner_id,
        customer_id=customer_id,
        classes={
            "Item": item,
            "Attribute": attribute,
            "Interface Item": interface_item,
            "Application1 Item": application1_item,
            "Source File Column": source_file_column,
            "Application1 View Column": application1_view_column,
        },
    )
