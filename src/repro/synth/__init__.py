"""Synthetic bank IT landscape generation.

The paper runs on Credit Suisse's real application landscape — thousands
of applications, several data warehouses, ~130,000 meta-data nodes and
~1.2 million edges per version. That data is proprietary, so this
package generates a faithful synthetic equivalent: applications with
databases, schemas, tables and columns; the three-area DWH pipeline of
Figure 2 (inbound/staging → integration → data marts) with multi-hop
mapping chains; interfaces and data flows; users and roles; the
business-concept hierarchy; and DBpedia-style synonyms. Everything is
seeded and deterministic.

Entry points::

    from repro.synth import LandscapeConfig, generate_landscape
    landscape = generate_landscape(LandscapeConfig.small(seed=7))
    landscape.warehouse.search.search("customer")
"""

from repro.synth.names import NamePool
from repro.synth.landscape import Landscape, LandscapeConfig, generate_landscape
from repro.synth.pipelines import generate_pipeline
from repro.synth.workload import (
    SearchWorkload,
    ServiceOp,
    make_scatter_workload,
    make_search_workload,
    make_service_workload,
)

__all__ = [
    "Landscape",
    "LandscapeConfig",
    "NamePool",
    "SearchWorkload",
    "ServiceOp",
    "generate_landscape",
    "generate_pipeline",
    "make_scatter_workload",
    "make_search_workload",
    "make_service_workload",
]
