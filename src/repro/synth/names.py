"""Deterministic banking-flavoured name pools.

The generator needs names that look like a bank's meta-data: business
entities ("customer", "portfolio"), cryptic legacy table names
("TCD100" — the paper's own example), application names, and person
names for the Roles subject area.
"""

from __future__ import annotations

import random
from typing import List, Sequence

BUSINESS_ENTITIES = [
    "customer", "client", "partner", "party", "individual", "institution",
    "account", "transaction", "payment", "portfolio", "position", "trade",
    "order", "instrument", "security", "loan", "mortgage", "deposit",
    "card", "branch", "advisor", "product", "contract", "collateral",
    "currency", "counterparty", "settlement", "statement", "fee", "rate",
]

ATTRIBUTE_SUFFIXES = [
    "id", "name", "type", "status", "date", "amount", "balance", "code",
    "number", "currency", "country", "segment", "category", "flag",
    "timestamp", "reference", "description", "limit", "rating", "channel",
]

APPLICATION_DOMAINS = [
    "payments", "custody", "trading", "risk", "compliance", "crm",
    "lending", "treasury", "settlement", "reporting", "pricing",
    "onboarding", "tax", "fx", "collateral", "clearing", "archiving",
    "billing", "fraud", "liquidity",
]

APPLICATION_SUFFIXES = ["core", "hub", "engine", "suite", "gateway", "desk", "monitor"]

ROLE_NAMES = [
    "business owner", "business user", "consultant", "investment banker",
    "accountant", "administrator", "support", "auditor", "data steward",
]

FIRST_NAMES = [
    "anna", "beat", "claudia", "daniel", "erika", "felix", "gabriela",
    "hans", "iris", "jonas", "karin", "lukas", "maria", "nico", "olivia",
    "peter", "regula", "stefan", "teresa", "urs",
]

LAST_NAMES = [
    "ackermann", "baumann", "cavelti", "dubois", "egger", "frei",
    "gerber", "huber", "imhof", "jenni", "keller", "lanz", "meier",
    "nussbaum", "odermatt", "pfister", "roth", "schneider", "tanner",
    "vogel",
]

PROGRAMMING_LANGUAGES = ["cobol", "pl1", "java", "c", "python", "sql", "rexx"]

THIRD_PARTY_SOFTWARE = [
    "oracle_11g", "db2", "mq_series", "websphere", "tibco", "informatica",
    "protege", "business_objects", "sap_fi",
]


class NamePool:
    """Seeded name factory. Every method is deterministic per instance."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)
        self._legacy_counter = 100

    def application_name(self, index: int) -> str:
        domain = APPLICATION_DOMAINS[index % len(APPLICATION_DOMAINS)]
        suffix = APPLICATION_SUFFIXES[(index // len(APPLICATION_DOMAINS)) % len(APPLICATION_SUFFIXES)]
        series = index // (len(APPLICATION_DOMAINS) * len(APPLICATION_SUFFIXES))
        tail = f"_{series + 2}" if series else ""
        return f"{domain}_{suffix}{tail}"

    def legacy_table_name(self) -> str:
        """Cryptic legacy names like the paper's "TCD100"."""
        prefix = "T" + "".join(self._rng.choice("ABCDEGKMPRSX") for _ in range(2))
        self._legacy_counter += self._rng.randint(1, 9) * 10
        return f"{prefix}{self._legacy_counter % 1000:03d}"

    def entity(self) -> str:
        return self._rng.choice(BUSINESS_ENTITIES)

    def column_name(self, entity: str) -> str:
        return f"{entity}_{self._rng.choice(ATTRIBUTE_SUFFIXES)}"

    def person(self, index: int) -> str:
        first = FIRST_NAMES[index % len(FIRST_NAMES)]
        last = LAST_NAMES[(index // len(FIRST_NAMES)) % len(LAST_NAMES)]
        series = index // (len(FIRST_NAMES) * len(LAST_NAMES))
        tail = str(series + 2) if series else ""
        return f"{first}.{last}{tail}"

    def choice(self, items: Sequence):
        return self._rng.choice(items)

    def sample(self, items: Sequence, k: int) -> List:
        k = min(k, len(items))
        return self._rng.sample(list(items), k)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()
