"""The synthetic bank IT landscape generator.

Generates a complete Figure 1 landscape into a
:class:`~repro.core.MetadataWarehouse`:

* the "Protégé-authored" base hierarchy (technical and business classes);
* applications with databases, schemas, tables, columns, users, roles,
  and interfaces;
* the three-area DWH pipeline of Figure 2 — per source application a
  staging file whose columns are mapped into integration entities and
  onward into data-mart reports, producing multi-hop
  ``(isMappedTo)*`` chains;
* the conceptual layer (domains, conceptual entities and attributes)
  bridging the business and technical worlds;
* DBpedia-style synonyms ("customer" ↔ "client" ↔ "partner");
* optionally the **extended scope** of Figure 9: log files, technical
  components (programming languages, third-party software), and data-
  governance ownership.

The generator writes triples through the same conventions as the core
managers, so the result passes Table I validation; it bypasses the
per-assertion manager checks for speed at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Triple

from repro.core.model import World
from repro.core.schema import _to_identifier
from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.etl.dbpedia import SynonymThesaurus
from repro.synth.names import (
    NamePool,
    PROGRAMMING_LANGUAGES,
    ROLE_NAMES,
    THIRD_PARTY_SOFTWARE,
)

#: synonym pairs merged in from the DBpedia-style extract
DEFAULT_SYNONYMS = [
    ("customer", "client"),
    ("customer", "partner"),
    ("party", "partner"),
    ("transaction", "trade"),
    ("account", "deposit"),
    ("instrument", "security"),
]

DEFAULT_HOMONYMS = [
    ("bank", "river bank"),
    ("position", "job position"),
]


@dataclass(frozen=True)
class LandscapeConfig:
    """Size knobs for the generator. All presets are deterministic."""

    seed: int = 2009
    applications: int = 12
    tables_per_app: Tuple[int, int] = (2, 4)
    columns_per_table: Tuple[int, int] = (3, 8)
    dwh_source_fraction: float = 0.5
    marts: int = 2
    reports_per_mart: int = 3
    attributes_per_report: Tuple[int, int] = (3, 6)
    users: int = 10
    roles_per_app: Tuple[int, int] = (1, 3)
    interfaces_per_app: Tuple[int, int] = (0, 2)
    mapping_rule_fraction: float = 0.5
    mapping_condition_fraction: float = 0.3
    synonyms: bool = True
    extended_scope: bool = False
    log_files_per_app: Tuple[int, int] = (1, 2)

    @classmethod
    def tiny(cls, seed: int = 2009) -> "LandscapeConfig":
        """A handful of applications — unit-test sized."""
        return cls(
            seed=seed,
            applications=4,
            tables_per_app=(1, 2),
            columns_per_table=(2, 4),
            users=4,
            marts=1,
            reports_per_mart=2,
        )

    @classmethod
    def small(cls, seed: int = 2009) -> "LandscapeConfig":
        """Example/benchmark default (a few thousand triples)."""
        return cls(seed=seed)

    @classmethod
    def medium(cls, seed: int = 2009) -> "LandscapeConfig":
        return cls(
            seed=seed,
            applications=60,
            tables_per_app=(3, 6),
            columns_per_table=(5, 12),
            users=40,
            marts=4,
            reports_per_mart=5,
        )

    @classmethod
    def paper_scale(cls, seed: int = 2009) -> "LandscapeConfig":
        """Aims at the published ~130k nodes / ~1.2M edges per version."""
        return cls(
            seed=seed,
            applications=550,
            tables_per_app=(6, 10),
            columns_per_table=(12, 24),
            users=400,
            marts=12,
            reports_per_mart=10,
            attributes_per_report=(6, 12),
            extended_scope=True,
        )

    def with_extended_scope(self) -> "LandscapeConfig":
        """The Figure 9 variant of this configuration."""
        return replace(self, extended_scope=True)


@dataclass
class Landscape:
    """The generated landscape plus handles into it."""

    config: LandscapeConfig
    warehouse: MetadataWarehouse
    applications: List[IRI] = field(default_factory=list)
    source_applications: List[IRI] = field(default_factory=list)
    users: List[IRI] = field(default_factory=list)
    staging_columns: List[IRI] = field(default_factory=list)
    integration_columns: List[IRI] = field(default_factory=list)
    report_attributes: List[IRI] = field(default_factory=list)
    reports: List[IRI] = field(default_factory=list)
    domains: List[IRI] = field(default_factory=list)
    classes: Dict[str, IRI] = field(default_factory=dict)
    subject_area_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def graph(self):
        return self.warehouse.graph

    def summary(self) -> str:
        stats = self.warehouse.statistics()
        areas = ", ".join(f"{k}: {v}" for k, v in sorted(self.subject_area_counts.items()))
        return f"{stats.nodes} nodes, {stats.edges} edges ({areas})"


def generate_landscape(
    config: Optional[LandscapeConfig] = None,
    warehouse: Optional[MetadataWarehouse] = None,
) -> Landscape:
    """Generate a landscape into a (new by default) warehouse.

    The cyclic garbage collector is paused during generation: millions of
    small allocations with no cycles make gen-2 sweeps dominate the
    runtime otherwise (10x at paper scale).
    """
    import gc

    config = config or LandscapeConfig.small()
    generator = _Generator(config, warehouse or MetadataWarehouse())
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return generator.run()
    finally:
        if gc_was_enabled:
            gc.enable()


class _Generator:
    def __init__(self, config: LandscapeConfig, warehouse: MetadataWarehouse):
        self.config = config
        self.mdw = warehouse
        self.names = NamePool(config.seed)
        self.graph = warehouse.graph
        self.instance_ns = warehouse.facts.namespace
        self.landscape = Landscape(config=config, warehouse=warehouse)
        self.counts: Dict[str, int] = {}

    # -- low-level helpers -------------------------------------------------

    def count(self, subject_area: str, n: int = 1) -> None:
        self.counts[subject_area] = self.counts.get(subject_area, 0) + n

    def instance(
        self,
        name: str,
        classes,
        display_name: Optional[str] = None,
        area: Optional[IRI] = None,
        level: Optional[IRI] = None,
        belongs_to: Optional[IRI] = None,
    ) -> IRI:
        """Fast-path instance creation (same triples as FactManager)."""
        node = self.instance_ns.term(_to_identifier(name))
        for cls in classes if isinstance(classes, (list, tuple)) else [classes]:
            self.graph.add(Triple(node, RDF.type, cls))
        self.graph.add(Triple(node, TERMS.has_name, Literal(display_name or name)))
        if area is not None:
            self.graph.add(Triple(node, TERMS.in_area, area))
        if level is not None:
            self.graph.add(Triple(node, TERMS.at_level, level))
        if belongs_to is not None:
            self.graph.add(Triple(node, TERMS.belongs_to, belongs_to))
        return node

    def service_levels(self, node: IRI, area: IRI) -> None:
        """Annotate freshness and quality per pipeline stage: staging is
        fresh but raw, integration is cleansed, marts are aggregated and
        audited — "different freshness, response time, and data quality
        guarantees" (Section I)."""
        if area == TERMS.area_inbound:
            grade = self.names.choice(["realtime", "intraday"])
            quality = 0.50 + self.names.random() * 0.25
        elif area == TERMS.area_integration:
            grade = "daily"
            quality = 0.75 + self.names.random() * 0.15
        else:
            grade = self.names.choice(["daily", "weekly"])
            quality = 0.90 + self.names.random() * 0.09
        self.graph.add(Triple(node, TERMS.freshness, Literal(grade)))
        self.graph.add(Triple(node, TERMS.quality_score, Literal(round(quality, 3))))

    def mapping(self, source: IRI, target: IRI) -> None:
        rule = None
        condition = None
        if self.names.random() < self.config.mapping_rule_fraction:
            rule = f"transform({self.names.choice(['cast', 'trim', 'lookup', 'merge', 'derive'])})"
        if self.names.random() < self.config.mapping_condition_fraction:
            condition = self.names.choice(
                ["country = 'CH'", "status = 'active'", "amount > 0", "segment = 'private'"]
            )
        self.mdw.facts.add_mapping(source, target, rule=rule, condition=condition)
        self.count("data flows")

    # -- orchestration ---------------------------------------------------------

    def run(self) -> Landscape:
        self.declare_base_hierarchy()
        self.generate_applications()
        self.generate_dwh()
        self.generate_conceptual_layer()
        if self.config.synonyms:
            self.generate_synonyms()
        if self.config.extended_scope:
            self.generate_extended_scope()
        self.landscape.subject_area_counts = dict(self.counts)
        return self.landscape

    # -- the authored hierarchy ---------------------------------------------------

    def declare_base_hierarchy(self) -> None:
        schema = self.mdw.schema
        classes = self.landscape.classes

        def declare(name, parents=None, world=World.TECHNICAL, label=None, area=None):
            cls = schema.declare_class(
                name, world=world, label=label, parents=parents, subject_area=area
            )
            classes[_to_identifier(name)] = cls
            return cls

        item = declare("Item", area="Core")
        attr = declare("Attribute", parents=item)
        column = declare("Column", parents=attr)
        declare("Source Column", parents=attr, area="Data Definitions")
        declare("View Column", parents=column)
        declare("Report Attribute", parents=attr)
        entity = declare("Entity", parents=item)
        declare("Table", parents=entity)
        declare("File", parents=entity, area="Data Definitions")
        declare("View", parents=entity)
        declare("Report", parents=item)
        declare("Application", parents=item, area="Applications")
        interface_item = declare("Interface Item", parents=item)
        declare("Interface", parents=interface_item, area="Interfaces")
        declare("Database", parents=item, area="Databases")
        declare("Schema", parents=item, area="Data Definitions")
        declare("User", parents=item, area="Roles")
        declare("Role", parents=item, area="Roles")

        # business world (the hierarchy business users search with)
        concept = declare("Business Concept", parents=item, world=World.BUSINESS)
        party = declare("Party", parents=concept, world=World.BUSINESS)
        declare("Individual", parents=party, world=World.BUSINESS)
        declare("Institution", parents=party, world=World.BUSINESS)
        declare("Partner", parents=party, world=World.BUSINESS)
        declare("Client", parents=party, world=World.BUSINESS)
        declare("Customer", parents=party, world=World.BUSINESS)
        declare("Domain", parents=concept, world=World.BUSINESS)
        declare("Conceptual Entity", parents=[entity, concept], world=World.BUSINESS)
        declare(
            "Conceptual Attribute", parents=[attr, concept], world=World.BUSINESS
        )

        schema.declare_property("represents", world=World.TECHNICAL)
        schema.declare_property("uses", world=World.TECHNICAL)
        schema.declare_property("dataOwner", world=World.BUSINESS)

        if self.config.extended_scope:
            declare("Log File", parents=item, area="Logs")
            component = declare("Technical Component", parents=item, area="Components")
            declare("Programming Language", parents=component, area="Components")
            declare("Third Party Software", parents=component, area="Components")

    # -- applications ------------------------------------------------------------

    def generate_applications(self) -> None:
        c = self.landscape.classes
        config = self.config
        schema = self.mdw.schema

        for i in range(config.users):
            user = self.instance(f"user_{self.names.person(i)}", c["User"],
                                 display_name=self.names.person(i))
            self.landscape.users.append(user)
            self.count("users")

        for i in range(config.applications):
            app_name = self.names.application_name(i)
            # the per-application item class of Figure 3
            app_item_cls = schema.declare_class(
                f"{app_name}_item",
                parents=c["Item"],
                label=f"{app_name} Item",
                subject_area="Applications",
            )
            app = self.instance(app_name, c["Application"])
            self.landscape.applications.append(app)
            self.count("applications")

            database = self.instance(f"{app_name}_db", c["Database"], belongs_to=app)
            self.count("databases")
            schema_inst = self.instance(
                f"{app_name}_schema", c["Schema"], belongs_to=database
            )
            self.count("schemas")

            n_tables = self.names.randint(*config.tables_per_app)
            for t in range(n_tables):
                legacy = self.names.random() < 0.4
                table_name = (
                    self.names.legacy_table_name()
                    if legacy
                    else f"{app_name}_{self.names.entity()}_t{t}"
                )
                table = self.instance(
                    f"{app_name}_{table_name}",
                    [c["Table"], app_item_cls],
                    display_name=table_name,
                    belongs_to=schema_inst,
                    level=TERMS.level_physical,
                )
                self.count("tables")
                for col in range(self.names.randint(*config.columns_per_table)):
                    entity_word = self.names.entity()
                    column_name = self.names.column_name(entity_word)
                    self.instance(
                        f"{app_name}_{table_name}_{column_name}",
                        [c["Column"], app_item_cls],
                        display_name=column_name,
                        belongs_to=table,
                        level=TERMS.level_physical,
                    )
                    self.count("columns")

            self._generate_roles(app, app_name, i)
            self._generate_interfaces(app, app_name, i)

    #: default privileges per role name (the RolePrivileges property)
    ROLE_PRIVILEGES = {
        "business owner": ("read", "write", "approve"),
        "business user": ("read",),
        "administrator": ("read", "write", "admin"),
        "support": ("read",),
        "auditor": ("read", "audit"),
        "data steward": ("read", "write"),
    }

    def _generate_roles(self, app: IRI, app_name: str, index: int) -> None:
        c = self.landscape.classes
        n_roles = self.names.randint(*self.config.roles_per_app)
        role_names = ["business owner"] + self.names.sample(ROLE_NAMES[1:], max(0, n_roles - 1))
        for role_name in role_names[:n_roles] if n_roles else []:
            role = self.instance(
                f"role_{app_name}_{role_name}",
                c["Role"],
                display_name=role_name,
            )
            self.graph.add(Triple(role, TERMS.for_application, app))
            for privilege in self.ROLE_PRIVILEGES.get(role_name, ("read",)):
                self.graph.add(Triple(role, TERMS.has_privilege, Literal(privilege)))
            if self.landscape.users:
                user = self.names.choice(self.landscape.users)
                self.graph.add(Triple(user, TERMS.plays_role, role))
            self.count("roles")

    def _generate_interfaces(self, app: IRI, app_name: str, index: int) -> None:
        c = self.landscape.classes
        if len(self.landscape.applications) < 2:
            return
        for i in range(self.names.randint(*self.config.interfaces_per_app)):
            target = self.names.choice(self.landscape.applications)
            if target == app:
                continue
            interface = self.instance(
                f"{app_name}_if{i}",
                [c["Interface"], c["Interface_Item"]],
                belongs_to=app,
            )
            self.graph.add(Triple(interface, TERMS.feeds, target))
            self.graph.add(Triple(app, TERMS.feeds, target))
            self.count("interfaces")

    # -- the DWH pipeline (Figure 2) --------------------------------------------------

    def generate_dwh(self) -> None:
        c = self.landscape.classes
        config = self.config
        schema = self.mdw.schema

        base_applications = list(self.landscape.applications)
        dwh = self.instance("dwh_core", c["Application"], display_name="dwh_core")
        self.landscape.applications.append(dwh)
        self.count("applications")
        dwh_db = self.instance("dwh_core_db", c["Database"], belongs_to=dwh)
        staging_schema = self.instance(
            "dwh_staging_schema", c["Schema"], belongs_to=dwh_db
        )
        integration_schema = self.instance(
            "dwh_integration_schema", c["Schema"], belongs_to=dwh_db
        )
        self.count("databases")
        self.count("schemas", 2)

        dwh_view_column_cls = schema.declare_class(
            "dwh_core_view_column",
            parents=[c["View_Column"], c["Interface_Item"]],
            label="Column",
        )

        n_sources = max(1, int(len(base_applications) * config.dwh_source_fraction))
        sources = base_applications[:n_sources]
        self.landscape.source_applications = list(sources)

        # inbound / staging area: one source file per feeding application
        by_entity: Dict[str, List[IRI]] = {}
        for app in sources:
            app_local = app.local_name
            source_file = self.instance(
                f"{app_local}_feed",
                c["File"],
                belongs_to=staging_schema,
                area=TERMS.area_inbound,
                level=TERMS.level_physical,
            )
            self.count("files")
            # pick concrete columns of the application and stage them
            app_columns = self._columns_of_application(app)
            staged = self.names.sample(app_columns, max(2, len(app_columns) // 2))
            for app_column in staged:
                display = self._display_name(app_column)
                staging_column = self.instance(
                    f"{app_local}_feed_{display}",
                    c["Source_Column"],
                    display_name=display,
                    belongs_to=source_file,
                    area=TERMS.area_inbound,
                    level=TERMS.level_physical,
                )
                self.landscape.staging_columns.append(staging_column)
                self.service_levels(staging_column, TERMS.area_inbound)
                self.count("staging columns")
                self.mapping(app_column, staging_column)
                entity_word = display.rsplit("_", 1)[0]
                by_entity.setdefault(entity_word, []).append(staging_column)

        # integration area: one entity per business-entity word
        integration_by_entity: Dict[str, List[IRI]] = {}
        for entity_word, staged_columns in sorted(by_entity.items()):
            table = self.instance(
                f"dwh_int_{entity_word}",
                c["Table"],
                display_name=f"int_{entity_word}",
                belongs_to=integration_schema,
                area=TERMS.area_integration,
                level=TERMS.level_logical,
            )
            self.count("tables")
            for suffix_columns in _chunk(staged_columns, 4):
                display = self._display_name(suffix_columns[0])
                integration_column = self.instance(
                    f"dwh_int_{entity_word}_{display}",
                    [c["Column"], dwh_view_column_cls],
                    display_name=display,
                    belongs_to=table,
                    area=TERMS.area_integration,
                    level=TERMS.level_logical,
                )
                self.landscape.integration_columns.append(integration_column)
                integration_by_entity.setdefault(entity_word, []).append(integration_column)
                self.service_levels(integration_column, TERMS.area_integration)
                self.count("integration columns")
                for staging_column in suffix_columns:
                    self.mapping(staging_column, integration_column)

        # data marts: reports fed from integration columns
        integration_pool = self.landscape.integration_columns
        for m in range(config.marts):
            mart = self.instance(
                f"dwh_mart_{m}", c["Application"], display_name=f"dwh_mart_{m}"
            )
            self.count("applications")
            mart_schema = self.instance(
                f"dwh_mart_{m}_schema", c["Schema"], belongs_to=mart
            )
            self.count("schemas")
            for r in range(config.reports_per_mart):
                report = self.instance(
                    f"mart{m}_report_{r}",
                    c["Report"],
                    belongs_to=mart_schema,
                    area=TERMS.area_mart,
                    level=TERMS.level_conceptual,
                )
                self.landscape.reports.append(report)
                self.count("reports")
                if not integration_pool:
                    continue
                n_attrs = self.names.randint(*config.attributes_per_report)
                for source_column in self.names.sample(integration_pool, n_attrs):
                    display = self._display_name(source_column)
                    attr = self.instance(
                        f"mart{m}_report_{r}_{display}",
                        c["Report_Attribute"],
                        display_name=display,
                        belongs_to=report,
                        area=TERMS.area_mart,
                        level=TERMS.level_conceptual,
                    )
                    self.landscape.report_attributes.append(attr)
                    self.service_levels(attr, TERMS.area_mart)
                    self.count("report attributes")
                    self.mapping(source_column, attr)

    # -- conceptual layer ---------------------------------------------------------------

    def generate_conceptual_layer(self) -> None:
        c = self.landscape.classes
        represents = self.mdw.schema.namespace.represents
        seen_entities: Dict[str, IRI] = {}
        seen_attributes: Dict[str, IRI] = {}
        for column in self.landscape.integration_columns:
            display = self._display_name(column)
            entity_word = display.rsplit("_", 1)[0]
            domain = seen_entities.get(entity_word)
            if domain is None:
                domain = self.instance(
                    f"domain_{entity_word}",
                    c["Domain"],
                    display_name=f"{entity_word} domain",
                    level=TERMS.level_conceptual,
                )
                self.landscape.domains.append(domain)
                conceptual_entity = self.instance(
                    f"concept_{entity_word}",
                    c["Conceptual_Entity"],
                    display_name=entity_word,
                    belongs_to=domain,
                    level=TERMS.level_conceptual,
                )
                seen_entities[entity_word] = domain
                self.count("domains")
                self.count("conceptual entities")
            conceptual_attr = seen_attributes.get(display)
            if conceptual_attr is None:
                conceptual_attr = self.instance(
                    f"concept_attr_{display}",
                    c["Conceptual_Attribute"],
                    display_name=display,
                    belongs_to=domain,
                    level=TERMS.level_conceptual,
                )
                seen_attributes[display] = conceptual_attr
                self.count("conceptual attributes")
            self.graph.add(Triple(column, represents, conceptual_attr))

    def generate_synonyms(self) -> None:
        thesaurus = SynonymThesaurus()
        thesaurus.add_synonyms(DEFAULT_SYNONYMS)
        for a, b in DEFAULT_HOMONYMS:
            thesaurus.add_homonym(a, b)
        added = thesaurus.materialize(self.graph)
        self.count("synonym edges", added)

    # -- extended scope (Figure 9) ----------------------------------------------------------

    def generate_extended_scope(self) -> None:
        c = self.landscape.classes
        uses = self.mdw.schema.namespace.uses
        data_owner = self.mdw.schema.namespace.dataOwner

        language_instances = {
            lang: self.instance(f"lang_{lang}", c["Programming_Language"], display_name=lang)
            for lang in PROGRAMMING_LANGUAGES
        }
        software_instances = {
            s: self.instance(f"sw_{s}", c["Third_Party_Software"], display_name=s)
            for s in THIRD_PARTY_SOFTWARE
        }
        self.count("technical components", len(language_instances) + len(software_instances))

        for app in self.landscape.applications:
            app_local = app.local_name
            for i in range(self.names.randint(*self.config.log_files_per_app)):
                self.instance(
                    f"{app_local}_log_{i}",
                    c["Log_File"],
                    display_name=f"{app_local}.log.{i}",
                    belongs_to=app,
                    level=TERMS.level_physical,
                )
                self.count("log files")
            self.graph.add(
                Triple(app, uses, language_instances[self.names.choice(PROGRAMMING_LANGUAGES)])
            )
            self.graph.add(
                Triple(app, uses, software_instances[self.names.choice(THIRD_PARTY_SOFTWARE)])
            )
            self.count("component links", 2)

        for domain in self.landscape.domains:
            if self.landscape.users:
                owner = self.names.choice(self.landscape.users)
                self.graph.add(Triple(domain, data_owner, owner))
                self.count("governance links")

    # -- helpers --------------------------------------------------------------------

    def _columns_of_application(self, app: IRI) -> List[IRI]:
        """Columns two belongs_to hops under the application's schema."""
        graph = self.graph
        out: List[IRI] = []
        for database in graph.subjects(TERMS.belongs_to, app):
            for schema_inst in graph.subjects(TERMS.belongs_to, database):
                for table in graph.subjects(TERMS.belongs_to, schema_inst):
                    out.extend(graph.subjects(TERMS.belongs_to, table))
        return sorted(out, key=lambda t: t.sort_key())

    def _display_name(self, item: IRI) -> str:
        name = self.graph.value(item, TERMS.has_name, None)
        return name.lexical if isinstance(name, Literal) else item.local_name


def _chunk(items: List, size: int) -> List[List]:
    return [items[i : i + size] for i in range(0, len(items), size)]
