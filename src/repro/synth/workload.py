"""Query workloads for the benchmark harness.

A workload is a reproducible list of operations (search terms, lineage
start items) drawn from a generated landscape — the benchmarks replay
them to measure throughput and result shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.rdf.terms import IRI

from repro.synth.landscape import Landscape
from repro.synth.names import BUSINESS_ENTITIES


@dataclass
class SearchWorkload:
    """Search terms plus lineage starting points for one landscape."""

    terms: List[str] = field(default_factory=list)
    business_terms: List[str] = field(default_factory=list)
    lineage_targets: List[IRI] = field(default_factory=list)
    lineage_sources: List[IRI] = field(default_factory=list)


def make_search_workload(
    landscape: Landscape,
    n_terms: int = 10,
    n_lineage: int = 10,
    seed: int = 42,
) -> SearchWorkload:
    """Draw a deterministic workload out of a landscape.

    ``terms`` are entity words that actually occur in column names
    (every search has hits); ``business_terms`` are phrased in business
    vocabulary, some of which only hit through synonym expansion (the A4
    ablation). Lineage targets are report attributes (backward audits);
    lineage sources are staging columns (forward impact, Figure 8).
    """
    rng = random.Random(seed)
    terms = [BUSINESS_ENTITIES[i % len(BUSINESS_ENTITIES)] for i in range(n_terms)]
    business_terms = ["client", "partner", "party", "trade", "deposit", "security"][
        : max(1, n_terms // 2)
    ]

    targets = list(landscape.report_attributes)
    sources = list(landscape.staging_columns)
    rng.shuffle(targets)
    rng.shuffle(sources)
    return SearchWorkload(
        terms=terms,
        business_terms=business_terms,
        lineage_targets=targets[:n_lineage],
        lineage_sources=sources[:n_lineage],
    )
