"""Query workloads for the benchmark harness.

A workload is a reproducible list of operations (search terms, lineage
start items) drawn from a generated landscape — the benchmarks replay
them to measure throughput and result shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.vocabulary import TERMS
from repro.rdf.terms import IRI, Literal

from repro.synth.landscape import Landscape
from repro.synth.names import BUSINESS_ENTITIES


@dataclass
class SearchWorkload:
    """Search terms plus lineage starting points for one landscape."""

    terms: List[str] = field(default_factory=list)
    business_terms: List[str] = field(default_factory=list)
    lineage_targets: List[IRI] = field(default_factory=list)
    lineage_sources: List[IRI] = field(default_factory=list)


def make_search_workload(
    landscape: Landscape,
    n_terms: int = 10,
    n_lineage: int = 10,
    seed: int = 42,
) -> SearchWorkload:
    """Draw a deterministic workload out of a landscape.

    ``terms`` are entity words that actually occur in column names
    (every search has hits); ``business_terms`` are phrased in business
    vocabulary, some of which only hit through synonym expansion (the A4
    ablation). Lineage targets are report attributes (backward audits);
    lineage sources are staging columns (forward impact, Figure 8).
    """
    rng = random.Random(seed)
    terms = [BUSINESS_ENTITIES[i % len(BUSINESS_ENTITIES)] for i in range(n_terms)]
    business_terms = ["client", "partner", "party", "trade", "deposit", "security"][
        : max(1, n_terms // 2)
    ]

    targets = list(landscape.report_attributes)
    sources = list(landscape.staging_columns)
    rng.shuffle(targets)
    rng.shuffle(sources)
    return SearchWorkload(
        terms=terms,
        business_terms=business_terms,
        lineage_targets=targets[:n_lineage],
        lineage_sources=sources[:n_lineage],
    )


# -- query-service workloads ---------------------------------------------------


@dataclass(frozen=True)
class ServiceOp:
    """One request of a service workload: a kind plus its payload.

    Shaped to feed :meth:`repro.server.QueryService.submit` directly:
    ``service.submit(op.kind, **op.payload)``.
    """

    kind: str
    payload: Dict[str, object]


#: Listing 1's shape: find items whose name matches a term, via SEM_MATCH
#: over the current model (regexp_like + GROUP BY, as in the paper).
_LISTING1_SQL = """
    SELECT object FROM TABLE(SEM_MATCH(
        {{?object dm:hasName ?term}},
        SEM_MODELS('DWH_CURR'),
        null,
        SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
        null))
    WHERE regexp_like(term, '{term}', 'i')
    GROUP BY object
"""

#: Listing 2's question ("where does this item come from?") as SPARQL:
#: one mapping hop upstream of a named item, with the mapping meta-data.
_LISTING2_SPARQL = """
    SELECT ?source ?sourceName WHERE {{
        ?item dm:hasName "{name}" .
        ?source dt:isMappedTo ?item .
        ?source dm:hasName ?sourceName .
    }}
"""


def make_service_workload(
    warehouse,
    n_ops: int = 100,
    seed: int = 42,
    include_sql: bool = True,
) -> List[ServiceOp]:
    """A deterministic mixed request stream for a query service.

    Derived from the warehouse graph itself (``dm:hasName`` values), so
    it works over a generated landscape *and* a store loaded from disk.
    The mix mirrors the paper's use cases: Listing-1-shaped SEM_MATCH
    searches and search-service calls with varying terms, Listing-2
    -shaped lineage probes (as SPARQL one-hop queries and as full
    lineage traces), and a periodic schema-browsing SPARQL query.

    ``include_sql=False`` drops the SEM_SQL ops (for services without
    the Oracle layer). The same (warehouse contents, ``n_ops``,
    ``seed``) always produces the same list.
    """
    rng = random.Random(seed)
    names = sorted(
        o.lexical
        for _, _, o in warehouse.graph.triples(None, TERMS.has_name, None)
        if isinstance(o, Literal)
    )
    if not names:
        raise ValueError("warehouse has no dm:hasName values to build a workload from")
    # short fragments make good search terms (several hits each)
    fragments = sorted({name[: max(3, len(name) // 2)] for name in rng.sample(names, min(20, len(names)))})

    ops: List[ServiceOp] = []
    for i in range(n_ops):
        roll = rng.random()
        if roll < 0.30 and include_sql:
            term = rng.choice(fragments)
            ops.append(ServiceOp("sql", {"sql": _LISTING1_SQL.format(term=term)}))
        elif roll < 0.55:
            name = rng.choice(names)
            ops.append(
                ServiceOp("query", {"text": _LISTING2_SPARQL.format(name=name)})
            )
        elif roll < 0.75:
            ops.append(ServiceOp("search", {"term": rng.choice(fragments)}))
        elif roll < 0.90:
            direction = "upstream" if rng.random() < 0.7 else "downstream"
            ops.append(
                ServiceOp(
                    "lineage",
                    {"item": rng.choice(names), "direction": direction, "max_depth": 4},
                )
            )
        else:
            ops.append(
                ServiceOp(
                    "query",
                    {
                        "text": (
                            "SELECT ?class (COUNT(?item) AS ?n) WHERE "
                            "{ ?item rdf:type ?class } GROUP BY ?class ORDER BY ?class"
                        )
                    },
                )
            )
    return ops


def make_scatter_workload(
    warehouse,
    n_ops: int = 100,
    seed: int = 42,
) -> List[ServiceOp]:
    """A deterministic search/lineage mix for the *sharded* gateway.

    The sharded serving tier routes only the paper's two interactive
    use cases (Listing-1 search scatter-gathers, Listing-2 lineage runs
    as a frontier exchange); raw SPARQL/SEM_SQL stays on unsharded
    replicas. This stream mirrors :func:`make_service_workload`'s
    derivation — terms and item names come from the warehouse's own
    ``dm:hasName`` values — restricted to the routable kinds, so the
    sharded benchmark and chaos harness replay a realistic interactive
    mix. Same inputs, same list, always.
    """
    rng = random.Random(seed)
    names = sorted(
        o.lexical
        for _, _, o in warehouse.graph.triples(None, TERMS.has_name, None)
        if isinstance(o, Literal)
    )
    if not names:
        raise ValueError("warehouse has no dm:hasName values to build a workload from")
    fragments = sorted({name[: max(3, len(name) // 2)] for name in rng.sample(names, min(20, len(names)))})

    ops: List[ServiceOp] = []
    for i in range(n_ops):
        roll = rng.random()
        if roll < 0.60:
            ops.append(ServiceOp("search", {"term": rng.choice(fragments)}))
        else:
            direction = "upstream" if rng.random() < 0.7 else "downstream"
            ops.append(
                ServiceOp(
                    "lineage",
                    {"item": rng.choice(names), "direction": direction, "max_depth": 4},
                )
            )
    return ops
