"""Deep DWH pipeline generator for the path-explosion study (A3).

Section V: "the number of paths is growing exponentially with every
additional data processing step or stage of the data warehouse."
:func:`generate_pipeline` builds a k-stage pipeline with a configurable
fan between stages so that growth is measurable, attaching rule
conditions to a fraction of the mappings so the condition-filter fix can
be measured against it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.model import World
from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.rdf.terms import IRI


@dataclass
class Pipeline:
    """Handles into a generated k-stage pipeline."""

    warehouse: MetadataWarehouse
    stages: List[List[IRI]]        # stage 0 = sources, last = report items
    conditions_used: List[str]

    @property
    def source(self) -> IRI:
        return self.stages[0][0]

    @property
    def depth(self) -> int:
        return len(self.stages) - 1


def generate_pipeline(
    stages: int,
    items_per_stage: int = 3,
    fan: int = 2,
    condition_fraction: float = 0.5,
    conditions: Optional[List[str]] = None,
    seed: int = 7,
    warehouse: Optional[MetadataWarehouse] = None,
) -> Pipeline:
    """Build a pipeline of ``stages`` processing steps.

    Every item of stage *i* maps into ``fan`` items of stage *i+1*
    (chosen round-robin), so the number of source→sink paths grows
    roughly like ``fan**stages``. ``condition_fraction`` of the mapping
    edges carry one of ``conditions`` as their rule condition.
    """
    if stages < 1:
        raise ValueError("a pipeline needs at least one stage hop")
    if fan < 1 or items_per_stage < 1:
        raise ValueError("fan and items_per_stage must be >= 1")
    mdw = warehouse or MetadataWarehouse()
    conditions = conditions or ["country = 'CH'", "segment = 'private'"]
    rng = random.Random(seed)

    stage_cls = mdw.schema.declare_class("Pipeline Item", world=World.TECHNICAL)
    layers: List[List[IRI]] = []
    for s in range(stages + 1):
        layer = [
            mdw.facts.add_instance(f"stage{s}_item{i}", stage_cls)
            for i in range(items_per_stage)
        ]
        if s == 0:
            area = TERMS.area_inbound
        elif s == stages:
            area = TERMS.area_mart
        else:
            area = TERMS.area_integration
        for item in layer:
            mdw.facts.set_area(item, area)
        layers.append(layer)

    for s in range(stages):
        for i, item in enumerate(layers[s]):
            for f in range(fan):
                target = layers[s + 1][(i + f) % items_per_stage]
                condition = None
                if rng.random() < condition_fraction:
                    condition = rng.choice(conditions)
                mdw.facts.add_mapping(item, target, condition=condition)

    return Pipeline(warehouse=mdw, stages=layers, conditions_used=list(conditions))
