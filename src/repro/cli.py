"""``repro-mdw`` — the meta-data warehouse command line.

A thin operational frontend over the library, working against a store
directory (see :mod:`repro.rdf.persist`)::

    repro-mdw generate ./wh --scale small --seed 2009
    repro-mdw stats ./wh
    repro-mdw validate ./wh
    repro-mdw search ./wh customer --area mart --synonyms
    repro-mdw lineage ./wh customer_id --direction upstream
    repro-mdw flows ./wh --granularity 2
    repro-mdw index ./wh
    repro-mdw load ./wh release/*.xml --version 2026.R2
    repro-mdw snapshot ./wh 2026.R1
    repro-mdw versions ./wh
    repro-mdw sql ./wh query.sql

Every command exits 0 on success and 2 on a user error (bad arguments,
unknown item, non-conformant graph for ``validate``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import MetadataWarehouse, TERMS
from repro.core.vocabulary import MDW
from repro.rdf.persist import PersistenceError
from repro.services import SearchFilters

_AREAS = {
    "inbound": TERMS.area_inbound,
    "staging": TERMS.area_inbound,
    "integration": TERMS.area_integration,
    "mart": TERMS.area_mart,
}


class CliError(Exception):
    """A user-facing CLI error (exit code 2)."""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mdw",
        description="Meta-data warehouse operations (Credit Suisse MDW reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic landscape into a store directory")
    generate.add_argument("store", help="store directory to create/overwrite")
    generate.add_argument("--scale", choices=["tiny", "small", "medium", "paper"], default="small")
    generate.add_argument("--seed", type=int, default=2009)
    generate.add_argument("--extended", action="store_true", help="include the Figure 9 extended scope")
    generate.add_argument("--with-index", action="store_true", help="build the OWLPRIME entailment index")

    stats = sub.add_parser(
        "stats", help="node/edge composition (Table I) and process metrics"
    )
    stats.add_argument("store")
    stats.add_argument(
        "--metrics", action="store_true",
        help="also print the process metrics registry as JSON",
    )
    stats.add_argument(
        "--prometheus", action="store_true",
        help="also print the metrics registry in Prometheus text format",
    )

    validate = sub.add_parser("validate", help="audit the graph against Table I")
    validate.add_argument("store")

    search = sub.add_parser("search", help="the search facility (use case IV.A)")
    search.add_argument("store")
    search.add_argument("term")
    search.add_argument("--class", dest="classes", action="append", default=[], help="hierarchy class filter (repeatable)")
    search.add_argument("--area", choices=sorted(_AREAS), default=None)
    search.add_argument("--synonyms", action="store_true", help="expand the term with synonyms")
    search.add_argument("--expand", metavar="LABEL", default=None, help="expand one result group")
    search.add_argument("--regex", action="store_true", help="treat TERM as a regular expression")
    search.add_argument(
        "--freshness", action="append", default=[],
        help="keep only items with this freshness guarantee (repeatable)",
    )
    search.add_argument(
        "--min-quality", type=float, default=None,
        help="drop items with a quality score below this value",
    )

    lineage = sub.add_parser("lineage", help="the provenance tool (use case IV.B)")
    lineage.add_argument("store")
    lineage.add_argument("item", help="item display name (dm:hasName)")
    lineage.add_argument("--direction", choices=["upstream", "downstream"], default="upstream")
    lineage.add_argument("--depth", type=int, default=None)
    lineage.add_argument("--condition", default=None, help="keep only mapping edges whose rule condition contains this text (unconditional edges always pass)")

    flows = sub.add_parser("flows", help="the Figure 7 data-flow panes")
    flows.add_argument("store")
    flows.add_argument("--granularity", type=int, default=0, help="containment levels to lift both sides")
    flows.add_argument("--rows", type=int, default=20)

    load = sub.add_parser(
        "load",
        help="apply a complete release (XML feeds + optional ontology) to the store",
    )
    load.add_argument("store")
    load.add_argument("files", nargs="+", help="XML metadata feed files describing the full release state")
    load.add_argument("--ontology", default=None, help="ontology file staged alongside the feeds")
    load_mode = load.add_mutually_exclusive_group()
    load_mode.add_argument(
        "--incremental", action="store_true",
        help="force delta application (default: auto — incremental when a prior version exists)",
    )
    load_mode.add_argument(
        "--full-rebuild", action="store_true",
        help="escape hatch: clear the model, reload everything, rebuild all indexes",
    )
    load.add_argument("--version", default=None, help="historize the result under this version name")
    load.add_argument("--no-validate", action="store_true", help="skip Table I validation")

    index = sub.add_parser("index", help="build/refresh an entailment index")
    index.add_argument("store")
    index.add_argument("--rulebase", default="OWLPRIME")

    snapshot = sub.add_parser(
        "snapshot",
        help="binary snapshot files, delta segments, and historized versions",
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    s_hist = snap_sub.add_parser(
        "historize", help="historize the current model under a version name"
    )
    s_hist.add_argument("store")
    s_hist.add_argument("version", help="version name, e.g. 2026.R1")

    s_save = snap_sub.add_parser(
        "save", help="write the store as one mmap-able binary snapshot file"
    )
    s_save.add_argument("store", help="store directory (or snapshot file) to read")
    s_save.add_argument("file", help="snapshot file to write, e.g. wh.mdws")

    s_attach = snap_sub.add_parser(
        "attach", help="attach (mmap) a snapshot file and print what it serves"
    )
    s_attach.add_argument("file", help="snapshot file to attach")
    s_attach.add_argument(
        "--segment", action="append", default=[], metavar="FILE",
        help="delta segment to replay on top (repeatable, chain order)",
    )

    s_info = snap_sub.add_parser(
        "info", help="header and table of contents of a snapshot file"
    )
    s_info.add_argument("file", help="snapshot file to inspect")
    s_info.add_argument(
        "--verify", action="store_true",
        help="also recompute every section checksum",
    )

    s_migrate = snap_sub.add_parser(
        "migrate",
        help="convert a legacy N-Triples store directory to a snapshot file",
    )
    s_migrate.add_argument("old", help="legacy store directory (manifest.json)")
    s_migrate.add_argument("new", help="snapshot file to write")

    versions = sub.add_parser("versions", help="list historized versions")
    versions.add_argument("store")

    sql = sub.add_parser("sql", help="run a SEM_MATCH SQL statement (file or '-')")
    sql.add_argument("store")
    sql.add_argument("file", help="path to the .sql file, or '-' for stdin")
    sql.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    update = sub.add_parser("update", help="run SPARQL Update statements (file or '-')")
    update.add_argument("store")
    update.add_argument("file", help="path to the .ru file, or '-' for stdin")

    overview = sub.add_parser("overview", help="the Figure 1 subject-area overview")
    overview.add_argument("store")

    explain = sub.add_parser("explain", help="show a SPARQL query's evaluation plan")
    explain.add_argument("store")
    explain.add_argument("query", help="the query text, or a path to a .rq file")
    explain.add_argument("--rulebase", action="append", default=[], help="include an entailment index")
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query and append the runtime profile (EXPLAIN ANALYZE)",
    )

    serve = sub.add_parser(
        "serve",
        help="run statements from stdin through the concurrent query service",
    )
    serve.add_argument("store")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--mode", choices=["thread", "fork"], default="thread")
    serve.add_argument("--timeout", type=float, default=None, help="per-statement deadline in seconds")
    serve.add_argument("--queue", type=int, default=64, help="admission queue bound")
    serve.add_argument(
        "--supervise", action="store_true",
        help="self-healing worker fleet (fork mode only): heartbeat, "
        "reap and respawn dead or hung workers, requeue their requests",
    )

    chaos = sub.add_parser(
        "chaos",
        help="randomized crash/recover/verify loops over the resilient load path",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--iterations", type=int, default=5)
    chaos.add_argument("--documents", type=int, default=4, help="release feeds per iteration")
    chaos.add_argument("--instances", type=int, default=10, help="instances per feed")
    chaos.add_argument("--workdir", default=None, help="directory for journals (default: a temp dir)")
    chaos_path = chaos.add_mutually_exclusive_group()
    chaos_path.add_argument(
        "--incremental", action="store_true",
        help="crash/recover through the incremental release-application path",
    )
    chaos_path.add_argument(
        "--snapshot", action="store_true",
        help="crash/recover through the snapshot storage path "
        "(save/attach fault sites)",
    )
    chaos_path.add_argument(
        "--supervisor", action="store_true",
        help="SIGKILL live fork workers under a client workload and "
        "verify the supervisor loses no request (serving path)",
    )
    chaos_path.add_argument(
        "--sharded", action="store_true",
        help="SIGKILL one shard's workers under load, then hard-down and "
        "replace the shard: zero lost requests, degraded partials while "
        "its breaker is open, bit-identical recovery (sharded gateway)",
    )
    chaos.add_argument(
        "--shards", type=int, default=3,
        help="shard count for --sharded (default 3)",
    )

    workload = sub.add_parser(
        "workload",
        help="drive a synthetic client mix against the query service",
    )
    workload.add_argument("store")
    workload.add_argument("--workers", type=int, default=4)
    workload.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    workload.add_argument("--requests", type=int, default=200, help="total requests across clients")
    workload.add_argument("--mode", choices=["thread", "fork"], default="thread")
    workload.add_argument("--timeout", type=float, default=None, help="per-request deadline in seconds")
    workload.add_argument("--seed", type=int, default=42)
    workload.add_argument(
        "--supervise", action="store_true",
        help="run the workload under the self-healing supervisor (fork mode only)",
    )
    workload.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="trace the run and write a Chrome trace JSON here",
    )
    workload.add_argument(
        "--sample", type=float, default=1.0,
        help="trace sampling rate in [0, 1] (with --trace-out)",
    )
    workload.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the process metrics registry as JSON here",
    )

    trace = sub.add_parser(
        "trace",
        help="drive a traced service workload and export the Chrome trace",
    )
    trace.add_argument("store")
    trace.add_argument("--out", default="trace.json", help="Chrome trace JSON output file")
    trace.add_argument("--requests", type=int, default=50)
    trace.add_argument("--clients", type=int, default=4)
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--mode", choices=["thread", "fork"], default="thread")
    trace.add_argument("--sample", type=float, default=1.0, help="root-span sampling rate in [0, 1]")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--prometheus-out", default=None, metavar="FILE",
        help="also write a Prometheus scrape of the metrics registry",
    )

    slo = sub.add_parser(
        "slo",
        help="drive a sharded fleet and report windowed SLIs, error "
        "budgets, and burn rates",
    )
    slo.add_argument("store")
    slo.add_argument("--shards", type=int, default=3)
    slo.add_argument("--requests", type=int, default=60)
    slo.add_argument("--seed", type=int, default=42)
    slo.add_argument("--window", type=float, default=300.0, help="SLO window in seconds")
    slo.add_argument("--json", action="store_true", help="emit the report as JSON")
    slo.add_argument(
        "--sample", type=float, default=1.0,
        help="trace sampling rate in [0, 1] (with --trace-out)",
    )
    slo.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="trace the run, validate the cross-shard span tree, and "
        "write the Chrome trace JSON here",
    )
    slo.add_argument(
        "--prometheus-out", default=None, metavar="FILE",
        help="also write a Prometheus scrape (includes mdw_slo_*)",
    )
    slo.add_argument(
        "--events-out", default=None, metavar="FILE",
        help="write the operational event journal as JSON lines",
    )

    top = sub.add_parser(
        "top",
        help="live fleet console: health, SLOs, recent operational events",
    )
    top.add_argument("store")
    top.add_argument("--shards", type=int, default=3)
    top.add_argument("--requests", type=int, default=30, help="requests driven per refresh")
    top.add_argument("--seed", type=int, default=42)
    top.add_argument("--window", type=float, default=300.0)
    top.add_argument("--interval", type=float, default=1.0, help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=3, help="refreshes before exiting")
    top.add_argument(
        "--once", action="store_true",
        help="one machine-readable JSON snapshot (CI mode)",
    )

    events = sub.add_parser(
        "events",
        help="filter/format an operational event journal JSONL file "
        "(from 'slo --events-out' or 'top')",
    )
    events.add_argument("file", help="journal JSON-lines file, or '-' for stdin")
    events.add_argument("--kind", default=None, help="keep only this event kind")
    events.add_argument("--shard", default=None, help="keep only this shard")
    events.add_argument("--severity", default=None, choices=["info", "warning", "error"])
    events.add_argument("--limit", type=int, default=None, help="keep only the newest N")
    events.add_argument("--json", action="store_true", help="re-emit as JSON lines")

    return parser


#: ``snapshot`` sub-subcommands; anything else after ``snapshot`` is the
#: legacy ``snapshot <store> <version>`` spelling, rewritten to
#: ``snapshot historize <store> <version>``.
_SNAPSHOT_CMDS = ("historize", "save", "attach", "info", "migrate")


def _rewrite_legacy(argv: List[str]) -> List[str]:
    if (
        len(argv) >= 2
        and argv[0] == "snapshot"
        and argv[1] not in _SNAPSHOT_CMDS
        and not argv[1].startswith("-")
    ):
        return [argv[0], "historize", *argv[1:]]
    return argv


def main(argv: Optional[List[str]] = None) -> int:
    from repro.storage import StorageError

    argv = _rewrite_legacy(list(sys.argv[1:] if argv is None else argv))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = _HANDLERS[args.command]
        handler(args)
        return 0
    except (CliError, PersistenceError, StorageError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ---------------------------------------------------------------------------
# command handlers
# ---------------------------------------------------------------------------


def _open(args) -> MetadataWarehouse:
    path = Path(args.store)
    if path.is_file():
        # a snapshot file: attach it (read-only, mmap) instead of loading
        return MetadataWarehouse.attach_snapshot(path)
    if not (path / "manifest.json").exists():
        raise CliError(f"{path} is not a store directory (run 'generate' first)")
    return MetadataWarehouse.load(path)


def _find_item(mdw: MetadataWarehouse, name: str):
    from repro.rdf.terms import Literal

    matches = sorted(
        mdw.graph.subjects(TERMS.has_name, Literal(name)), key=lambda t: t.sort_key()
    )
    if not matches:
        raise CliError(f"no item named {name!r} (names are dm:hasName values)")
    if len(matches) > 1:
        print(f"note: {len(matches)} items named {name!r}; using {matches[0].n3()}")
    return matches[0]


def cmd_generate(args) -> None:
    from repro.synth import LandscapeConfig, generate_landscape

    factory = {
        "tiny": LandscapeConfig.tiny,
        "small": LandscapeConfig.small,
        "medium": LandscapeConfig.medium,
        "paper": LandscapeConfig.paper_scale,
    }[args.scale]
    config = factory(seed=args.seed)
    if args.extended:
        config = config.with_extended_scope()
    landscape = generate_landscape(config)
    if args.with_index:
        report = landscape.warehouse.build_entailment_index()
        print(report.summary())
    landscape.warehouse.save(args.store)
    print(f"generated {landscape.summary()}")
    print(f"saved to {args.store}")


def cmd_stats(args) -> None:
    mdw = _open(args)
    print(mdw.statistics().render_table_i())
    if args.metrics:
        import json

        from repro.obs import snapshot_json

        print(json.dumps(snapshot_json(), indent=2, sort_keys=True))
    if args.prometheus:
        from repro.obs import render_prometheus

        print(render_prometheus(), end="")


def cmd_validate(args) -> None:
    mdw = _open(args)
    report = mdw.validate()
    print(report.summary())
    for issue in report.issues[:20]:
        print(f"  {issue.describe()}")
    if not report.conformant:
        raise CliError(f"{report.violation_count} edge(s) outside Table I")


def cmd_search(args) -> None:
    from repro.ui import render_search_results

    mdw = _open(args)
    filters = SearchFilters(
        classes=list(args.classes),
        areas=[_AREAS[args.area]] if args.area else (),
        freshness=list(args.freshness),
        min_quality=args.min_quality,
    )
    try:
        results = mdw.search.search(
            args.term, filters, expand_synonyms=args.synonyms, regex=args.regex
        )
    except KeyError as exc:
        raise CliError(str(exc)) from None
    print(render_search_results(results, expand=args.expand))


def cmd_lineage(args) -> None:
    from repro.ui import render_trace

    mdw = _open(args)
    item = _find_item(mdw, args.item)
    condition_filter = None
    if args.condition is not None:
        needle = args.condition

        def condition_filter(edge):
            return edge.condition is None or needle in edge.condition

    trace = mdw.lineage.trace(
        item, args.direction, max_depth=args.depth, condition_filter=condition_filter
    )
    print(render_trace(mdw, trace))


def cmd_flows(args) -> None:
    from repro.ui import render_lineage_panes

    mdw = _open(args)
    print(
        render_lineage_panes(
            mdw,
            source_granularity=args.granularity,
            target_granularity=args.granularity,
            max_rows=args.rows,
        )
    )


def cmd_load(args) -> None:
    """Apply a complete release to the store (auto-incremental)."""
    from repro.etl.pipeline import EtlOrchestrator

    mdw = _open(args)
    documents = []
    for name in args.files:
        path = Path(name)
        if not path.exists():
            raise CliError(f"no such file: {path}")
        documents.append(path.read_text(encoding="utf-8"))
    ontology = None
    if args.ontology is not None:
        ontology_path = Path(args.ontology)
        if not ontology_path.exists():
            raise CliError(f"no such file: {ontology_path}")
        ontology = ontology_path.read_text(encoding="utf-8")
    mode = "auto"
    if args.incremental:
        mode = "incremental"
    elif args.full_rebuild:
        mode = "full"
    historizer = None
    if args.version is not None:
        from repro.history import Historizer

        historizer = Historizer(mdw.store, model=mdw.model_name)
    from repro.etl.xml_source import XmlSourceError

    orchestrator = EtlOrchestrator(mdw, validate=not args.no_validate)
    try:
        result = orchestrator.apply_release(
            documents,
            ontology_text=ontology,
            mode=mode,
            version=args.version,
            historizer=historizer,
        )
    except XmlSourceError as exc:
        raise CliError(str(exc)) from None
    print(result.summary())
    if not result.ok:
        raise CliError("release load failed; store NOT saved")
    mdw.save(args.store)


def cmd_index(args) -> None:
    mdw = _open(args)
    try:
        report = mdw.indexes.build(mdw.model_name, args.rulebase)
    except KeyError as exc:
        raise CliError(str(exc)) from None
    print(report.summary())
    mdw.save(args.store)


def cmd_snapshot(args) -> None:
    {
        "historize": _snapshot_historize,
        "save": _snapshot_save,
        "attach": _snapshot_attach,
        "info": _snapshot_info,
        "migrate": _snapshot_migrate,
    }[args.snapshot_command](args)


def _snapshot_historize(args) -> None:
    from repro.history import HistorizationError, Historizer

    mdw = _open(args)
    historizer = Historizer(mdw.store)
    try:
        version = historizer.snapshot(args.version)
    except HistorizationError as exc:
        raise CliError(str(exc)) from None
    mdw.save(args.store)
    print(version.summary())


def _snapshot_save(args) -> None:
    mdw = _open(args)
    path = mdw.save_snapshot(args.file)
    triples = mdw.store.total_triples(include_indexes=True)
    print(
        f"saved {triples} triple(s) "
        f"({len(mdw.store.model_names())} model(s)) "
        f"to {path} ({path.stat().st_size} bytes)"
    )


def _snapshot_attach(args) -> None:
    if not Path(args.file).is_file():
        raise CliError(f"no such snapshot file: {args.file}")
    for seg in args.segment:
        if not Path(seg).is_file():
            raise CliError(f"no such segment file: {seg}")
    mdw = MetadataWarehouse.attach_snapshot(args.file, segments=args.segment)
    for name in mdw.store.model_names():
        print(f"model {name:<16} {len(mdw.store.model(name)):>10} triple(s)")
    for model, rulebase in mdw.store.index_names():
        derived = mdw.store.index(model, rulebase)
        print(f"index {model}[{rulebase}] {len(derived):>10} triple(s)")
    print(mdw.statistics().render_table_i())


def _snapshot_info(args) -> None:
    import json

    from repro.storage import MappedSnapshot

    if not Path(args.file).is_file():
        raise CliError(f"no such snapshot file: {args.file}")
    snap = MappedSnapshot.open(args.file)
    try:
        info = snap.info()
        if args.verify:
            info["checksums"] = "ok" if snap.verify() else "MISMATCH"
        print(json.dumps(info, indent=2, sort_keys=True))
        if info.get("checksums") == "MISMATCH":
            raise CliError(f"{args.file}: section checksum mismatch")
    finally:
        snap.close()


def _snapshot_migrate(args) -> None:
    import warnings

    from repro.storage import get_engine

    old = Path(args.old)
    if not (old / "manifest.json").exists():
        raise CliError(f"{old} is not a legacy store directory")
    with warnings.catch_warnings():
        # migration IS the deprecation remedy; no need to warn about it
        warnings.simplefilter("ignore", DeprecationWarning)
        store = get_engine("memory").load(old)
    path = get_engine("mmap").save(store, args.new)
    print(
        f"migrated {store.total_triples(include_indexes=True)} triple(s) "
        f"from {old} to {path} ({Path(path).stat().st_size} bytes)"
    )


def cmd_versions(args) -> None:
    mdw = _open(args)
    hist_models = [m for m in mdw.store.model_names() if m.startswith("HIST_")]
    if not hist_models:
        print("no historized versions")
        return
    for model in hist_models:
        graph = mdw.store.model(model)
        print(f"{model[5:]:<16} {graph.node_count():>8} nodes {len(graph):>10} edges")


def cmd_sql(args) -> None:
    mdw = _open(args)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        path = Path(args.file)
        if not path.exists():
            raise CliError(f"no such file: {path}")
        text = path.read_text(encoding="utf-8")
    from repro.oracle import SemSqlError

    try:
        rows = mdw.sem_sql(text)
    except SemSqlError as exc:
        raise CliError(str(exc)) from None
    if args.csv:
        print(rows.to_csv(), end="")
    else:
        print(rows.as_table())
        print(f"({len(rows)} row(s))")


def cmd_update(args) -> None:
    mdw = _open(args)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        path = Path(args.file)
        if not path.exists():
            raise CliError(f"no such file: {path}")
        text = path.read_text(encoding="utf-8")
    from repro.sparql import SparqlParseError

    try:
        result = mdw.update(text)
    except SparqlParseError as exc:
        raise CliError(str(exc)) from None
    report = mdw.validate(max_issues=5)
    if not report.conformant:
        raise CliError(
            f"update would leave {report.violation_count} edge(s) outside "
            "Table I; store NOT saved — first offender: "
            + report.issues[0].describe()
        )
    mdw.save(args.store)
    print(result.summary())


def cmd_overview(args) -> None:
    from repro.core.statistics import collect_statistics
    from repro.ui import render_landscape_overview

    mdw = _open(args)
    # recover subject-area counts from the graph itself: class instances
    # per subject-area keyword are not persisted, so approximate from the
    # per-class instance counts
    counts = _subject_area_counts(mdw)
    print(render_landscape_overview(counts))
    stats = collect_statistics(mdw.graph)
    print(f"\ntotal: {stats.nodes} nodes, {stats.edges} edges")


def _subject_area_counts(mdw: MetadataWarehouse):
    """Approximate Figure 1 counts from class labels in a loaded store."""
    from repro.rdf.namespace import RDF

    label_to_key = {
        "Application": "applications",
        "Database": "databases",
        "Schema": "schemas",
        "Table": "tables",
        "Column": "columns",
        "File": "files",
        "Interface": "interfaces",
        "Role": "roles",
        "User": "users",
        "Report": "reports",
        "Report Attribute": "report attributes",
        "Domain": "domains",
        "Log File": "log files",
    }
    counts = {}
    for cls in mdw.schema.classes():
        key = label_to_key.get(mdw.schema.label(cls) or "")
        if key:
            n = mdw.graph.count(None, RDF.type, cls)
            if n:
                counts[key] = counts.get(key, 0) + n
    from repro.core import TERMS

    flows = mdw.graph.count(None, TERMS.is_mapped_to, None)
    if flows:
        counts["data flows"] = flows
    return counts


def cmd_explain(args) -> None:
    mdw = _open(args)
    text = args.query
    path = Path(text)
    if path.suffix == ".rq" and path.exists():
        text = path.read_text(encoding="utf-8")
    from repro.sparql import SparqlParseError

    try:
        print(mdw.explain(text, rulebases=args.rulebase, analyze=args.analyze))
    except SparqlParseError as exc:
        raise CliError(str(exc)) from None


def cmd_serve(args) -> None:
    """Feed blank-line-separated statements from stdin to a query service.

    Statements containing ``SEM_MATCH`` run through the SQL layer, the
    rest as SPARQL. At EOF the service's metrics report is printed.
    """
    mdw = _open(args)
    from repro.server import DeadlineExceeded, Overloaded, QueryServiceError, ServiceConfig

    if args.supervise and args.mode != "fork":
        raise CliError("--supervise requires --mode fork (thread workers share the process)")
    config = ServiceConfig(
        max_workers=args.workers,
        max_queue=args.queue,
        default_timeout=args.timeout,
        worker_mode=args.mode,
        supervise=args.supervise,
    )
    statements = [
        block.strip()
        for block in sys.stdin.read().split("\n\n")
        if block.strip() and not block.lstrip().startswith("#")
    ]
    failures = 0
    with mdw.serve(config) as service:
        for number, statement in enumerate(statements, start=1):
            kind = "sql" if "SEM_MATCH" in statement.upper() else "query"
            try:
                if kind == "sql":
                    rows = service.sem_sql(statement)
                else:
                    rows = service.query(statement)
            except (DeadlineExceeded, Overloaded, QueryServiceError) as exc:
                failures += 1
                print(f"-- statement {number}: {type(exc).__name__}: {exc}")
                continue
            print(f"-- statement {number} ({kind}, {len(rows)} row(s))")
            print(rows.as_table())
        print(service.metrics_report())
        health = service.health()
        line = f"health: {health['status']}"
        supervisor = health.get("supervisor")
        if supervisor:
            restarts = sum((supervisor.get("restarts") or {}).values())
            line += (
                f" (supervisor: {supervisor['alive_children']} worker(s) live, "
                f"{restarts} restart(s), {supervisor['hedged']} hedged)"
            )
        print(line)
    if failures:
        raise CliError(f"{failures} of {len(statements)} statement(s) failed")


def _drive_workload(mdw, *, workers, clients, requests, mode, timeout, seed, supervise=False):
    """Run the synthetic client mix; returns (ops, errors, elapsed, report)."""
    import threading
    import time

    from repro.server import QueryServiceError, ServiceConfig
    from repro.synth import make_service_workload

    config = ServiceConfig(
        max_workers=workers,
        max_queue=max(64, requests),
        default_timeout=timeout,
        worker_mode=mode,
        supervise=supervise,
    )
    ops = make_service_workload(mdw, n_ops=requests, seed=seed)
    shards = [ops[i::clients] for i in range(clients)]
    errors: List[str] = []
    errors_lock = threading.Lock()

    with mdw.serve(config) as service:

        def client(shard):
            for op in shard:
                try:
                    service.execute(op.kind, **op.payload)
                except QueryServiceError as exc:
                    with errors_lock:
                        errors.append(f"{op.kind}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=client, args=(shard,), daemon=True)
            for shard in shards
            if shard
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        report = service.metrics_report()
    return ops, errors, elapsed, report


def _write_chrome_trace(tracer, path: str) -> int:
    """Export the tracer's spans as Chrome trace JSON; returns the event count."""
    import json

    data = tracer.to_chrome()
    Path(path).write_text(json.dumps(data), encoding="utf-8")
    return len(data["traceEvents"])


def cmd_workload(args) -> None:
    """Drive a deterministic mixed workload with concurrent clients."""
    from contextlib import ExitStack

    if args.supervise and args.mode != "fork":
        raise CliError("--supervise requires --mode fork (thread workers share the process)")
    mdw = _open(args)
    tracer = None
    with ExitStack() as stack:
        if args.trace_out is not None:
            from repro.obs import Tracer, trace_scope

            tracer = Tracer(sample_rate=args.sample)
            stack.enter_context(trace_scope(tracer))
        ops, errors, elapsed, report = _drive_workload(
            mdw,
            workers=args.workers,
            clients=args.clients,
            requests=args.requests,
            mode=args.mode,
            timeout=args.timeout,
            seed=args.seed,
            supervise=args.supervise,
        )
    print(
        f"{len(ops)} request(s), {args.clients} client(s), "
        f"{args.workers} {args.mode} worker(s): "
        f"{elapsed:.2f}s ({len(ops) / elapsed:.1f} req/s)"
    )
    print(report)
    if tracer is not None:
        events = _write_chrome_trace(tracer, args.trace_out)
        print(f"wrote {events} trace event(s) to {args.trace_out}")
    if args.metrics_out is not None:
        import json

        from repro.obs import snapshot_json

        Path(args.metrics_out).write_text(
            json.dumps(snapshot_json(), indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"wrote metrics snapshot to {args.metrics_out}")
    if errors:
        for line in errors[:10]:
            print(f"  failed {line}", file=sys.stderr)
        raise CliError(f"{len(errors)} of {len(ops)} request(s) failed")


def cmd_trace(args) -> None:
    """Run a traced ``serve()`` workload and export the Chrome trace.

    The CI observability job drives this command: it produces a Chrome
    trace JSON (and optionally a Prometheus scrape) from a short mixed
    workload, then validates that both artifacts parse.
    """
    if not 0.0 <= args.sample <= 1.0:
        raise CliError("--sample must be in [0, 1]")
    mdw = _open(args)
    from repro.obs import Tracer, trace_scope

    tracer = Tracer(sample_rate=args.sample)
    with trace_scope(tracer):
        ops, errors, elapsed, _ = _drive_workload(
            mdw,
            workers=args.workers,
            clients=args.clients,
            requests=args.requests,
            mode=args.mode,
            timeout=None,
            seed=args.seed,
        )
    events = _write_chrome_trace(tracer, args.out)
    roots = sum(1 for s in tracer.spans() if s.parent_id is None)
    print(
        f"{len(ops)} request(s) in {elapsed:.2f}s: {events} span(s), "
        f"{roots} root span(s), sample rate {args.sample:g}"
    )
    print(f"wrote Chrome trace to {args.out}")
    if args.prometheus_out is not None:
        from repro.obs import render_prometheus

        Path(args.prometheus_out).write_text(render_prometheus(), encoding="utf-8")
        print(f"wrote Prometheus scrape to {args.prometheus_out}")
    if errors:
        for line in errors[:10]:
            print(f"  failed {line}", file=sys.stderr)
        raise CliError(f"{len(errors)} of {len(ops)} request(s) failed")


def _sharded_fleet(mdw, *, shards, requests, window):
    """A thread-mode sharded gateway sized for a CLI-driven workload."""
    from repro.server.sharding import ShardedConfig, ShardedQueryService

    if shards < 1:
        raise CliError("--shards must be positive")
    config = ShardedConfig(
        n_shards=shards,
        workers_per_shard=1,
        worker_mode="thread",
        supervise=False,
        max_queue=max(64, requests),
        slo_window=window,
    )
    return ShardedQueryService(mdw, config)


def _drive_scatter(service, mdw, *, requests, seed) -> List[str]:
    """Run the deterministic scatter mix; returns error descriptions."""
    from repro.server import QueryServiceError
    from repro.synth import make_scatter_workload

    errors: List[str] = []
    for op in make_scatter_workload(mdw, n_ops=requests, seed=seed):
        try:
            service.execute(op.kind, **op.payload)
        except QueryServiceError as exc:
            errors.append(f"{op.kind}: {type(exc).__name__}: {exc}")
    return errors


def _render_slo_report(report) -> str:
    lines = [f"SLO report (window {report['window']:.1f}s):"]
    for name, row in sorted(report["services"].items()):
        lat = row["latency"]
        lines.append(
            f"  {name}: {row['attempted']:.0f} request(s), "
            f"availability {row['availability']:.4f}, "
            f"degraded {row['degraded_ratio']:.4f}, "
            f"p50 {lat['p50'] * 1e3:.1f}ms p95 {lat['p95'] * 1e3:.1f}ms "
            f"p99 {lat['p99'] * 1e3:.1f}ms"
        )
    if report["slos"]:
        lines.append("  objectives:")
    for row in report["slos"]:
        lines.append(
            f"    {row['slo']} ({row['sli']}) {row['service']}: "
            f"objective {row['objective']:g}, "
            f"budget remaining {row['budget_remaining']:.1%}, "
            f"burn {row['burn_rate']:.2f}x"
        )
    return "\n".join(lines)


def cmd_slo(args) -> None:
    """Drive a sharded fleet, then report SLIs and error-budget math.

    The CI observability job uses the side outputs: ``--trace-out``
    exports (and validates) the cross-shard Chrome trace,
    ``--prometheus-out`` a scrape carrying ``mdw_slo_*``, and
    ``--events-out`` the operational journal as JSON lines.
    """
    import json
    from contextlib import ExitStack

    if not 0.0 <= args.sample <= 1.0:
        raise CliError("--sample must be in [0, 1]")
    if args.window <= 0:
        raise CliError("--window must be positive")
    mdw = _open(args)
    tracer = None
    with ExitStack() as stack:
        if args.trace_out is not None:
            from repro.obs import Tracer, trace_scope

            tracer = Tracer(sample_rate=args.sample)
            stack.enter_context(trace_scope(tracer))
        service = _sharded_fleet(
            mdw, shards=args.shards, requests=args.requests, window=args.window
        )
        stack.callback(service.close)
        errors = _drive_scatter(
            service, mdw, requests=args.requests, seed=args.seed
        )
        report = service.slo.report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_slo_report(report))
    if tracer is not None:
        from repro.obs import validate_chrome_trace

        data = tracer.to_chrome()
        summary = validate_chrome_trace(data)
        Path(args.trace_out).write_text(json.dumps(data), encoding="utf-8")
        print(
            f"wrote {summary['events']} trace event(s) "
            f"({summary['roots']} root(s)) to {args.trace_out}"
        )
    if args.prometheus_out is not None:
        from repro.obs import render_prometheus

        Path(args.prometheus_out).write_text(render_prometheus(), encoding="utf-8")
        print(f"wrote Prometheus scrape to {args.prometheus_out}")
    if args.events_out is not None:
        from repro.obs import get_journal

        journal = get_journal()
        Path(args.events_out).write_text(journal.to_jsonl(), encoding="utf-8")
        print(f"wrote {len(journal)} journal event(s) to {args.events_out}")
    if errors:
        for line in errors[:10]:
            print(f"  failed {line}", file=sys.stderr)
        raise CliError(f"{len(errors)} request(s) failed")


def _top_snapshot(service, mdw, args):
    """One refresh of the ops console: drive a batch, gather the panels."""
    from repro.obs import get_journal

    errors = _drive_scatter(service, mdw, requests=args.requests, seed=args.seed)
    health = service.health()
    events = get_journal().events(limit=10)
    return health, events, errors


def cmd_top(args) -> None:
    """The live ops console (``--once`` is the machine-readable CI mode)."""
    import json
    import time as _time

    if args.iterations < 1:
        raise CliError("--iterations must be positive")
    mdw = _open(args)
    service = _sharded_fleet(
        mdw, shards=args.shards, requests=args.requests, window=args.window
    )
    try:
        iterations = 1 if args.once else args.iterations
        for refresh in range(iterations):
            health, events, _errors = _top_snapshot(service, mdw, args)
            if args.once:
                print(
                    json.dumps(
                        {
                            "status": health["status"],
                            "n_shards": health["n_shards"],
                            "shards": {
                                index: {
                                    "status": doc["status"],
                                    "queue_depth": doc["queue_depth"],
                                    "workers": doc["workers"],
                                    "breaker": doc["gateway_breaker"]["state"],
                                }
                                for index, doc in health["shards"].items()
                            },
                            "slo": health["slo"],
                            "events": [e.to_dict() for e in events],
                        },
                        indent=2,
                        sort_keys=True,
                        default=str,
                    )
                )
                return
            print(f"-- refresh {refresh + 1}/{iterations} --")
            print(f"fleet: {health['status']}, {health['n_shards']} shard(s)")
            for index, doc in sorted(health["shards"].items()):
                print(
                    f"  shard {index}: {doc['status']}, "
                    f"queue {doc['queue_depth']}, "
                    f"workers {doc['workers']['configured']} "
                    f"{doc['workers']['mode']}, "
                    f"breaker {doc['gateway_breaker']['state']}"
                )
            print(_render_slo_report(health["slo"]))
            if events:
                print("recent events:")
                for event in events[-5:]:
                    print(f"  [{event.severity}] {event.kind}: {event.to_json()}")
            if refresh + 1 < iterations:
                _time.sleep(args.interval)
    finally:
        service.close()


def cmd_events(args) -> None:
    """Filter and format a drained event-journal JSONL file."""
    import json

    if args.file == "-":
        text = sys.stdin.read()
    else:
        path = Path(args.file)
        if not path.exists():
            raise CliError(f"no such file: {path}")
        text = path.read_text(encoding="utf-8")
    docs = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise CliError(f"{args.file}:{number}: not JSON: {exc}") from None
    if args.kind is not None:
        docs = [d for d in docs if d.get("kind") == args.kind]
    if args.shard is not None:
        docs = [d for d in docs if str(d.get("shard", "")) == args.shard]
    if args.severity is not None:
        docs = [d for d in docs if d.get("severity") == args.severity]
    if args.limit is not None:
        docs = docs[-args.limit:]
    for doc in docs:
        if args.json:
            print(json.dumps(doc, sort_keys=True))
        else:
            rest = {
                k: v
                for k, v in doc.items()
                if k not in ("ts", "kind", "severity")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(rest.items()))
            print(f"{doc.get('ts', 0):.3f} [{doc.get('severity', '?')}] "
                  f"{doc.get('kind', '?')} {detail}".rstrip())
    print(f"({len(docs)} event(s))", file=sys.stderr)


def cmd_chaos(args) -> None:
    """Kill the load at a random fault point, recover, verify convergence.

    Exit 0 means every iteration converged to the bit-identical
    reference state (model, entailment indexes, probe answers); any
    divergence is a bug in the crash-recovery path and exits 2.
    """
    from repro.resilience.chaos import (
        run_chaos,
        run_sharded_chaos,
        run_snapshot_chaos,
        run_supervisor_chaos,
    )

    if args.iterations < 1:
        raise CliError("--iterations must be positive")
    if args.sharded:
        if args.shards < 1:
            raise CliError("--shards must be positive")
        report = run_sharded_chaos(
            seed=args.seed,
            iterations=args.iterations,
            documents=args.documents,
            instances=args.instances,
            n_shards=args.shards,
            workdir=args.workdir,
            log=print,
        )
    elif args.supervisor:
        report = run_supervisor_chaos(
            seed=args.seed,
            iterations=args.iterations,
            documents=args.documents,
            instances=args.instances,
            workdir=args.workdir,
            log=print,
        )
    elif args.snapshot:
        report = run_snapshot_chaos(
            seed=args.seed,
            iterations=args.iterations,
            documents=args.documents,
            instances=args.instances,
            workdir=args.workdir,
            log=print,
        )
    else:
        report = run_chaos(
            seed=args.seed,
            iterations=args.iterations,
            documents=args.documents,
            instances=args.instances,
            workdir=args.workdir,
            log=print,
            incremental=args.incremental,
        )
    print(report.verdict())  # per-iteration lines already streamed live
    if not report.ok:
        diverged = sum(1 for it in report.iterations if not it.converged)
        raise CliError(
            f"{diverged} of {len(report.iterations)} iteration(s) "
            "diverged from the reference state"
        )


_HANDLERS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "validate": cmd_validate,
    "search": cmd_search,
    "lineage": cmd_lineage,
    "flows": cmd_flows,
    "index": cmd_index,
    "load": cmd_load,
    "snapshot": cmd_snapshot,
    "versions": cmd_versions,
    "sql": cmd_sql,
    "overview": cmd_overview,
    "explain": cmd_explain,
    "update": cmd_update,
    "serve": cmd_serve,
    "workload": cmd_workload,
    "trace": cmd_trace,
    "slo": cmd_slo,
    "top": cmd_top,
    "events": cmd_events,
    "chaos": cmd_chaos,
}


if __name__ == "__main__":
    sys.exit(main())
