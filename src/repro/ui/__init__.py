"""Text renderings of the meta-data warehouse frontend.

The paper's screenshots are reproduced as deterministic text panes:

* :func:`render_search_results` — the grouped result list of Figure 6;
* :func:`render_lineage_panes` — the two-pane provenance drill-down of
  Figure 7;
* :func:`render_graph_snippet` — the three-layer graph view of Figure 3
  (facts / meta-data schema / hierarchy).
"""

from repro.ui.search_view import render_search_results
from repro.ui.lineage_view import render_lineage_panes, render_trace
from repro.ui.graph_view import render_graph_snippet
from repro.ui.landscape_view import render_landscape_overview

__all__ = [
    "render_graph_snippet",
    "render_landscape_overview",
    "render_lineage_panes",
    "render_search_results",
    "render_trace",
]
