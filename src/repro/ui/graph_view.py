"""The Figure 3 pane: the three-layer view of a graph snippet.

Figure 3 draws the meta-data warehouse with the hierarchy on top, the
meta-data schema in the middle, and the facts at the bottom. This
renderer classifies every edge of a (small) graph against Table I and
prints it under its layer.
"""

from __future__ import annotations

from typing import List

from repro.core.model import EdgeCategory, classify_edge, TableIViolation
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager, DM, DT
from repro.rdf.terms import Literal, Term

from repro.core.vocabulary import MDW


def _default_nsm() -> NamespaceManager:
    nsm = NamespaceManager()
    nsm.bind("dm", DM)
    nsm.bind("dt", DT)
    nsm.bind("mdw", MDW)
    nsm.bind("cs", "http://www.credit-suisse.com/dwh/")
    return nsm


def _term_text(term: Term, nsm: NamespaceManager) -> str:
    if isinstance(term, Literal):
        return f'"{term.lexical}"'
    compacted = nsm.compact(term) if hasattr(term, "value") else None
    return compacted or term.n3()


def render_graph_snippet(
    graph: Graph,
    nsm: NamespaceManager = None,
    max_edges_per_layer: int = 30,
) -> str:
    """Render a graph in Figure 3's three layers (top to bottom:
    hierarchies, meta-data schema, facts)."""
    nsm = nsm or _default_nsm()
    layers = {category: [] for category in EdgeCategory}
    violations: List[str] = []
    for triple in graph:
        line = (
            f"{_term_text(triple.subject, nsm)} "
            f"--{_term_text(triple.predicate, nsm)}--> "
            f"{_term_text(triple.object, nsm)}"
        )
        try:
            classification = classify_edge(graph, triple)
        except TableIViolation:
            violations.append(line)
            continue
        layers[classification.category].append(line)

    lines: List[str] = []
    for category in (EdgeCategory.HIERARCHY, EdgeCategory.SCHEMA, EdgeCategory.FACTS):
        edges = sorted(layers[category])
        title = category.value.upper()
        lines.append(f"=== {title} ({len(edges)} edge(s)) ===")
        for edge in edges[:max_edges_per_layer]:
            lines.append(f"  {edge}")
        if len(edges) > max_edges_per_layer:
            lines.append(f"  ... {len(edges) - max_edges_per_layer} more")
        lines.append("")
    if violations:
        lines.append(f"=== OUTSIDE TABLE I ({len(violations)}) ===")
        lines.extend(f"  {v}" for v in sorted(violations))
    return "\n".join(lines).rstrip() + "\n"
