"""The Figure 7 panes: provenance drill-down, sources left, targets right."""

from __future__ import annotations

from typing import Optional

from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.rdf.terms import Literal, Term

from repro.services.lineage import LineageTrace


def _name(warehouse: MetadataWarehouse, item: Term) -> str:
    value = warehouse.graph.value(item, TERMS.has_name, None)
    if isinstance(value, Literal):
        return value.lexical
    return getattr(item, "local_name", item.n3())


def render_lineage_panes(
    warehouse: MetadataWarehouse,
    source_granularity: int = 0,
    target_granularity: int = 0,
    source_scope: Optional[Term] = None,
    target_scope: Optional[Term] = None,
    width: int = 76,
    max_rows: int = 20,
) -> str:
    """Render the two-pane data-flow view of Figure 7.

    Each row is one aggregated flow: the source container on the left,
    the target container on the right, and the number of attribute-level
    mappings it aggregates in the middle. Granularity and scope work per
    side, like the tool's drill-down actions.
    """
    flows = warehouse.lineage.flows(
        source_granularity=source_granularity,
        target_granularity=target_granularity,
        source_scope=source_scope,
        target_scope=target_scope,
    )
    half = (width - 14) // 2
    header = (
        f"{'SOURCE OBJECTS':<{half}} {'flows':^10} {'TARGET OBJECTS':<{half}}"
    )
    lines = [
        f"Data Flow — source granularity {source_granularity}, "
        f"target granularity {target_granularity}",
        header,
        "-" * width,
    ]
    if not flows:
        lines.append("  (no data flows in scope)")
        return "\n".join(lines)
    for source, target, count in flows[:max_rows]:
        s = _name(warehouse, source)[:half]
        t = _name(warehouse, target)[:half]
        lines.append(f"{s:<{half}} {'-- ' + str(count) + ' ->':^10} {t:<{half}}")
    if len(flows) > max_rows:
        lines.append(f"  ... {len(flows) - max_rows} more flow(s)")
    return "\n".join(lines)


def render_trace(warehouse: MetadataWarehouse, trace: LineageTrace, width: int = 76) -> str:
    """Render one lineage trace as an indented tree by depth."""
    direction = "⇐ sources" if trace.direction == "upstream" else "⇒ dependents"
    lines = [
        f"Lineage of {_name(warehouse, trace.start)} ({trace.direction}, {direction})",
        "-" * width,
    ]
    by_depth = {}
    for item, depth in trace.depth.items():
        by_depth.setdefault(depth, []).append(item)
    for depth in sorted(by_depth):
        for item in sorted(by_depth[depth], key=lambda t: t.sort_key()):
            marker = "*" if item == trace.start else "-"
            lines.append(f"{'  ' * depth}{marker} {_name(warehouse, item)}")
    conditions = sorted({e.condition for e in trace.edges if e.condition})
    if conditions:
        lines.append(f"rule conditions on path: {', '.join(conditions)}")
    return "\n".join(lines)
