"""The Figure 6 pane: search results grouped by class with counts."""

from __future__ import annotations

from typing import Optional

from repro.services.search import SearchResults


def render_search_results(
    results: SearchResults,
    expand: Optional[str] = None,
    width: int = 60,
) -> str:
    """Render the grouped result list of Figure 6.

    ``expand`` names a group label to expand (the user clicking a row),
    listing its member instances underneath.
    """
    lines = [f'Search Results for "{results.term}"']
    if len(results.expanded_terms) > 1:
        lines.append("  (expanded: " + ", ".join(results.expanded_terms) + ")")
    if results.homonym_warnings:
        lines.append(
            "  (warning: homonyms exist — " + ", ".join(results.homonym_warnings) + ")"
        )
    lines.append("-" * width)
    if not results:
        lines.append("  no results")
        return "\n".join(lines)
    for cls, label, count in results.groups():
        lines.append(f"  {label:<{width - 12}} ({count})")
        if expand is not None and label == expand:
            for hit in sorted(
                results.group_members(cls), key=lambda h: h.name
            ):
                lines.append(f"      {hit.name}")
    lines.append("-" * width)
    lines.append(f"  {len(results)} distinct item(s)")
    return "\n".join(lines)
