"""The Figure 1 / Figure 9 pane: the subject areas of the IT landscape.

Applications sit in the center of Figure 1, surrounded by the other
subject areas; Figure 9 adds the extended scope. The renderer draws the
generated landscape in the same arrangement, with entity counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: (title, [subject-area keys]) in display order — the Figure 1 ring.
CORE_BLOCKS: Sequence[Tuple[str, Sequence[str]]] = (
    ("Applications", ("applications",)),
    ("Databases", ("databases",)),
    ("Data Definitions", ("schemas", "tables", "columns", "files")),
    ("Interfaces", ("interfaces",)),
    ("Data Flows", ("data flows", "staging columns", "integration columns")),
    ("Roles", ("roles", "users")),
    ("Business Concepts", ("domains", "conceptual entities", "conceptual attributes")),
    ("Reports", ("reports", "report attributes")),
)

#: the Figure 9 additions
EXTENDED_BLOCKS: Sequence[Tuple[str, Sequence[str]]] = (
    ("Logs", ("log files",)),
    ("Technical Components", ("technical components", "component links")),
    ("Data Governance", ("governance links",)),
)


def render_landscape_overview(
    subject_area_counts: Dict[str, int],
    title: str = "IT landscape subject areas (Figure 1)",
    width: int = 64,
) -> str:
    """Render per-subject-area counts in the Figure 1 arrangement.

    Extended-scope blocks appear automatically when their counts are
    present (i.e. the Figure 9 variant of the landscape).
    """
    lines: List[str] = [title, "=" * min(width, len(title))]

    def emit(block_title: str, keys: Sequence[str]) -> bool:
        present = [(key, subject_area_counts[key]) for key in keys if key in subject_area_counts]
        if not present:
            return False
        total = sum(count for _, count in present)
        lines.append(f"[ {block_title} — {total} ]")
        for key, count in present:
            lines.append(f"    {key:<28} {count:>8}")
        return True

    for block_title, keys in CORE_BLOCKS:
        emit(block_title, keys)

    extended_rendered = False
    for block_title, keys in EXTENDED_BLOCKS:
        if any(key in subject_area_counts for key in keys):
            if not extended_rendered:
                lines.append("")
                lines.append("-- extended scope (Figure 9) --")
                extended_rendered = True
            emit(block_title, keys)

    leftovers = set(subject_area_counts) - {
        key for _, keys in (*CORE_BLOCKS, *EXTENDED_BLOCKS) for key in keys
    }
    if leftovers:
        lines.append("")
        lines.append("[ Other ]")
        for key in sorted(leftovers):
            lines.append(f"    {key:<28} {subject_area_counts[key]:>8}")
    return "\n".join(lines)
