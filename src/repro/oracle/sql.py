"""Parser/executor for the SQL-wrapped ``SEM_MATCH`` form of the paper.

Listings 1 and 2 of the paper are Oracle SQL statements of the shape::

    SELECT class, object
    FROM TABLE(
      SEM_MATCH(
        {?object rdf:type ?c . ... ?object dm:hasName ?term} ,
        SEM_MODELS('DWH_CURR') ,
        SEM_RULEBASES('OWLPRIME') ,
        SEM_ALIASES( SEM_ALIAS('dm', 'http://...'), ... ) ,
        null )
    WHERE regexp_like(term, 'customer', 'i')
    GROUP BY class, object

:func:`execute_sem_sql` runs such a statement against a
:class:`~repro.rdf.TripleStore`. The parser is deliberately tolerant of
the irregularities in the printed listings (missing commas, unbalanced
``TABLE(`` parentheses) — the goal is that the listings run verbatim.

SQL semantics replicated:

* result columns are the SQL identifiers (``class``), bound from the
  SPARQL variables of the same name (``?class``);
* ``WHERE`` conditions compare *string values* of terms, so
  ``source_id = 'http://...'`` matches an IRI-valued variable;
* ``GROUP BY`` without aggregates deduplicates, as in the listings;
* ``COUNT(*)`` / ``COUNT(col)`` with ``GROUP BY`` gives grouped counts
  (used by the Figure 6 style result lists).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal
from repro.sparql.errors import ExpressionError
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    Expression,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
    compile_regex,
    effective_boolean_value,
)
from repro.sparql.results import Row, SolutionSequence
from repro.sparql.tokenizer import Token, tokenize

from repro.oracle.sem_apis import SemAlias
from repro.oracle.sem_match import sem_match


class SemSqlError(ValueError):
    """A malformed SEM_MATCH SQL statement."""


@dataclass
class SemSqlQuery:
    """The parsed form of a SEM_MATCH SQL statement."""

    columns: List[str]
    count_columns: List[Tuple[str, str]] = field(default_factory=list)  # (arg, alias)
    pattern: str = ""
    models: List[str] = field(default_factory=list)
    rulebases: List[str] = field(default_factory=list)
    aliases: List[SemAlias] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[str] = field(default_factory=list)
    order_by: List[str] = field(default_factory=list)


def parse_sem_sql(sql: str) -> SemSqlQuery:
    """Parse a SEM_MATCH SQL statement into a :class:`SemSqlQuery`."""
    select_match = re.search(r"\bSELECT\b", sql, re.IGNORECASE)
    from_match = re.search(r"\bFROM\b", sql, re.IGNORECASE)
    if not select_match or not from_match or from_match.start() < select_match.end():
        raise SemSqlError("statement must have the form SELECT ... FROM TABLE(SEM_MATCH(...))")
    columns_text = sql[select_match.end() : from_match.start()]
    columns, counts = _parse_select_list(columns_text)

    brace_open = sql.find("{", from_match.end())
    if brace_open == -1:
        raise SemSqlError("SEM_MATCH pattern (braces block) not found")
    brace_close = _matching_brace(sql, brace_open)
    pattern = sql[brace_open : brace_close + 1]

    tail = sql[brace_close + 1 :]
    models = _string_args(tail, "SEM_MODELS")
    if not models:
        raise SemSqlError("SEM_MODELS(...) with at least one model is required")
    rulebases = _string_args(tail, "SEM_RULEBASES")
    aliases = [
        SemAlias(prefix, ns)
        for prefix, ns in re.findall(
            r"SEM_ALIAS\s*\(\s*'([^']*)'\s*,\s*'([^']*)'\s*\)", tail, re.IGNORECASE
        )
    ]

    where_expr = None
    group_by: List[str] = []
    order_by: List[str] = []
    where_match = re.search(r"\bWHERE\b", tail, re.IGNORECASE)
    group_match = re.search(r"\bGROUP\s+BY\b", tail, re.IGNORECASE)
    order_match = re.search(r"\bORDER\s+BY\b", tail, re.IGNORECASE)
    if where_match:
        end = min(
            (m.start() for m in (group_match, order_match) if m),
            default=len(tail),
        )
        where_expr = _parse_sql_expression(tail[where_match.end() : end])
    if group_match:
        end = order_match.start() if order_match else len(tail)
        group_by = _identifier_list(tail[group_match.end() : end])
    if order_match:
        order_by = _identifier_list(tail[order_match.end() :])

    return SemSqlQuery(
        columns=columns,
        count_columns=counts,
        pattern=pattern,
        models=models,
        rulebases=rulebases,
        aliases=aliases,
        where=where_expr,
        group_by=group_by,
        order_by=order_by,
    )


def execute_sem_sql(
    store: TripleStore, sql: str, strategy=None, plan_cache=None
) -> SolutionSequence:
    """Parse and execute a SEM_MATCH SQL statement against ``store``.

    ``strategy`` and ``plan_cache`` pass through to :func:`sem_match`.
    """
    query = parse_sem_sql(sql)
    raw = sem_match(
        query.pattern,
        store,
        models=query.models,
        rulebases=query.rulebases,
        aliases=query.aliases,
        strategy=strategy,
        plan_cache=plan_cache,
        eq_hints=_equality_hints(query.where),
    )

    rows = list(raw.iter_bindings())
    if query.where is not None:
        predicate = _compile_row_predicate(query.where)
        if predicate is None:
            predicate = lambda r: _sql_test(query.where, r)  # noqa: E731
        rows = [r for r in rows if predicate(r)]

    out_columns = list(query.columns) + [alias for _, alias in query.count_columns]

    if query.count_columns:
        grouped: Dict[tuple, List[dict]] = {}
        order: List[tuple] = []
        for r in rows:
            key = tuple(r.get(c) for c in query.group_by)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(r)
        result_rows = []
        for key in order:
            members = grouped[key]
            out = {c: v for c, v in zip(query.group_by, key) if v is not None}
            for arg, alias in query.count_columns:
                if arg == "*":
                    out[alias] = Literal(len(members))
                else:
                    out[alias] = Literal(sum(1 for m in members if m.get(arg) is not None))
            result_rows.append(out)
        rows = result_rows
    else:
        projected = []
        for r in rows:
            out = {}
            for c in query.columns:
                v = r.get(c)
                if v is not None:
                    out[c] = v
            projected.append(out)
        if query.group_by:
            seen = set()
            deduped = []
            for r in projected:
                key = frozenset(r.items())
                if key not in seen:
                    seen.add(key)
                    deduped.append(r)
            rows = deduped
        else:
            rows = projected

    for col in reversed(query.order_by):
        rows.sort(
            key=lambda r: (r.get(col) is None, r.get(col).sort_key() if r.get(col) is not None else ())
        )
    return SolutionSequence(out_columns, [Row.adopt(r) for r in rows])


# ---------------------------------------------------------------------------
# Pieces
# ---------------------------------------------------------------------------


def _parse_select_list(text: str) -> Tuple[List[str], List[Tuple[str, str]]]:
    columns: List[str] = []
    counts: List[Tuple[str, str]] = []
    for raw in text.split(","):
        item = raw.strip()
        if not item:
            continue
        count = re.fullmatch(
            r"COUNT\s*\(\s*(\*|[A-Za-z_][A-Za-z0-9_]*)\s*\)(?:\s+AS\s+([A-Za-z_][A-Za-z0-9_]*))?",
            item,
            re.IGNORECASE,
        )
        if count:
            arg = count.group(1)
            alias = count.group(2) or ("cnt" if arg == "*" else f"count_{arg}")
            counts.append((arg, alias))
            continue
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", item):
            raise SemSqlError(f"unsupported select item: {item!r}")
        columns.append(item)
    if not columns and not counts:
        raise SemSqlError("empty select list")
    return columns, counts


def _matching_brace(text: str, open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise SemSqlError("unbalanced braces in SEM_MATCH pattern")


def _string_args(text: str, function: str) -> List[str]:
    match = re.search(function + r"\s*\(([^)]*)\)", text, re.IGNORECASE)
    if not match:
        return []
    return re.findall(r"'([^']*)'", match.group(1))


def _identifier_list(text: str) -> List[str]:
    text = text.strip().rstrip(";")
    if not text:
        return []
    items = [i.strip() for i in text.split(",")]
    for item in items:
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", item):
            raise SemSqlError(f"bad identifier in list: {item!r}")
    return items


def _sql_test(expr: Expression, binding: dict) -> bool:
    try:
        return effective_boolean_value(expr.evaluate(binding))
    except ExpressionError:
        return False


# -- compiled WHERE predicates ------------------------------------------------
#
# The WHERE clause runs once per raw SEM_MATCH row; the listings' shapes
# (regexp_like on a column, column = 'string', AND/OR/NOT combinations)
# compile to direct closures, sparing the expression-tree walk per row.
# Anything else falls back to _sql_test with identical semantics
# (evaluation errors — e.g. an unbound column — test as False).


def _string_of(term) -> Optional[str]:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    return None


def _column_of(expr: Expression) -> Optional[str]:
    """The column name behind ``col`` or ``str(col)``, if that shape."""
    if isinstance(expr, VarExpr):
        return expr.name
    if (
        isinstance(expr, FunctionExpr)
        and expr.name == "str"
        and len(expr.args) == 1
        and isinstance(expr.args[0], VarExpr)
    ):
        return expr.args[0].name
    return None


def _string_const_of(expr: Expression) -> Optional[str]:
    # numeric constants compare numerically ("25" vs "25.0"), so only
    # plain string constants take the fast path
    if (
        isinstance(expr, ConstExpr)
        and isinstance(expr.term, Literal)
        and not expr.term.is_numeric()
    ):
        return expr.term.lexical
    return None


def _equality_hints(expr: Optional[Expression]) -> Dict[str, str]:
    """Column → string constant for the WHERE clause's AND'ed equalities.

    Candidates for predicate pushdown into SEM_MATCH: every conjunct of
    the shape ``col = 'const'`` reachable through top-level ``AND``s.
    Only plain columns and non-numeric string constants qualify (the
    same restriction as the compiled fast path). The full WHERE clause
    still runs afterwards, so over-collection here cannot change
    results — :func:`repro.oracle.sem_match.sem_match` independently
    verifies each hint is safe to bind.
    """
    hints: Dict[str, str] = {}

    def walk(e: Expression) -> None:
        if not isinstance(e, BinaryExpr):
            return
        if e.op == "&&":
            walk(e.left)
            walk(e.right)
            return
        if e.op != "=":
            return
        column = _column_of(e.left)
        constant = _string_const_of(e.right)
        if column is None or constant is None:
            column = _column_of(e.right)
            constant = _string_const_of(e.left)
        if column is not None and constant is not None and column not in hints:
            hints[column] = constant

    if expr is not None:
        walk(expr)
    return hints


def _compile_row_predicate(expr: Expression):
    """A fast row predicate for the common WHERE shapes, else None."""
    if isinstance(expr, UnaryExpr) and expr.op == "!":
        inner = _compile_row_predicate(expr.operand)
        if inner is None:
            return None
        return lambda row: not inner(row)
    if isinstance(expr, BinaryExpr):
        if expr.op in ("&&", "||"):
            left = _compile_row_predicate(expr.left)
            right = _compile_row_predicate(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "&&":
                return lambda row: left(row) and right(row)
            return lambda row: left(row) or right(row)
        if expr.op in ("=", "!="):
            column = _column_of(expr.left)
            constant = _string_const_of(expr.right)
            if column is None or constant is None:
                column = _column_of(expr.right)
                constant = _string_const_of(expr.left)
            if column is None or constant is None:
                return None
            negate = expr.op == "!="
            def compare(row, column=column, constant=constant, negate=negate):
                value = _string_of(row.get(column))
                if value is None:
                    return False  # unbound or blank: evaluation error
                return (value != constant) if negate else (value == constant)
            return compare
        return None
    if isinstance(expr, FunctionExpr) and expr.name == "regex":
        if len(expr.args) not in (2, 3):
            return None
        column = _column_of(expr.args[0])
        pattern = _string_const_of(expr.args[1])
        flags = _string_const_of(expr.args[2]) if len(expr.args) == 3 else ""
        if column is None or pattern is None or flags is None:
            return None
        try:
            compiled = compile_regex(pattern, flags)
        except ExpressionError:
            return None
        search = compiled.search
        def match(row, column=column):
            value = _string_of(row.get(column))
            return value is not None and search(value) is not None
        return match
    return None


# -- SQL expression parsing ---------------------------------------------------
#
# SQL WHERE conditions are parsed with the SPARQL tokenizer (it accepts
# single-quoted strings) into repro.sparql expression trees. Column
# identifiers become variables; comparisons against string constants are
# wrapped in str() so they match IRI-valued variables by IRI text, the
# way Listing 2 compares source_id against a plain URL string.


def _parse_sql_expression(text: str) -> Expression:
    text = text.strip().rstrip(";")
    parser = _SqlExprParser(tokenize(text))
    expr = parser.parse_or()
    parser.expect_eof()
    return expr


class _SqlExprParser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect_eof(self) -> None:
        if self.peek().kind != "EOF":
            raise SemSqlError(f"trailing tokens in WHERE clause: {self.peek().value!r}")

    def at_word(self, word: str) -> bool:
        tok = self.peek()
        return tok.kind in ("NAME", "KEYWORD") and tok.value.upper() == word

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.at_word("OR"):
            self.next()
            left = BinaryExpr("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.at_word("AND"):
            self.next()
            left = BinaryExpr("&&", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.at_word("NOT"):
            self.next()
            return UnaryExpr("!", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_primary()
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value in ("=", "!=", "<", ">", "<=", ">="):
            op = self.next().value
            # SQL's <> not-equal arrives as two tokens
            if op == "<" and self.peek().matches("PUNCT", ">"):
                self.next()
                op = "!="
            right = self.parse_primary()
            return _build_comparison(op, left, right)
        return left

    def parse_primary(self) -> Expression:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "(":
            self.next()
            expr = self.parse_or()
            if not self.peek().matches("PUNCT", ")"):
                raise SemSqlError("expected ')'")
            self.next()
            return expr
        if tok.kind == "STRING":
            self.next()
            return ConstExpr(Literal(tok.value))
        if tok.kind == "NUMBER":
            self.next()
            if "." in tok.value:
                return ConstExpr(Literal(float(tok.value)))
            return ConstExpr(Literal(int(tok.value)))
        if tok.kind == "VAR":
            # tolerate SPARQL-style ?var in the SQL clause
            self.next()
            return VarExpr(tok.value)
        if tok.kind in ("NAME", "KEYWORD"):
            self.next()
            if self.peek().matches("PUNCT", "("):
                return self.parse_function_call(tok.value)
            if tok.value.upper() == "NULL":
                raise SemSqlError("NULL comparisons are not supported; omit the row instead")
            return VarExpr(tok.value)
        raise SemSqlError(f"unexpected token {tok.value or tok.kind!r} in WHERE clause")

    def parse_function_call(self, name: str) -> Expression:
        self.next()  # '('
        args: List[Expression] = []
        if not self.peek().matches("PUNCT", ")"):
            args.append(self.parse_or())
            while self.peek().matches("PUNCT", ","):
                self.next()
                args.append(self.parse_or())
        if not self.peek().matches("PUNCT", ")"):
            raise SemSqlError("expected ')' after function arguments")
        self.next()
        if name.lower() in ("regexp_like", "regex"):
            # Oracle applies regexp_like to the string value of the column.
            if args and isinstance(args[0], VarExpr):
                args[0] = FunctionExpr("str", [args[0]])
            return FunctionExpr("regex", args)
        return FunctionExpr(name, args)


def _build_comparison(op: str, left: Expression, right: Expression) -> Expression:
    def is_string_const(e: Expression) -> bool:
        return (
            isinstance(e, ConstExpr)
            and isinstance(e.term, Literal)
            and not e.term.is_numeric()
        )

    if is_string_const(left) and isinstance(right, VarExpr):
        right = FunctionExpr("str", [right])
    if is_string_const(right) and isinstance(left, VarExpr):
        left = FunctionExpr("str", [left])
    return BinaryExpr(op, left, right)
