"""Oracle Spatial / Semantic Web facade.

The paper's productive system queries the meta-data warehouse through
Oracle's ``SEM_MATCH`` table function (Listings 1 and 2). This package
replicates that API surface over :mod:`repro.rdf` and
:mod:`repro.sparql`:

* :func:`sem_match` — the programmatic entry point with ``SEM_MODELS``,
  ``SEM_RULEBASES`` and ``SEM_ALIASES`` arguments;
* :func:`execute_sem_sql` — a parser/executor for the SQL-wrapper form,
  tolerant enough that both listings from the paper run verbatim.
"""

from repro.oracle.sem_apis import SEM_ALIAS, SEM_ALIASES, SEM_MODELS, SEM_RULEBASES
from repro.oracle.sem_match import sem_match
from repro.oracle.sql import SemSqlError, execute_sem_sql, parse_sem_sql

__all__ = [
    "SEM_ALIAS",
    "SEM_ALIASES",
    "SEM_MODELS",
    "SEM_RULEBASES",
    "SemSqlError",
    "execute_sem_sql",
    "parse_sem_sql",
    "sem_match",
]
