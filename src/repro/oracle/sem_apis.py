"""Constructors mirroring Oracle's SEM_* helper types.

These exist so Python call sites read like the paper's listings::

    sem_match(
        '{?object rdf:type ?c . ?object dm:hasName ?term}',
        store,
        SEM_MODELS('DWH_CURR'),
        SEM_RULEBASES('OWLPRIME'),
        SEM_ALIASES(SEM_ALIAS('dm', 'http://.../data_modeling#')),
    )
"""

from __future__ import annotations

from typing import NamedTuple, Tuple


class SemAlias(NamedTuple):
    prefix: str
    namespace: str


def SEM_ALIAS(prefix: str, namespace: str) -> SemAlias:
    """One prefix binding, as in ``SEM_ALIAS('dm', 'http://...#')``."""
    return SemAlias(prefix, namespace)


def SEM_ALIASES(*aliases: SemAlias) -> Tuple[SemAlias, ...]:
    """A collection of prefix bindings."""
    return tuple(aliases)


def SEM_MODELS(*names: str) -> Tuple[str, ...]:
    """The models a query reads, e.g. ``SEM_MODELS('DWH_CURR')``."""
    if not names:
        raise ValueError("SEM_MODELS requires at least one model name")
    return tuple(names)


def SEM_RULEBASES(*names: str) -> Tuple[str, ...]:
    """The entailment rulebases whose indexes the query may use."""
    return tuple(names)
