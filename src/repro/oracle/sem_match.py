"""The programmatic ``SEM_MATCH`` entry point.

``sem_match`` evaluates a SPARQL graph-pattern string against the named
models of a :class:`~repro.rdf.TripleStore`. When rulebases are named,
the matching entailment indexes are stacked into the queried view —
derived triples are visible to this query and this query only, exactly
as in Section III.B of the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rdf.namespace import NamespaceManager
from repro.rdf.store import TripleStore
from repro.sparql import execute
from repro.sparql.results import SolutionSequence

from repro.oracle.sem_apis import SemAlias


def sem_match(
    pattern: str,
    store: TripleStore,
    models: Sequence[str],
    rulebases: Sequence[str] = (),
    aliases: Sequence[SemAlias] = (),
    filter_condition: Optional[str] = None,
    projection: Optional[Sequence[str]] = None,
    distinct: bool = False,
) -> SolutionSequence:
    """Match a SPARQL graph pattern against ``models`` of ``store``.

    Parameters
    ----------
    pattern:
        The graph pattern, braces included — e.g.
        ``'{?object rdf:type ?c . ?object dm:hasName ?term}'``.
    models:
        Model names, as from :func:`SEM_MODELS`.
    rulebases:
        Rulebase names, as from :func:`SEM_RULEBASES`; each contributes
        its entailment index when one has been attached to the store.
    aliases:
        Prefix bindings, as from :func:`SEM_ALIASES`. ``rdf``, ``rdfs``,
        ``owl`` and ``xsd`` are always pre-bound.
    filter_condition:
        Optional SPARQL expression text, applied as a FILTER inside the
        pattern — e.g. ``'regex(?term, "customer", "i")'``.
    projection:
        Variables to project (without ``?``); all variables when omitted.
    distinct:
        Deduplicate projected rows.
    """
    pattern = pattern.strip()
    if not (pattern.startswith("{") and pattern.endswith("}")):
        raise ValueError("SEM_MATCH pattern must be enclosed in braces")

    nsm = NamespaceManager()
    for alias in aliases:
        nsm.bind(alias.prefix, alias.namespace)

    body = pattern[1:-1]
    if filter_condition:
        body += f" FILTER ({filter_condition})"
    select = "*" if not projection else " ".join(f"?{v.lstrip('?')}" for v in projection)
    keyword = "SELECT DISTINCT" if distinct else "SELECT"
    query_text = f"{keyword} {select} WHERE {{ {body} }}"

    view = store.view(list(models), rulebases=list(rulebases))
    return execute(view, query_text, nsm=nsm)
