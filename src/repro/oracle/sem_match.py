"""The programmatic ``SEM_MATCH`` entry point.

``sem_match`` evaluates a SPARQL graph-pattern string against the named
models of a :class:`~repro.rdf.TripleStore`. When rulebases are named,
the matching entailment indexes are stacked into the queried view —
derived triples are visible to this query and this query only, exactly
as in Section III.B of the paper.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.rdf.namespace import NamespaceManager
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Term, Variable
from repro.sparql.algebra import BGP, Filter, SelectQuery
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.sparql.results import SolutionSequence

from repro.oracle.sem_apis import SemAlias


def sem_match(
    pattern: str,
    store: TripleStore,
    models: Sequence[str],
    rulebases: Sequence[str] = (),
    aliases: Sequence[SemAlias] = (),
    filter_condition: Optional[str] = None,
    projection: Optional[Sequence[str]] = None,
    distinct: bool = False,
    strategy: Optional[str] = None,
    plan_cache=None,
    eq_hints: Optional[Mapping[str, str]] = None,
) -> SolutionSequence:
    """Match a SPARQL graph pattern against ``models`` of ``store``.

    Parameters
    ----------
    pattern:
        The graph pattern, braces included — e.g.
        ``'{?object rdf:type ?c . ?object dm:hasName ?term}'``.
    models:
        Model names, as from :func:`SEM_MODELS`.
    rulebases:
        Rulebase names, as from :func:`SEM_RULEBASES`; each contributes
        its entailment index when one has been attached to the store.
    aliases:
        Prefix bindings, as from :func:`SEM_ALIASES`. ``rdf``, ``rdfs``,
        ``owl`` and ``xsd`` are always pre-bound.
    filter_condition:
        Optional SPARQL expression text, applied as a FILTER inside the
        pattern — e.g. ``'regex(?term, "customer", "i")'``.
    projection:
        Variables to project (without ``?``); all variables when omitted.
    distinct:
        Deduplicate projected rows.
    strategy:
        Physical BGP execution strategy (see
        :data:`repro.sparql.evaluator.STRATEGIES`); adaptive by default.
    plan_cache:
        Optional :class:`~repro.sparql.PlanCache`; reuses the parsed
        query and join order across repeated calls.
    eq_hints:
        Variable-name → string-constant equality predicates from an
        enclosing SQL WHERE clause (see
        :func:`repro.oracle.sql.execute_sem_sql`). Hints proven safe are
        pushed down as initial bindings so a selective probe (the
        Listing 2 lineage shape) runs as a bind-join instead of scanning
        the whole pattern and filtering afterwards. Pushdown is skipped
        for the ``nested-loop`` strategy, which reproduces the
        pre-optimization execution end to end.
    """
    pattern = pattern.strip()
    if not (pattern.startswith("{") and pattern.endswith("}")):
        raise ValueError("SEM_MATCH pattern must be enclosed in braces")

    nsm = NamespaceManager()
    for alias in aliases:
        nsm.bind(alias.prefix, alias.namespace)

    body = pattern[1:-1]
    if filter_condition:
        body += f" FILTER ({filter_condition})"
    select = "*" if not projection else " ".join(f"?{v.lstrip('?')}" for v in projection)
    keyword = "SELECT DISTINCT" if distinct else "SELECT"
    query_text = f"{keyword} {select} WHERE {{ {body} }}"

    view = store.view(list(models), rulebases=list(rulebases))
    want_pushdown = bool(eq_hints) and strategy != "nested-loop"

    if plan_cache is not None:
        bindings = None
        if want_pushdown:
            parsed = plan_cache.parse(query_text, nsm=nsm)
            bindings = _pushdown_bindings(parsed, eq_hints)
        return plan_cache.execute(
            view, query_text, nsm=nsm, bindings=bindings, strategy=strategy
        )

    query = parse_query(query_text, nsm=nsm)
    bindings = _pushdown_bindings(query, eq_hints) if want_pushdown else None
    return evaluate(view, query, initial_bindings=bindings, strategy=strategy)


def _pushdown_bindings(query, hints: Mapping[str, str]) -> Optional[Dict[str, Term]]:
    """Initial bindings for the hints that are provably safe to push.

    A hint ``var = 'X'`` may only be bound when ``var`` occurs in the
    pattern exclusively in subject or predicate position: there the
    matching term can only be an IRI (a blank node never string-equals a
    constant under SQL comparison semantics), so binding ``IRI(X)``
    keeps exactly the solutions the residual WHERE clause would keep.
    Object positions can match literals of any datatype with the same
    lexical form, so those hints stay at the SQL layer. Restricted to
    pure basic graph patterns (an optional FILTER wrapper is fine;
    OPTIONAL/UNION/paths change multiplicity or bind conditionally).
    """
    if not isinstance(query, SelectQuery):
        return None
    pattern = query.pattern
    while isinstance(pattern, Filter):
        pattern = pattern.pattern
    if not isinstance(pattern, BGP) or pattern.paths:
        return None

    subject_side: set = set()
    object_side: set = set()
    for triple in pattern.patterns:
        for position, term in enumerate(triple):
            if isinstance(term, Variable):
                (object_side if position == 2 else subject_side).add(term.name)

    bindings = {
        name: IRI(value)
        for name, value in hints.items()
        if name in subject_side and name not in object_side
    }
    return bindings or None
