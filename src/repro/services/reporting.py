"""Report-developer support — the use case "under development" (IV).

"An important use case that is currently under development and that
extends the search facility [...] is to provide more powerful tools to
developers in order to program new reports."

Given the business terms a new report needs, the assistant finds
candidate source items (via search with synonym expansion), ranks them
by how far down the cleansing pipeline they live (mart beats integration
beats inbound — later areas carry better quality), and reports each
candidate's provenance so the developer can judge trustworthiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rdf.terms import Term

from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.services.lineage import LineageService
from repro.services.search import SearchFilters, SearchService

#: pipeline position score: later areas are cleansed + aggregated
_AREA_SCORE = {
    TERMS.area_mart: 3,
    TERMS.area_integration: 2,
    TERMS.area_inbound: 1,
}


@dataclass(frozen=True)
class SourceCandidate:
    """One candidate item for a report term."""

    term: str
    item: Term
    name: str
    area: Optional[Term]
    area_score: int
    provenance_depth: int     # how many upstream stages feed it
    source_count: int         # distinct upstream endpoints
    quality: Optional[float] = None   # mdw:qualityScore, when recorded
    freshness: Optional[str] = None   # mdw:freshness, when recorded

    @property
    def rank_key(self):
        # later pipeline areas first (cleansed + aggregated), then the
        # explicit quality guarantee, then richer provenance
        return (
            -self.area_score,
            -(self.quality if self.quality is not None else 0.0),
            -self.provenance_depth,
            self.name,
        )


@dataclass
class ReportPlan:
    """The assistant's answer for one report."""

    terms: Sequence[str]
    candidates: Dict[str, List[SourceCandidate]] = field(default_factory=dict)
    unresolved: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.unresolved

    def best(self, term: str) -> Optional[SourceCandidate]:
        ranked = self.candidates.get(term) or []
        return ranked[0] if ranked else None

    def summary(self) -> str:
        lines = []
        for term in self.terms:
            best = self.best(term)
            if best is None:
                lines.append(f"{term}: UNRESOLVED")
            else:
                lines.append(
                    f"{term}: {best.name} "
                    f"(area score {best.area_score}, "
                    f"{best.source_count} source(s), depth {best.provenance_depth})"
                )
        return "\n".join(lines)


class ReportingAssistant:
    """Finds and ranks source items for a new report's terms."""

    def __init__(self, warehouse: MetadataWarehouse):
        self._mdw = warehouse
        self._search = SearchService(warehouse)
        self._lineage = LineageService(warehouse)

    def plan_report(
        self,
        terms: Sequence[str],
        filters: Optional[SearchFilters] = None,
        expand_synonyms: bool = True,
        max_candidates: int = 5,
    ) -> ReportPlan:
        """Build a :class:`ReportPlan` for the given business terms."""
        plan = ReportPlan(terms=list(terms))
        for term in terms:
            results = self._search.search(
                term, filters=filters, expand_synonyms=expand_synonyms
            )
            candidates = [self._assess(term, hit.instance, hit.name) for hit in results]
            candidates.sort(key=lambda c: c.rank_key)
            if candidates:
                plan.candidates[term] = candidates[:max_candidates]
            else:
                plan.unresolved.append(term)
        return plan

    def _assess(self, term: str, item: Term, name: str) -> SourceCandidate:
        area = self._mdw.graph.value(item, TERMS.in_area, None)
        trace = self._lineage.upstream(item)
        return SourceCandidate(
            term=term,
            item=item,
            name=name,
            area=area,
            area_score=_AREA_SCORE.get(area, 0),
            provenance_depth=trace.max_depth(),
            source_count=len(trace.endpoints() - {item}),
            quality=self._mdw.facts.quality_of(item),
            freshness=self._mdw.facts.freshness_of(item),
        )
