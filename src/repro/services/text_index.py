"""An inverted index over item names — the search accelerator.

The search facility matches ``dm:hasName`` values by substring. Scanning
every instance works, but at the paper's scale (~100k named items) each
search pays a full pass. :class:`NameIndex` inverts the relation once —
distinct lowercase name → the instances carrying it — so a search scans
only the *vocabulary* (a few thousand distinct names; column names
repeat heavily across a bank's tables) instead of every instance.

The index subscribes to the graph's change notifications, so loads,
updates, and retirements keep it consistent automatically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Triple

from repro.core.vocabulary import TERMS


class NameIndex:
    """name-literal → instances, with substring lookup over the vocabulary."""

    def __init__(self, graph: Graph, auto_maintain: bool = True):
        self._graph = graph
        self._postings: Dict[str, Set[Term]] = {}
        self._maintained = False
        self.rebuild()
        if auto_maintain:
            graph.subscribe(self._on_change)
            self._maintained = True

    def close(self) -> None:
        """Detach from the graph (stops auto-maintenance)."""
        if self._maintained:
            self._graph.unsubscribe(self._on_change)
            self._maintained = False

    # -- building ---------------------------------------------------------

    def rebuild(self) -> None:
        self._postings.clear()
        for triple in self._graph.triples(None, TERMS.has_name, None):
            if isinstance(triple.object, Literal):
                self._add(triple.subject, triple.object.lexical)

    def _on_change(self, action: str, triple: Triple) -> None:
        if triple.predicate != TERMS.has_name or not isinstance(triple.object, Literal):
            return
        if action == "add":
            self._add(triple.subject, triple.object.lexical)
        else:
            self._remove(triple.subject, triple.object.lexical)

    def _add(self, instance: Term, name: str) -> None:
        self._postings.setdefault(name.lower(), set()).add(instance)

    def _remove(self, instance: Term, name: str) -> None:
        key = name.lower()
        postings = self._postings.get(key)
        if postings is not None:
            postings.discard(instance)
            if not postings:
                del self._postings[key]

    # -- lookup -------------------------------------------------------------

    def candidates(self, term: str) -> Set[Term]:
        """Instances whose name contains ``term`` (case-insensitive)."""
        needle = term.lower()
        out: Set[Term] = set()
        for name, postings in self._postings.items():
            if needle in name:
                out |= postings
        return out

    def candidates_for_terms(self, terms: Iterable[str]) -> Set[Term]:
        out: Set[Term] = set()
        for term in terms:
            out |= self.candidates(term)
        return out

    @property
    def vocabulary_size(self) -> int:
        """Distinct names — what a lookup actually scans."""
        return len(self._postings)

    def __len__(self) -> int:
        """Total (name, instance) postings."""
        return sum(len(p) for p in self._postings.values())

    def __repr__(self) -> str:
        return (
            f"<NameIndex vocabulary={self.vocabulary_size} "
            f"postings={len(self)} maintained={self._maintained}>"
        )
