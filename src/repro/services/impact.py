"""Impact analysis: forward lineage grouped by application.

The paper's motivating example (Section I): "a (legacy) application may
have to be adapted because of new regulatory requirements [...] It is
not obvious how this change will affect concepts and reports provided by
a data warehouse." Impact analysis answers exactly that — the downstream
closure of every item an application owns, grouped by the applications
and areas it lands in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rdf.terms import Term

from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.services.lineage import ConditionFilter, LineageService


@dataclass
class ImpactReport:
    """Everything affected by changing one item (or application)."""

    changed: Term
    affected_items: Set[Term] = field(default_factory=set)
    affected_applications: Set[Term] = field(default_factory=set)
    by_area: Dict[Term, int] = field(default_factory=dict)
    max_depth: int = 0

    @property
    def blast_radius(self) -> int:
        return len(self.affected_items)

    def summary(self) -> str:
        return (
            f"changing {self.changed.n3()} affects {len(self.affected_items)} "
            f"item(s) across {len(self.affected_applications)} application(s), "
            f"max depth {self.max_depth}"
        )


class ImpactAnalysis:
    """Forward-lineage impact queries."""

    def __init__(self, warehouse: MetadataWarehouse):
        self._mdw = warehouse
        self._lineage = LineageService(warehouse)

    def of_item(
        self,
        item: Term,
        condition_filter: Optional[ConditionFilter] = None,
    ) -> ImpactReport:
        """The downstream closure of one item."""
        trace = self._lineage.downstream(item, condition_filter=condition_filter)
        report = ImpactReport(changed=item)
        report.affected_items = trace.items() - {item}
        report.max_depth = trace.max_depth()
        graph = self._mdw.graph
        for affected in report.affected_items:
            application = self._owning_application(affected)
            if application is not None:
                report.affected_applications.add(application)
            area = graph.value(affected, TERMS.in_area, None)
            if area is not None:
                report.by_area[area] = report.by_area.get(area, 0) + 1
        return report

    def of_application(
        self,
        application: Term,
        condition_filter: Optional[ConditionFilter] = None,
    ) -> ImpactReport:
        """The union of impacts of every item belonging to an application.

        Items are gathered through the ``dm:belongsTo`` containment chain
        (column → table → schema → application).
        """
        report = ImpactReport(changed=application)
        for item in self._items_of_application(application):
            item_report = self.of_item(item, condition_filter=condition_filter)
            report.affected_items |= item_report.affected_items
            report.affected_applications |= item_report.affected_applications
            report.max_depth = max(report.max_depth, item_report.max_depth)
            for area, n in item_report.by_area.items():
                report.by_area[area] = report.by_area.get(area, 0) + n
        report.affected_applications.discard(application)
        return report

    # -- helpers ----------------------------------------------------------

    def _owning_application(self, item: Term) -> Optional[Term]:
        """Walk dm:belongsTo upward to the outermost container."""
        chain = self._lineage.container_chain(item)
        return chain[-1] if len(chain) > 1 else None

    def _items_of_application(self, application: Term) -> List[Term]:
        """All items whose containment chain ends at ``application``."""
        graph = self._mdw.graph
        out: List[Term] = []
        frontier = [application]
        seen = {application}
        while frontier:
            parent = frontier.pop()
            for child in graph.subjects(TERMS.belongs_to, parent):
                if child not in seen:
                    seen.add(child)
                    out.append(child)
                    frontier.append(child)
        return out
