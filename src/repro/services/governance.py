"""Data-governance queries over the Roles subject area.

Section II: roles model both authorization and business relationships —
each application has a *business owner*, users play roles (consultant,
administrator, support, ...) for applications, and "the meta-data
warehouse needs to keep track of all these roles and their
responsibilities". The auditors' question of Section IV ("which
applications, and correspondingly which roles and users, have access to
a particular information item") combines roles with lineage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, Term, Triple

from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.services.lineage import LineageService


class GovernanceService:
    """Role/ownership queries over one warehouse."""

    def __init__(self, warehouse: MetadataWarehouse):
        self._mdw = warehouse
        self._lineage = LineageService(warehouse)

    # -- role structure -----------------------------------------------------
    #
    # encoding (see repro.synth.landscape): a role assignment node R with
    #   user --playsRole--> R, R --forApplication--> App, R dm:hasName "role name"

    def roles_of_user(self, user: Term) -> List[Term]:
        return sorted(self._mdw.graph.objects(user, TERMS.plays_role), key=lambda t: t.sort_key())

    def applications_of_user(self, user: Term) -> Set[Term]:
        out: Set[Term] = set()
        for role in self.roles_of_user(user):
            out |= set(self._mdw.graph.objects(role, TERMS.for_application))
        return out

    def users_with_access(self, application: Term) -> Set[Term]:
        """Users holding any role on ``application``."""
        graph = self._mdw.graph
        out: Set[Term] = set()
        for role in graph.subjects(TERMS.for_application, application):
            out |= set(graph.subjects(TERMS.plays_role, role))
        return out

    def owner_of(self, application: Term) -> Optional[Term]:
        """The user playing the 'business owner' role for the application."""
        graph = self._mdw.graph
        for role in graph.subjects(TERMS.for_application, application):
            name = graph.value(role, TERMS.has_name, None)
            if isinstance(name, Literal) and "owner" in name.lexical.lower():
                return graph.value(None, TERMS.plays_role, role)
        return None

    def role_name(self, role: Term) -> Optional[str]:
        name = self._mdw.graph.value(role, TERMS.has_name, None)
        return name.lexical if isinstance(name, Literal) else None

    # -- privileges (the paper's RolePrivileges property) -----------------------

    def grant(self, role: Term, privilege: str) -> None:
        """Attach a privilege to a role."""
        if not privilege:
            raise ValueError("privilege must be non-empty")
        self._mdw.graph.add(Triple(role, TERMS.has_privilege, Literal(privilege)))

    def revoke(self, role: Term, privilege: str) -> bool:
        """Remove a privilege; returns whether it was present."""
        return self._mdw.graph.discard(
            Triple(role, TERMS.has_privilege, Literal(privilege))
        )

    def privileges_of_role(self, role: Term) -> Set[str]:
        return {
            o.lexical
            for o in self._mdw.graph.objects(role, TERMS.has_privilege)
            if isinstance(o, Literal)
        }

    def privileges_of_user(self, user: Term, application: Optional[Term] = None) -> Set[str]:
        """The union of privileges the user's roles grant, optionally
        restricted to roles on one application."""
        out: Set[str] = set()
        for role in self.roles_of_user(user):
            if application is not None:
                targets = set(self._mdw.graph.objects(role, TERMS.for_application))
                if application not in targets:
                    continue
            out |= self.privileges_of_role(role)
        return out

    def authorize(self, user: Term, privilege: str, application: Term) -> bool:
        """The discretionary access-control check of Section II: does any
        role the user plays for ``application`` carry ``privilege``?"""
        return privilege in self.privileges_of_user(user, application)

    # -- the auditor's question ------------------------------------------------

    def who_can_reach(self, item: Term) -> Dict[Term, Set[Term]]:
        """Which applications — and which users through them — can reach
        ``item``'s data: every application owning an item downstream of
        it, mapped to the users with roles on that application."""
        trace = self._lineage.downstream(item)
        out: Dict[Term, Set[Term]] = {}
        for affected in trace.items():
            chain = self._lineage.container_chain(affected)
            application = chain[-1] if len(chain) > 1 else None
            if application is None:
                continue
            if application not in out:
                out[application] = self.users_with_access(application)
        return out

    def orphan_applications(self) -> List[Term]:
        """Applications without any business owner — a governance smell
        the warehouse makes visible (Section II's data-governance use
        cases)."""
        graph = self._mdw.graph
        applications = set()
        for cls in self._mdw.schema.classes():
            label = self._mdw.schema.label(cls) or ""
            if label.lower() == "application":
                applications |= set(graph.subjects(RDF.type, cls))
        return sorted(
            (a for a in applications if self.owner_of(a) is None),
            key=lambda t: t.sort_key(),
        )
