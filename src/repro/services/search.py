"""The search facility (use case IV.A).

The paper's three-step algorithm:

1. find all classes in the meta-data **hierarchy** that are relevant for
   the search (the user's filter classes, expanded downward);
2. find all classes of the **meta-data schema** in the *intersection* of
   those hierarchy classes — the valid search-result types, also used to
   group the results (Figure 6);
3. find all **instances** of those classes (``rdf:type`` is the path
   that drives the search) whose ``dm:hasName`` matches the search term
   (Listing 1's ``regexp_like``).

Because of multiple inheritance, a hit inherits membership in every
superclass of its classes and is therefore counted in each group —
exactly the grouped counts of Figure 6.

The Section V lesson ("the search has to become semantic") is available
through synonym expansion: with ``expand_synonyms=True`` the term is
widened with the thesaurus edges the DBpedia import materialized.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Term

from repro.core.model import World
from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse
from repro.etl.dbpedia import SynonymThesaurus


@lru_cache(maxsize=512)
def _compiled_pattern(pattern_text: str) -> "re.Pattern":
    """Case-insensitive compiled regex, cached across searches.

    Search terms repeat heavily (users refine a query, synonym
    expansion re-emits the same thesaurus terms), so the compile cost
    is paid once per distinct pattern instead of once per search call.

    ``lru_cache`` is internally locked, so concurrent query-service
    workers can share this cache; at worst a contended miss compiles
    the same pattern twice, never corrupting the cache.
    """
    return re.compile(pattern_text, re.IGNORECASE)


@dataclass
class SearchFilters:
    """The filter panel of the search frontend (Figure 6, left side).

    ``classes``: hierarchy classes (IRIs or labels) the search narrows
    to — an instance must belong to the intersection of all of them.
    ``areas`` / ``levels``: DWH pipeline stages and abstraction levels.
    ``world``: restrict result classes to the business or technical
    world. ``freshness`` keeps only items with one of the listed
    guarantees; ``min_quality`` drops items below the score (items
    without quality meta-data are kept — absence of a guarantee is not
    a failed guarantee).
    """

    classes: Sequence[Union[IRI, str]] = ()
    areas: Sequence[IRI] = ()
    levels: Sequence[IRI] = ()
    world: Optional[World] = None
    freshness: Sequence[str] = ()
    min_quality: Optional[float] = None


@dataclass(frozen=True)
class SearchHit:
    """One matching instance."""

    instance: Term
    name: str
    matched_term: str          # which (possibly synonym-expanded) term hit
    direct_classes: Tuple[IRI, ...]
    all_classes: Tuple[IRI, ...]  # including inherited memberships


class SearchResults:
    """Hits plus the Figure 6 grouping."""

    def __init__(
        self,
        term: str,
        expanded_terms: List[str],
        hits: List[SearchHit],
        labels: Dict[IRI, str],
        homonym_warnings: Optional[List[str]] = None,
    ):
        self.term = term
        self.expanded_terms = expanded_terms
        self.hits = hits
        self._labels = labels
        #: known homonyms of the search term — the results may mix
        #: meanings ("disentangling homonyms", Section VI)
        self.homonym_warnings = list(homonym_warnings or [])
        #: set by the query service when the answer was served while the
        #: entailment indexes were stale: correct but possibly incomplete
        self.degraded = False

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self):
        return iter(self.hits)

    def __bool__(self) -> bool:
        return bool(self.hits)

    def label(self, cls: IRI) -> str:
        return self._labels.get(cls, cls.local_name)

    def groups(self) -> List[Tuple[IRI, str, int]]:
        """(class, label, hit count) rows, like the Figure 6 listing.

        Sorted by label. A hit counts in every class it (transitively)
        belongs to.
        """
        counts: Dict[IRI, int] = {}
        for hit in self.hits:
            for cls in hit.all_classes:
                counts[cls] = counts.get(cls, 0) + 1
        return sorted(
            ((cls, self.label(cls), n) for cls, n in counts.items()),
            key=lambda row: (row[1], row[0].value),
        )

    def group_members(self, cls: IRI) -> List[SearchHit]:
        """The hits listed when one Figure 6 group is expanded."""
        return [h for h in self.hits if cls in h.all_classes]

    def instance_names(self) -> List[str]:
        return sorted(h.name for h in self.hits)


class SearchService:
    """The search facility over one warehouse."""

    def __init__(self, warehouse: MetadataWarehouse, thesaurus: Optional[SynonymThesaurus] = None):
        self._mdw = warehouse
        self._thesaurus = thesaurus
        self._index = None
        # guards the lazy thesaurus build: concurrent first searches on a
        # shared snapshot facade must not each rebuild it
        self._thesaurus_lock = threading.Lock()
        # delta-aware invalidation: a graph-built thesaurus only goes
        # stale when a synonym/homonym edge changes, so an incremental
        # release that touches no thesaurus edges keeps it cached
        subscribe = getattr(warehouse.graph, "subscribe", None)
        if thesaurus is None and callable(subscribe):
            subscribe(self._on_graph_change)

    def _on_graph_change(self, action, triple) -> None:
        if triple.predicate in (TERMS.synonym_of, TERMS.homonym_of):
            self._thesaurus = None

    def enable_index(self):
        """Build (and auto-maintain) the inverted name index.

        Plain-term searches then scan the name vocabulary instead of
        every instance — the difference is measured in ablation A6.
        Returns the :class:`~repro.services.text_index.NameIndex`.
        """
        if self._index is None:
            from repro.services.text_index import NameIndex

            self._index = NameIndex(self._mdw.graph)
        return self._index

    @property
    def index(self):
        """The name index, or None when not enabled."""
        return self._index

    @property
    def thesaurus(self) -> SynonymThesaurus:
        """The synonym thesaurus (lazily rebuilt from the graph)."""
        if self._thesaurus is None:
            with self._thesaurus_lock:
                if self._thesaurus is None:
                    self._thesaurus = SynonymThesaurus.from_graph(self._mdw.graph)
        return self._thesaurus

    def invalidate_thesaurus(self) -> None:
        """Forget the cached thesaurus (after a DBpedia re-import)."""
        self._thesaurus = None

    # -- the algorithm ------------------------------------------------------

    def search(
        self,
        term: str,
        filters: Optional[SearchFilters] = None,
        expand_synonyms: bool = False,
        regex: bool = False,
    ) -> SearchResults:
        """Run the three-step search for ``term``.

        ``term`` is matched case-insensitively as a substring of each
        instance's ``dm:hasName`` (set ``regex=True`` to pass a raw
        regular expression, as Listing 1 does).
        """
        filters = filters or SearchFilters()
        hierarchy = self._mdw.hierarchy

        # Step 1 — relevant hierarchy classes per filter, expanded downward.
        # Step 2 — the intersection across filters = valid result classes.
        valid_classes = self._valid_classes(filters)

        # Step 3 — instances of the valid classes matching the term.
        terms = [term]
        homonym_warnings: List[str] = []
        if expand_synonyms:
            terms = self.thesaurus.expand(term)
            homonym_warnings = sorted(self.thesaurus.homonyms(term))
        patterns = [
            _compiled_pattern(t if regex else re.escape(t)) for t in terms
        ]

        area_set = set(filters.areas)
        level_set = set(filters.levels)
        graph = self._mdw.graph
        hits: List[SearchHit] = []
        seen: Set[Term] = set()
        if self._index is not None and not regex:
            candidates = self._index.candidates_for_terms(terms)
        else:
            candidates = self._candidate_instances(valid_classes)
        for instance in sorted(candidates, key=lambda t: t.sort_key()):
            if instance in seen:
                continue
            seen.add(instance)
            name = self._mdw.facts.name_of(instance)
            if name is None:
                continue
            matched = None
            for pattern, searched in zip(patterns, terms):
                if pattern.search(name):
                    matched = searched
                    break
            if matched is None:
                continue
            if area_set and graph.value(instance, TERMS.in_area, None) not in area_set:
                continue
            if level_set and graph.value(instance, TERMS.at_level, None) not in level_set:
                continue
            if filters.freshness:
                grade = graph.value(instance, TERMS.freshness, None)
                if grade is None or grade.lexical not in filters.freshness:
                    continue
            if filters.min_quality is not None:
                score = graph.value(instance, TERMS.quality_score, None)
                if score is not None and float(score.to_python()) < filters.min_quality:
                    continue
            direct = tuple(sorted(hierarchy.classes_of(instance, direct=True), key=lambda c: c.value))
            if valid_classes is not None and not any(c in valid_classes for c in direct):
                continue
            all_classes = tuple(sorted(hierarchy.classes_of(instance), key=lambda c: c.value))
            hits.append(
                SearchHit(
                    instance=instance,
                    name=name,
                    matched_term=matched,
                    direct_classes=direct,
                    all_classes=all_classes,
                )
            )

        labels = {}
        for hit in hits:
            for cls in hit.all_classes:
                if cls not in labels:
                    labels[cls] = self._mdw.schema.label(cls) or cls.local_name
        return SearchResults(term, terms, hits, labels, homonym_warnings)

    def _valid_classes(self, filters: SearchFilters) -> Optional[Set[IRI]]:
        """Steps 1+2: None means 'no narrowing' (every class is valid)."""
        hierarchy = self._mdw.hierarchy
        sets: List[Set[IRI]] = []
        for class_filter in filters.classes:
            cls = self._resolve_class(class_filter)
            sets.append(hierarchy.subclasses(cls, include_self=True))
        if filters.world is not None:
            world_classes = {
                cls
                for cls in self._mdw.schema.classes()
                if self._mdw.schema.world(cls) is filters.world
            }
            sets.append(world_classes)
        if not sets:
            return None
        valid = sets[0]
        for s in sets[1:]:
            valid = valid & s
        return valid

    def _resolve_class(self, class_filter: Union[IRI, str]) -> IRI:
        if isinstance(class_filter, IRI):
            return class_filter
        cls = self._mdw.schema.class_by_label(class_filter)
        if cls is None:
            # tolerate identifier-style names ("Source_Column")
            candidate = self._mdw.schema.namespace.term(class_filter.replace(" ", "_"))
            if self._mdw.schema.is_class(candidate):
                return candidate
            raise KeyError(f"no class with label or name {class_filter!r}")
        return cls

    def _candidate_instances(self, valid_classes: Optional[Set[IRI]]):
        graph = self._mdw.graph
        if valid_classes is None:
            # every typed node that is not itself a class or property
            for subject in graph.subjects(TERMS.has_name, None):
                yield subject
            return
        for cls in valid_classes:
            yield from graph.subjects(RDF.type, cls)
