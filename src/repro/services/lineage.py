"""The lineage / provenance tool (use case IV.B).

The path that drives this tool is ``(isMappedTo)* rdf:type`` (Figure 8):
from a start item, mapping edges are followed transitively, and the
reached items are filtered by the valid target classes computed exactly
like the search algorithm's steps 1 and 2.

Beyond the paper's productive feature set, the Section V lessons are
implemented too:

* **rule-condition filters** — every mapping edge can carry the rule and
  condition text of its transformation (reified by the fact manager);
  traces and path enumeration accept a filter so "the number of
  potential data paths [...] will stay small even with a significant
  number of steps and stages";
* **drill-down** (Figure 7) — flows can be aggregated at any granularity
  of the ``dm:belongsTo`` containment chain (attribute → entity/table →
  schema → application), on the source and target side independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.obs.trace import span
from repro.rdf.terms import IRI, Literal, Term

from repro.core.vocabulary import TERMS
from repro.core.warehouse import MetadataWarehouse

ConditionFilter = Callable[["LineageEdge"], bool]


class PathExplosionError(RuntimeError):
    """Path enumeration exceeded the caller's budget.

    The paper's Section V lesson: unfiltered path counts grow
    exponentially with pipeline depth. Catch this and re-run with a
    rule-condition filter or a smaller scope.
    """

    def __init__(self, budget: int):
        super().__init__(
            f"more than {budget} lineage paths; narrow the scope or apply "
            "a rule-condition filter"
        )
        self.budget = budget


@dataclass(frozen=True)
class LineageEdge:
    """One mapping edge with its transformation meta-data."""

    source: Term
    target: Term
    rule: Optional[str] = None
    condition: Optional[str] = None


@dataclass
class LineageTrace:
    """The reachable lineage sub-graph from one start item."""

    start: Term
    direction: str                      # "upstream" | "downstream"
    edges: List[LineageEdge] = field(default_factory=list)
    depth: Dict[Term, int] = field(default_factory=dict)
    #: set by the query service when the trace was served while the
    #: entailment indexes were stale (degraded mode)
    degraded: bool = False

    def items(self) -> Set[Term]:
        """Every item in the trace (including the start)."""
        out = {self.start}
        for edge in self.edges:
            out.add(edge.source)
            out.add(edge.target)
        return out

    def endpoints(self) -> Set[Term]:
        """Items with no further hop in the trace direction."""
        if self.direction == "downstream":
            non_terminal = {e.source for e in self.edges}
        else:
            non_terminal = {e.target for e in self.edges}
        return self.items() - non_terminal

    def max_depth(self) -> int:
        return max(self.depth.values(), default=0)

    def __len__(self) -> int:
        return len(self.edges)

    def __contains__(self, item: Term) -> bool:
        return item in self.items()


class LineageService:
    """Lineage queries over one warehouse."""

    def __init__(self, warehouse: MetadataWarehouse):
        self._mdw = warehouse

    # -- edge access ------------------------------------------------------

    def edge(self, source: Term, target: Term) -> LineageEdge:
        """The mapping edge (source → target) with rule/condition text."""
        rule = condition = None
        graph = self._mdw.graph
        for mapping in graph.objects(source, TERMS.has_mapping):
            if graph.value(mapping, TERMS.mapping_target, None) == target:
                rule_lit = graph.value(mapping, TERMS.mapping_rule, None)
                cond_lit = graph.value(mapping, TERMS.mapping_condition, None)
                rule = rule_lit.lexical if isinstance(rule_lit, Literal) else None
                condition = cond_lit.lexical if isinstance(cond_lit, Literal) else None
                break
        return LineageEdge(source, target, rule, condition)

    def _neighbours(self, item: Term, direction: str) -> List[Term]:
        graph = self._mdw.graph
        if direction == "downstream":
            return sorted(graph.objects(item, TERMS.is_mapped_to), key=lambda t: t.sort_key())
        return sorted(graph.subjects(TERMS.is_mapped_to, item), key=lambda t: t.sort_key())

    def frontier(
        self, items: Sequence[Term], direction: str = "upstream"
    ) -> List[List[LineageEdge]]:
        """One BFS level: the mapping edges incident to each item.

        ``out[i]`` lists the edges of ``items[i]`` in the same sorted
        neighbour order :meth:`trace` expands them — the shard-local
        half of the gateway's iterative frontier exchange
        (:mod:`repro.server.sharding`). On a hash-partitioned shard the
        *downstream* edges of an item live entirely on the item's owner
        shard, while *upstream* edges are keyed by the remote source,
        so a shard simply reports what its slice of the graph knows.
        """
        if direction not in ("upstream", "downstream"):
            raise ValueError("direction must be 'upstream' or 'downstream'")
        out: List[List[LineageEdge]] = []
        with span(
            "operator", "lineage", op="frontier", direction=direction,
            items=len(items),
        ) as attrs:
            for item in items:
                edges: List[LineageEdge] = []
                for neighbour in self._neighbours(item, direction):
                    if direction == "downstream":
                        edges.append(self.edge(item, neighbour))
                    else:
                        edges.append(self.edge(neighbour, item))
                out.append(edges)
            attrs["edges"] = sum(len(e) for e in out)
        return out

    # -- traces ------------------------------------------------------------

    def trace(
        self,
        item: Term,
        direction: str = "upstream",
        max_depth: Optional[int] = None,
        condition_filter: Optional[ConditionFilter] = None,
    ) -> LineageTrace:
        """BFS over mapping edges from ``item``.

        ``upstream`` answers "where does this come from" (audit);
        ``downstream`` answers "what depends on this" (impact, Figure 8).
        ``condition_filter`` drops mapping edges whose rule/condition
        meta-data it rejects.
        """
        if direction not in ("upstream", "downstream"):
            raise ValueError("direction must be 'upstream' or 'downstream'")
        trace = LineageTrace(start=item, direction=direction)
        trace.depth[item] = 0
        frontier = [item]
        visited = {item}
        while frontier:
            nxt: List[Term] = []
            for current in frontier:
                current_depth = trace.depth[current]
                if max_depth is not None and current_depth >= max_depth:
                    continue
                for neighbour in self._neighbours(current, direction):
                    if direction == "downstream":
                        edge = self.edge(current, neighbour)
                    else:
                        edge = self.edge(neighbour, current)
                    if condition_filter is not None and not condition_filter(edge):
                        continue
                    trace.edges.append(edge)
                    if neighbour not in visited:
                        visited.add(neighbour)
                        trace.depth[neighbour] = current_depth + 1
                        nxt.append(neighbour)
            frontier = nxt
        return trace

    def upstream(self, item: Term, **kw) -> LineageTrace:
        """Backward lineage: the sources ``item`` is derived from."""
        return self.trace(item, "upstream", **kw)

    def downstream(self, item: Term, **kw) -> LineageTrace:
        """Forward lineage: the items derived from ``item``."""
        return self.trace(item, "downstream", **kw)

    # -- the IV.B algorithm --------------------------------------------------

    def dependents_of_type(
        self,
        item: Term,
        class_filters: Sequence[Union[IRI, str]],
        direction: str = "downstream",
        condition_filter: Optional[ConditionFilter] = None,
    ) -> List[Term]:
        """Steps 1–3 of the provenance algorithm (Listing 2 / Figure 8).

        1) expand each filter class down the hierarchy, 2) intersect to
        the valid target types, 3) collect items reachable from ``item``
        over ``(isMappedTo)*`` whose ``rdf:type`` lies in the valid set.
        """
        from repro.services.search import SearchFilters

        valid = self._mdw.search._valid_classes(SearchFilters(classes=class_filters))
        trace = self.trace(item, direction, condition_filter=condition_filter)
        hierarchy = self._mdw.hierarchy
        out = []
        for candidate in sorted(trace.items() - {item}, key=lambda t: t.sort_key()):
            classes = hierarchy.classes_of(candidate)
            if valid is None or classes & valid:
                out.append(candidate)
        return out

    # -- path enumeration -------------------------------------------------------

    def paths(
        self,
        source: Term,
        target: Term,
        condition_filter: Optional[ConditionFilter] = None,
        max_paths: int = 10_000,
    ) -> List[List[Term]]:
        """All simple mapping paths from ``source`` to ``target``.

        Raises :class:`PathExplosionError` beyond ``max_paths``.
        """
        out: List[List[Term]] = []

        def walk(node: Term, path: List[Term], seen: Set[Term]):
            if node == target:
                out.append(list(path))
                if len(out) > max_paths:
                    raise PathExplosionError(max_paths)
                return
            for neighbour in self._neighbours(node, "downstream"):
                if neighbour in seen:
                    continue
                edge = self.edge(node, neighbour)
                if condition_filter is not None and not condition_filter(edge):
                    continue
                path.append(neighbour)
                seen.add(neighbour)
                walk(neighbour, path, seen)
                seen.discard(neighbour)
                path.pop()

        walk(source, [source], {source})
        return out

    def count_paths(
        self,
        item: Term,
        direction: str = "downstream",
        condition_filter: Optional[ConditionFilter] = None,
    ) -> int:
        """The number of distinct mapping paths from ``item`` to all
        endpoints — computed by DAG dynamic programming, so exponential
        counts are returned without enumerating them (the A3 ablation
        measures exactly this growth).

        Falls back to bounded enumeration when the flow graph has cycles.
        """
        memo: Dict[Term, int] = {}
        on_stack: Set[Term] = set()

        def count(node: Term) -> int:
            if node in memo:
                return memo[node]
            if node in on_stack:
                raise _CycleFound()
            on_stack.add(node)
            neighbours = []
            for neighbour in self._neighbours(node, direction):
                if direction == "downstream":
                    edge = self.edge(node, neighbour)
                else:
                    edge = self.edge(neighbour, node)
                if condition_filter is None or condition_filter(edge):
                    neighbours.append(neighbour)
            total = 1 if not neighbours else sum(count(n) for n in neighbours)
            on_stack.discard(node)
            memo[node] = total
            return total

        try:
            return count(item)
        except _CycleFound:
            # cycles: count simple paths by bounded DFS
            total = 0
            stack = [(item, {item})]
            while stack:
                node, seen = stack.pop()
                neighbours = [
                    n for n in self._neighbours(node, direction) if n not in seen
                ]
                if not neighbours:
                    total += 1
                    continue
                for n in neighbours:
                    stack.append((n, seen | {n}))
            return total

    # -- drill-down (Figure 7) ------------------------------------------------------

    def container_chain(self, item: Term) -> List[Term]:
        """``item`` plus its ``dm:belongsTo`` ancestors, innermost first."""
        chain = [item]
        seen = {item}
        current = item
        graph = self._mdw.graph
        while True:
            parent = graph.value(current, TERMS.belongs_to, None)
            if parent is None or parent in seen:
                return chain
            chain.append(parent)
            seen.add(parent)
            current = parent

    def at_granularity(self, item: Term, levels_up: int) -> Term:
        """The container ``levels_up`` steps above ``item`` (clamped)."""
        chain = self.container_chain(item)
        return chain[min(levels_up, len(chain) - 1)]

    def flows(
        self,
        source_granularity: int = 0,
        target_granularity: int = 0,
        source_scope: Optional[Term] = None,
        target_scope: Optional[Term] = None,
    ) -> List[Tuple[Term, Term, int]]:
        """Aggregated data flows for the two Figure 7 panes.

        Every attribute-level mapping edge is lifted ``*_granularity``
        containment levels on each side, then grouped and counted.
        ``*_scope`` restricts to flows whose lifted source/target chain
        contains the scope item (the pane's "adjust the scope" action).
        Returns (source container, target container, mapping count),
        sorted by count descending.
        """
        graph = self._mdw.graph
        counts: Dict[Tuple[Term, Term], int] = {}
        for triple in graph.triples(None, TERMS.is_mapped_to, None):
            source_chain = self.container_chain(triple.subject)
            target_chain = self.container_chain(triple.object)
            if source_scope is not None and source_scope not in source_chain:
                continue
            if target_scope is not None and target_scope not in target_chain:
                continue
            lifted = (
                source_chain[min(source_granularity, len(source_chain) - 1)],
                target_chain[min(target_granularity, len(target_chain) - 1)],
            )
            counts[lifted] = counts.get(lifted, 0) + 1
        return sorted(
            ((s, t, n) for (s, t), n in counts.items()),
            key=lambda row: (-row[2], row[0].sort_key(), row[1].sort_key()),
        )


class _CycleFound(Exception):
    pass
