"""The use-case services built on top of the meta-data warehouse.

Section IV of the paper describes two productive tools — **search** and
**lineage/provenance** — each defined by (a) the hierarchy classes it
makes searchable and (b) the *path* through the RDF graph that drives it
(``rdf:type`` for search, ``(isMappedTo)* rdf:type`` for lineage).

This package implements both, plus the extensions the paper motivates:

* :mod:`repro.services.search` — use case IV.A with synonym expansion
  (the "semantic search" lesson of Section V);
* :mod:`repro.services.lineage` — use case IV.B with drill-down,
  path enumeration, and rule-condition filters (Section V);
* :mod:`repro.services.impact` — forward lineage: what is affected when
  an application or item changes (Section I's motivating example);
* :mod:`repro.services.governance` — role/ownership queries over the
  Roles subject area (Section II);
* :mod:`repro.services.reporting` — report-developer support, the
  use case "currently under development" in Section IV.
"""

from repro.services.search import SearchFilters, SearchHit, SearchResults, SearchService
from repro.services.lineage import (
    LineageEdge,
    LineageService,
    LineageTrace,
    PathExplosionError,
)
from repro.services.impact import ImpactAnalysis, ImpactReport
from repro.services.governance import GovernanceService
from repro.services.reporting import ReportingAssistant, SourceCandidate

__all__ = [
    "GovernanceService",
    "ImpactAnalysis",
    "ImpactReport",
    "LineageEdge",
    "LineageService",
    "LineageTrace",
    "PathExplosionError",
    "ReportingAssistant",
    "SearchFilters",
    "SearchHit",
    "SearchResults",
    "SearchService",
    "SourceCandidate",
]
