"""Entailment-index lifecycle over a :class:`TripleStore`.

Building an index computes the derived-only closure of a model and
attaches it under the rulebase name; queries opt in via
``SEM_RULEBASES`` (Section III.B of the paper). The manager tracks
staleness so a release load can refresh only what changed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple
from repro.reasoning.engine import InferenceReport, closure, extend_closure
from repro.reasoning.rulebase import get_rulebase
from repro.resilience import faults


def build_entailment_index(
    store: TripleStore,
    model: str,
    rulebase: str = "OWLPRIME",
    max_rounds: Optional[int] = None,
) -> InferenceReport:
    """Build (or rebuild) the entailment index of ``model``.

    ``rulebase`` is resolved through the rulebase registry. Returns the
    inference report; the derived triples are attached to the store.
    """
    faults.fire("index.refresh")
    rb = get_rulebase(rulebase)
    derived, report = closure(store.model(model), rb, max_rounds=max_rounds)
    store.attach_index(model, rb.name, derived)
    return report


class EntailmentIndexManager:
    """Tracks index freshness per (model, rulebase) pair.

    The store's models keep evolving between release loads; an index is
    *stale* when its model's triple count has changed since the index
    was built (a cheap, conservative fingerprint — removals and
    additions both change it; an exactly-compensating add/remove pair
    would be missed, so bulk pipelines should call :meth:`refresh`
    after every load, which the ETL orchestrator does).
    """

    def __init__(self, store: TripleStore):
        self._store = store
        # indexes already attached (a persisted store was saved with
        # model and index in one atomic pass, so they open consistent)
        # are fresh by construction; without this seed every restart
        # would report them stale and health() would cry degraded
        self._built_at_size: Dict[Tuple[str, str], int] = {
            key: len(store.model(key[0])) for key in store.index_names()
        }

    def build(self, model: str, rulebase: str = "OWLPRIME") -> InferenceReport:
        report = build_entailment_index(self._store, model, rulebase)
        self._built_at_size[(model, rulebase)] = len(self._store.model(model))
        return report

    def is_stale(self, model: str, rulebase: str = "OWLPRIME") -> bool:
        key = (model, rulebase)
        if key not in self._built_at_size:
            stale = True
        else:
            stale = self._built_at_size[key] != len(self._store.model(model))
        # the chaos harness can corrupt this verdict (force-stale) to
        # rehearse degraded-mode serving without mutating the model
        return bool(faults.fire("index.staleness", stale))

    def refresh(self, model: str, rulebase: str = "OWLPRIME") -> Optional[InferenceReport]:
        """Rebuild the index when stale; returns None when fresh."""
        if not self.is_stale(model, rulebase):
            return None
        return self.build(model, rulebase)

    def extend(
        self,
        model: str,
        added: Iterable[Triple],
        rulebase: str = "OWLPRIME",
    ) -> InferenceReport:
        """Incrementally maintain the index after ``added`` triples were
        inserted into the model (cheaper than a full rebuild).

        Falls back to a full build when no index exists yet.
        """
        rb = get_rulebase(rulebase)
        derived = self._store.index(model, rb.name)
        if derived is None:
            return self.build(model, rulebase)
        base = self._store.model(model)
        report = extend_closure(base, derived, added, rb)
        # extend_closure may have derived triples that the model itself
        # acquired meanwhile; keep the index duplicate-free.
        for t in [t for t in derived if t in base]:
            derived.discard(t)
        report.derived_triples = len(derived)
        self._built_at_size[(model, rulebase)] = len(base)
        return report

    def built_indexes(self):
        """(model, rulebase) pairs this manager has built."""
        return sorted(self._built_at_size)
