"""Entailment-index lifecycle over a :class:`TripleStore`.

Building an index computes the derived-only closure of a model and
attaches it under the rulebase name; queries opt in via
``SEM_RULEBASES`` (Section III.B of the paper). The manager tracks
staleness so a release load can refresh only what changed.

Staleness is tracked *incrementally*: per (model, rulebase) pair a
:class:`DeltaTracker` subscribes to the model graph's change events and
nets effective adds/removes since the index was last built or
maintained. ``is_stale`` is then an O(1) check of the netted delta
(a compensating add/remove pair correctly reads as *fresh* — the old
size fingerprint missed that), and ``refresh`` hands the netted delta
to DRed maintenance (:func:`~repro.reasoning.engine.maintain_closure`)
instead of falling back to a full ``closure()`` whenever a prior index
exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import span
from repro.rdf.graph import Graph
from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple
from repro.reasoning.engine import (
    InferenceReport,
    closure,
    maintain_closure,
)
from repro.reasoning.rulebase import get_rulebase
from repro.resilience import faults

#: Netted deltas larger than ``max(_TRACKER_MIN_LIMIT, len(model))`` stop
#: being tracked triple-by-triple: at that churn a full rebuild is the
#: faster maintenance strategy anyway, so the tracker declares overflow.
_TRACKER_MIN_LIMIT = 4096


class DeltaTracker:
    """Nets a model graph's effective changes since the last mark.

    Subscribes to the graph's change notifications. Because the graph
    only notifies *effective* changes, events on one triple strictly
    alternate (add, remove, add, ...), so an even number of events nets
    to nothing — the tracker's dictionary holds exactly the triples
    whose membership differs from the marked state.
    """

    __slots__ = ("_graph", "_net", "_overflown", "_limit")

    def __init__(self, graph: Graph):
        self._graph = graph
        self._net: Dict[Triple, str] = {}
        self._overflown = False
        self._limit = max(_TRACKER_MIN_LIMIT, len(graph))
        graph.subscribe(self._on_change)

    def close(self) -> None:
        self._graph.unsubscribe(self._on_change)

    def _on_change(self, action: str, triple: Triple) -> None:
        if self._overflown:
            return
        sign = "+" if action == "add" else "-"
        previous = self._net.pop(triple, None)
        if previous is None:
            self._net[triple] = sign
            if len(self._net) > self._limit:
                self._overflown = True
                self._net.clear()
        elif previous == sign:
            # impossible for effective events; declare defeat defensively
            self._overflown = True
            self._net.clear()

    @property
    def dirty(self) -> bool:
        """True when the graph's content differs from the marked state."""
        return self._overflown or bool(self._net)

    @property
    def overflown(self) -> bool:
        return self._overflown

    def peek(self) -> Tuple[List[Triple], List[Triple]]:
        """(added, removed) since the mark, without consuming them."""
        added = [t for t, sign in self._net.items() if sign == "+"]
        removed = [t for t, sign in self._net.items() if sign == "-"]
        return added, removed

    def mark(self) -> None:
        """Declare the current graph state the new baseline."""
        self._net.clear()
        self._overflown = False
        self._limit = max(_TRACKER_MIN_LIMIT, len(self._graph))

    def __repr__(self) -> str:
        state = "overflown" if self._overflown else f"net={len(self._net)}"
        return f"<DeltaTracker {self._graph.name!r} {state}>"


def build_entailment_index(
    store: TripleStore,
    model: str,
    rulebase: str = "OWLPRIME",
    max_rounds: Optional[int] = None,
) -> InferenceReport:
    """Build (or rebuild) the entailment index of ``model``.

    ``rulebase`` is resolved through the rulebase registry. Returns the
    inference report; the derived triples are attached to the store.
    """
    with span("index.build", "reasoning", model=model, rulebase=rulebase):
        faults.fire("index.refresh")
        rb = get_rulebase(rulebase)
        derived, report = closure(store.model(model), rb, max_rounds=max_rounds)
        store.attach_index(model, rb.name, derived)
    return report


class EntailmentIndexManager:
    """Tracks index freshness per (model, rulebase) pair.

    The store's models keep evolving between release loads; each built
    index carries a :class:`DeltaTracker` on its model, so staleness is
    answered in O(1) from the netted delta and refreshes run DRed
    maintenance over exactly those triples. A tracker that overflowed
    (delta comparable to the model itself) falls back to a full rebuild
    — at that churn the rebuild is the cheaper maintenance anyway.
    """

    def __init__(self, store: TripleStore):
        self._store = store
        self._trackers: Dict[Tuple[str, str], DeltaTracker] = {}
        # indexes already attached (a persisted store was saved with
        # model and index in one atomic pass, so they open consistent)
        # are fresh by construction; without this seed every restart
        # would report them stale and health() would cry degraded
        for key in store.index_names():
            self._trackers[key] = DeltaTracker(store.model(key[0]))

    def build(self, model: str, rulebase: str = "OWLPRIME") -> InferenceReport:
        report = build_entailment_index(self._store, model, rulebase)
        self._mark_fresh(model, rulebase)
        return report

    def _mark_fresh(self, model: str, rulebase: str) -> None:
        key = (model, rulebase)
        tracker = self._trackers.get(key)
        if tracker is None:
            self._trackers[key] = DeltaTracker(self._store.model(model))
        else:
            tracker.mark()

    def is_stale(self, model: str, rulebase: str = "OWLPRIME") -> bool:
        tracker = self._trackers.get((model, rulebase))
        stale = True if tracker is None else tracker.dirty
        # the chaos harness can corrupt this verdict (force-stale) to
        # rehearse degraded-mode serving without mutating the model
        return bool(faults.fire("index.staleness", stale))

    def refresh(self, model: str, rulebase: str = "OWLPRIME") -> Optional[InferenceReport]:
        """Bring the index up to date; returns None when already fresh.

        With a prior index and a tracked delta this is DRed maintenance
        over the netted adds/removes — never a full ``closure()``. A
        missing index, untracked model, or overflown tracker rebuilds.
        """
        if not self.is_stale(model, rulebase):
            return None
        key = (model, rulebase)
        tracker = self._trackers.get(key)
        rb = get_rulebase(rulebase)
        derived = self._store.index(model, rb.name)
        if derived is None or tracker is None or tracker.overflown:
            return self.build(model, rulebase)
        added, removed = tracker.peek()
        # an index that arrived read-only (mapped snapshot, frozen copy)
        # must become writable before DRed maintenance mutates it; the
        # re-attach below registers the writable replacement
        materialize = getattr(derived, "materialize", None)
        if materialize is not None:
            derived = materialize()
        elif derived.frozen:
            derived = derived.copy()
        base = self._store.model(model)
        with span("index.refresh", "reasoning", model=model, rulebase=rulebase):
            faults.fire("index.refresh")
            try:
                report = maintain_closure(base, derived, added, removed, rb)
            except BaseException:
                # a fault (or bug) mid-maintenance leaves the index torn:
                # poison the tracker so the next refresh rebuilds from scratch
                tracker._overflown = True
                tracker._net.clear()
                raise
        tracker.mark()
        # the same netted delta that drove DRed also drifted the planner's
        # statistics catalogs; refresh them past their staleness threshold
        # now, while the release apply is already paying maintenance cost
        base.stats().ensure_fresh(trigger="dred-refresh")
        # re-attach to refresh the store's disjointness stamp (the index
        # object is unchanged; only its base-generation bookkeeping moves)
        self._store.attach_index(model, rb.name, derived)
        return report

    def extend(
        self,
        model: str,
        added: Iterable[Triple],
        rulebase: str = "OWLPRIME",
    ) -> InferenceReport:
        """Incrementally maintain the index after ``added`` triples were
        inserted into the model (cheaper than a full rebuild).

        Falls back to a full build when no index exists yet.
        """
        rb = get_rulebase(rulebase)
        derived = self._store.index(model, rb.name)
        if derived is None:
            return self.build(model, rulebase)
        base = self._store.model(model)
        report = maintain_closure(base, derived, added, (), rb)
        # the model may have acquired triples beyond ``added`` meanwhile;
        # keep the index duplicate-free (legacy contract of this API)
        for t in [t for t in derived if t in base]:
            derived.discard(t)
        report.derived_triples = len(derived)
        self._mark_fresh(model, rulebase)
        base.stats().ensure_fresh(trigger="dred-extend")
        self._store.attach_index(model, rb.name, derived)
        return report

    def built_indexes(self):
        """(model, rulebase) pairs this manager has built."""
        return sorted(self._trackers)
