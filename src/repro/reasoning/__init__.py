"""Entailment: forward-chaining rules and entailment indexes.

Oracle's Semantic Web option materializes derived triples into
*entailment indexes* built from a rulebase (the paper uses ``OWLPRIME``).
The derived triples "only exist through the indexes" — queries that do
not name the rulebase never see them (Section III.B). This package
replicates that design:

* :mod:`repro.reasoning.rules` — the rule formalism (premise patterns →
  one conclusion pattern);
* :mod:`repro.reasoning.rulebase` — the ``RDFS`` and ``OWLPRIME``
  rulebases, plus user-defined rulebase registration;
* :mod:`repro.reasoning.engine` — semi-naive forward chaining to a
  fixpoint, producing only the *derived* triples, plus DRed
  (delete/rederive) incremental maintenance of an existing closure;
* :mod:`repro.reasoning.index` — building and refreshing the entailment
  index of a store model, with O(1) delta-tracked staleness.
"""

from repro.reasoning.rules import Rule, RuleParseError, rule
from repro.reasoning.rulebase import (
    OWLPRIME,
    RDFS_RULEBASE,
    Rulebase,
    get_rulebase,
    register_rulebase,
    rulebase_names,
)
from repro.reasoning.engine import (
    InferenceReport,
    closure,
    extend_closure,
    maintain_closure,
)
from repro.reasoning.index import (
    DeltaTracker,
    EntailmentIndexManager,
    build_entailment_index,
)

__all__ = [
    "DeltaTracker",
    "EntailmentIndexManager",
    "InferenceReport",
    "OWLPRIME",
    "RDFS_RULEBASE",
    "Rule",
    "RuleParseError",
    "Rulebase",
    "build_entailment_index",
    "closure",
    "extend_closure",
    "get_rulebase",
    "maintain_closure",
    "register_rulebase",
    "rule",
    "rulebase_names",
]
