"""The rule formalism: Horn rules over triple patterns.

A :class:`Rule` has premise triple patterns and a single conclusion
pattern; variables shared between premises join, and every conclusion
variable must appear in some premise (safe rules). Rules can be built
from patterns directly or parsed from a compact text notation::

    rule("rdfs9", "?c rdfs:subClassOf ?d . ?x rdf:type ?c -> ?x rdf:type ?d")
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import Triple, Variable


class RuleParseError(ValueError):
    """Malformed rule text."""


class Rule:
    """A safe Horn rule: ``premises -> conclusion``."""

    __slots__ = ("name", "premises", "conclusion")

    def __init__(self, name: str, premises: Sequence[Triple], conclusion: Triple):
        if not premises:
            raise ValueError(f"rule {name!r} needs at least one premise")
        premise_vars: Set[str] = set()
        for p in premises:
            premise_vars |= _variables(p)
        head_vars = _variables(conclusion)
        unsafe = head_vars - premise_vars
        if unsafe:
            raise ValueError(
                f"rule {name!r} is unsafe: conclusion variables {sorted(unsafe)} "
                "do not occur in any premise"
            )
        self.name = name
        self.premises = tuple(premises)
        self.conclusion = conclusion

    def variables(self) -> Set[str]:
        out: Set[str] = set()
        for p in self.premises:
            out |= _variables(p)
        return out

    def instantiate(self, binding: Dict[str, object]) -> Triple:
        """Ground the conclusion under ``binding``."""
        terms = []
        for term in self.conclusion:
            if isinstance(term, Variable):
                terms.append(binding[term.name])
            else:
                terms.append(term)
        return Triple(*terms)

    def __repr__(self) -> str:
        body = " . ".join(p.n3()[:-2] for p in self.premises)
        return f"<Rule {self.name}: {body} -> {self.conclusion.n3()[:-2]}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rule)
            and other.name == self.name
            and other.premises == self.premises
            and other.conclusion == self.conclusion
        )

    def __hash__(self) -> int:
        return hash((Rule, self.name, self.premises, self.conclusion))


def _variables(pattern: Triple) -> Set[str]:
    return {t.name for t in pattern if isinstance(t, Variable)}


def rule(name: str, text: str, nsm: NamespaceManager = None) -> Rule:
    """Parse ``"premise . premise -> conclusion"`` notation into a Rule.

    Terms are ``?vars``, prefixed names resolved through ``nsm`` (default
    prefixes rdf/rdfs/owl/xsd when omitted), or ``<full-iris>``.
    """
    nsm = nsm or NamespaceManager()
    if "->" not in text:
        raise RuleParseError(f"rule {name!r}: missing '->'")
    body_text, head_text = text.split("->", 1)
    premises = [_parse_pattern(chunk, nsm, name) for chunk in _split_patterns(body_text)]
    heads = _split_patterns(head_text)
    if len(heads) != 1:
        raise RuleParseError(f"rule {name!r}: exactly one conclusion required")
    conclusion = _parse_pattern(heads[0], nsm, name)
    try:
        return Rule(name, premises, conclusion)
    except ValueError as exc:
        raise RuleParseError(str(exc)) from None


def _split_patterns(text: str) -> List[str]:
    chunks = [c.strip() for c in text.split(" . ")]
    chunks = [c.strip(" .") for c in chunks if c.strip(" .")]
    if not chunks:
        raise RuleParseError("empty pattern list")
    return chunks


def _parse_pattern(text: str, nsm: NamespaceManager, rule_name: str) -> Triple:
    parts = text.split()
    if len(parts) != 3:
        raise RuleParseError(
            f"rule {rule_name!r}: pattern {text!r} must have 3 terms"
        )
    terms = []
    for part in parts:
        if part.startswith("?"):
            terms.append(Variable(part))
        elif part.startswith("<") and part.endswith(">"):
            from repro.rdf.terms import IRI

            terms.append(IRI(part[1:-1]))
        elif ":" in part:
            try:
                terms.append(nsm.expand(part))
            except KeyError as exc:
                raise RuleParseError(f"rule {rule_name!r}: {exc}") from None
        else:
            raise RuleParseError(
                f"rule {rule_name!r}: cannot parse term {part!r}"
            )
    try:
        return Triple(*terms)
    except TypeError as exc:
        raise RuleParseError(f"rule {rule_name!r}: {exc}") from None
