"""Built-in rulebases: RDFS and OWLPRIME.

``OWLPRIME`` mirrors the scope of Oracle's OWLPrime fragment the paper
uses: the RDFS schema rules plus symmetric / transitive / inverse
properties, equivalence of classes and properties, and owl:sameAs
propagation. Custom rulebases can be registered for project-specific
derivations (the paper's user-defined synonym edges, for example).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.reasoning.rules import Rule, rule


class Rulebase:
    """A named, immutable collection of rules."""

    def __init__(self, name: str, rules: Iterable[Rule]):
        self.name = name
        self.rules: Tuple[Rule, ...] = tuple(rules)
        if not self.rules:
            raise ValueError(f"rulebase {name!r} has no rules")
        seen = set()
        for r in self.rules:
            if r.name in seen:
                raise ValueError(f"duplicate rule name {r.name!r} in rulebase {name!r}")
            seen.add(r.name)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def rule_names(self) -> List[str]:
        return [r.name for r in self.rules]

    def extended(self, name: str, extra_rules: Iterable[Rule]) -> "Rulebase":
        """A new rulebase with additional rules appended."""
        return Rulebase(name, list(self.rules) + list(extra_rules))

    def __repr__(self) -> str:
        return f"<Rulebase {self.name} rules={len(self.rules)}>"


_RDFS_RULES = [
    # schema-level transitivity
    rule("rdfs5", "?p rdfs:subPropertyOf ?q . ?q rdfs:subPropertyOf ?r -> ?p rdfs:subPropertyOf ?r"),
    rule("rdfs11", "?c rdfs:subClassOf ?d . ?d rdfs:subClassOf ?e -> ?c rdfs:subClassOf ?e"),
    # instance-level inheritance
    rule("rdfs7", "?p rdfs:subPropertyOf ?q . ?s ?p ?o -> ?s ?q ?o"),
    rule("rdfs9", "?c rdfs:subClassOf ?d . ?x rdf:type ?c -> ?x rdf:type ?d"),
    # domain and range typing
    rule("rdfs2", "?p rdfs:domain ?c . ?s ?p ?o -> ?s rdf:type ?c"),
    rule("rdfs3", "?p rdfs:range ?c . ?s ?p ?o -> ?o rdf:type ?c"),
]

RDFS_RULEBASE = Rulebase("RDFS", _RDFS_RULES)

_OWL_EXTRA_RULES = [
    # property characteristics
    rule("owl-sym", "?p rdf:type owl:SymmetricProperty . ?s ?p ?o -> ?o ?p ?s"),
    rule("owl-trans", "?p rdf:type owl:TransitiveProperty . ?s ?p ?m . ?m ?p ?o -> ?s ?p ?o"),
    rule("owl-inv1", "?p owl:inverseOf ?q . ?s ?p ?o -> ?o ?q ?s"),
    rule("owl-inv2", "?p owl:inverseOf ?q . ?s ?q ?o -> ?o ?p ?s"),
    # class / property equivalence reduce to mutual subsumption
    rule("owl-eqc1", "?c owl:equivalentClass ?d -> ?c rdfs:subClassOf ?d"),
    rule("owl-eqc2", "?c owl:equivalentClass ?d -> ?d rdfs:subClassOf ?c"),
    rule("owl-eqp1", "?p owl:equivalentProperty ?q -> ?p rdfs:subPropertyOf ?q"),
    rule("owl-eqp2", "?p owl:equivalentProperty ?q -> ?q rdfs:subPropertyOf ?p"),
    # sameAs propagation
    rule("owl-sameas-sym", "?x owl:sameAs ?y -> ?y owl:sameAs ?x"),
    rule("owl-sameas-trans", "?x owl:sameAs ?y . ?y owl:sameAs ?z -> ?x owl:sameAs ?z"),
    rule("owl-sameas-subj", "?x owl:sameAs ?y . ?x ?p ?o -> ?y ?p ?o"),
    rule("owl-sameas-obj", "?x owl:sameAs ?y . ?s ?p ?x -> ?s ?p ?y"),
]

OWLPRIME = Rulebase("OWLPRIME", _RDFS_RULES + _OWL_EXTRA_RULES)


_REGISTRY: Dict[str, Rulebase] = {
    RDFS_RULEBASE.name: RDFS_RULEBASE,
    OWLPRIME.name: OWLPRIME,
}


def register_rulebase(rulebase: Rulebase, replace: bool = False) -> None:
    """Register a custom rulebase by name for use in SEM_RULEBASES."""
    if rulebase.name in _REGISTRY and not replace:
        raise ValueError(f"rulebase {rulebase.name!r} already registered")
    _REGISTRY[rulebase.name] = rulebase


def get_rulebase(name: str) -> Rulebase:
    """Look up a rulebase; raises KeyError with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown rulebase {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def rulebase_names() -> List[str]:
    return sorted(_REGISTRY)
