"""Semi-naive forward chaining to a fixpoint, plus DRed maintenance.

:func:`closure` computes the *derived-only* closure of a graph under a
rulebase: the result contains no triple already present in the base
graph, so it can be attached directly as an entailment index
(:meth:`TripleStore.attach_index`) without duplicating base facts.

The engine is semi-naive: in every round each rule is evaluated once per
premise position, with that premise restricted to the triples derived in
the previous round (the delta) and the remaining premises matched against
the full graph. This avoids re-deriving the whole closure every round.

:func:`maintain_closure` keeps an existing closure consistent after a
*delta* (insertions and retractions) was applied to the base graph,
without recomputing it — the DRed (delete/rederive) algorithm:

1. **Overdelete** — semi-naively propagate the retracted triples through
   the rules, collecting every derived triple that has *some* derivation
   using a retracted triple (an over-approximation of what must go).
2. **Rederive** — put back each overdeleted triple that still has a
   one-step derivation from the surviving database; retracted base
   triples that remain derivable re-enter the closure here too.
3. **Insert** — semi-naive extension seeded with the inserted triples
   plus the rederived ones, recovering everything downstream.

The result is bit-identical to a from-scratch :func:`closure` of the
new base (the incremental test-suite and the chaos harness assert this),
at a cost proportional to the delta's consequences instead of the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.obs.trace import span
from repro.rdf.graph import Graph, GraphView
from repro.rdf.terms import Literal, Triple, Variable
from repro.reasoning.rulebase import Rulebase
from repro.reasoning.rules import Rule


@dataclass
class InferenceReport:
    """Statistics of one closure computation or maintenance pass.

    ``mode`` is ``"full"`` for a from-scratch :func:`closure` and
    ``"incremental"`` for :func:`extend_closure` / :func:`maintain_closure`;
    ``overdeleted`` / ``rederived`` are only populated by the DRed path.
    """

    rulebase: str
    base_triples: int
    derived_triples: int = 0
    rounds: int = 0
    per_rule: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    mode: str = "full"
    overdeleted: int = 0
    rederived: int = 0

    def summary(self) -> str:
        dred = (
            f", {self.overdeleted} overdeleted / {self.rederived} rederived"
            if self.overdeleted or self.rederived
            else ""
        )
        return (
            f"{self.rulebase} [{self.mode}]: {self.derived_triples} derived from "
            f"{self.base_triples} base triples in {self.rounds} round(s)"
            f"{dred} ({self.seconds:.3f}s)"
        )


def closure(
    base: Graph,
    rulebase: Rulebase,
    max_rounds: Optional[int] = None,
) -> Tuple[Graph, InferenceReport]:
    """Compute the derived-only closure of ``base`` under ``rulebase``.

    Returns ``(derived, report)``. ``max_rounds`` bounds the iteration
    for pathological rule sets; the built-in rulebases always terminate
    because they only derive triples over the finite term vocabulary.
    """
    started = time.perf_counter()
    derived = Graph(name="derived")
    report = InferenceReport(rulebase=rulebase.name, base_triples=len(base))
    full = GraphView([base, derived])

    delta: Graph = base
    first_round = True
    with span(
        "reasoning.closure", "reasoning", rulebase=rulebase.name, base=len(base)
    ) as attrs:
        while True:
            if max_rounds is not None and report.rounds >= max_rounds:
                break
            new = Graph()
            for r in rulebase:
                fired = _fire_rule(r, delta, full, base, derived, new, first_round)
                if fired:
                    report.per_rule[r.name] = report.per_rule.get(r.name, 0) + fired
            report.rounds += 1
            first_round = False
            if not new:
                break
            derived.add_all(new)
            delta = new

        report.derived_triples = len(derived)
        attrs["rounds"] = report.rounds
        attrs["derived"] = report.derived_triples
    report.seconds = time.perf_counter() - started
    return derived, report


def extend_closure(
    base: Graph,
    derived: Graph,
    added: Iterable[Triple],
    rulebase: Rulebase,
) -> InferenceReport:
    """Incrementally extend an existing closure after ``added`` triples
    were inserted into ``base``.

    ``derived`` is updated in place. ``added`` must already be part of
    ``base``. Insertion-only special case of :func:`maintain_closure`.
    """
    return maintain_closure(base, derived, added, (), rulebase)


def maintain_closure(
    base: Graph,
    derived: Graph,
    added: Iterable[Triple],
    removed: Iterable[Triple],
    rulebase: Rulebase,
) -> InferenceReport:
    """DRed maintenance of an existing derived-only closure.

    ``base`` must already reflect the delta: ``added`` inserted,
    ``removed`` deleted. ``derived`` is updated in place to equal what a
    from-scratch ``closure(base, rulebase)`` would produce. This is the
    index-maintenance path a release-cycle load uses instead of
    recomputing the full closure.
    """
    started = time.perf_counter()
    report = InferenceReport(
        rulebase=rulebase.name, base_triples=len(base), mode="incremental"
    )
    dictionary = base.dictionary
    added_g = Graph(added, dictionary=dictionary)
    removed_g = Graph(removed, dictionary=dictionary)
    with span(
        "dred.maintain",
        "reasoning",
        rulebase=rulebase.name,
        added=len(added_g),
        removed=len(removed_g),
    ) as attrs:
        # An added base triple that was previously *derived* is now asserted;
        # the index stays derived-only, so it leaves the index (exactly what
        # a rebuild would do — closure() never emits triples in the base).
        for t in [t for t in added_g if t in derived]:
            derived.discard(t)

        # -- phase 1: overdeletion --------------------------------------------
        # Propagate retractions semi-naively. Premises are matched against a
        # superset of the *old* database (new base + old derived + removed);
        # matching a superset can only overdelete more, and rederivation puts
        # back anything still supported, so correctness is preserved.
        overdeleted = Graph(dictionary=dictionary)
        if removed_g:
            with span("dred.overdelete", "reasoning"):
                old_full = GraphView([base, derived, removed_g])
                delta = removed_g
                while delta:
                    doomed = Graph(dictionary=dictionary)
                    for r in rulebase:
                        for delta_position in range(len(r.premises)):
                            assignments = [
                                (premise, delta if i == delta_position else old_full)
                                for i, premise in enumerate(r.premises)
                            ]
                            assignments.sort(key=lambda pg: pg[1] is not delta)
                            for binding in _match_all(assignments, {}):
                                try:
                                    conclusion = r.instantiate(binding)
                                except TypeError:
                                    continue
                                if (
                                    conclusion in derived
                                    and conclusion not in overdeleted
                                    and conclusion not in doomed
                                ):
                                    doomed.add(conclusion)
                    report.rounds += 1
                    overdeleted.add_all(doomed)
                    delta = doomed
                for t in overdeleted:
                    derived.discard(t)
                report.overdeleted = len(overdeleted)

        # -- phase 2: rederivation --------------------------------------------
        # Overdeleted triples with a surviving one-step derivation come back;
        # so do retracted base triples that are still entailed (a rebuild
        # would include them in the derived-only closure now that they are
        # no longer asserted). Anything they support is recovered in phase 3.
        rederived = Graph(dictionary=dictionary)
        if overdeleted or removed_g:
            with span("dred.rederive", "reasoning"):
                current = GraphView([base, derived])
                for candidate in list(overdeleted) + list(removed_g):
                    if candidate in base or candidate in derived:
                        continue
                    if not _storable(candidate):
                        continue
                    if _derivable(candidate, current, rulebase):
                        derived.add(candidate)
                        rederived.add(candidate)
                report.rederived = len(rederived)

        # -- phase 3: semi-naive insertion ------------------------------------
        with span("dred.insert", "reasoning"):
            full = GraphView([base, derived])
            delta = Graph(dictionary=dictionary)
            delta.add_all(t for t in added_g if t in base)
            delta.add_all(rederived)
            while delta:
                new = Graph(dictionary=dictionary)
                for r in rulebase:
                    fired = _fire_rule(r, delta, full, base, derived, new, False)
                    if fired:
                        report.per_rule[r.name] = report.per_rule.get(r.name, 0) + fired
                report.rounds += 1
                derived.add_all(new)
                delta = new
        report.derived_triples = len(derived)
        attrs["overdeleted"] = report.overdeleted
        attrs["rederived"] = report.rederived
        attrs["derived"] = report.derived_triples
    report.seconds = time.perf_counter() - started
    return report


def _derivable(goal: Triple, full: GraphView, rulebase: Rulebase) -> bool:
    """One-step derivability: some rule concludes ``goal`` with every
    premise satisfied in ``full``."""
    for r in rulebase:
        binding = _head_binding(r, goal)
        if binding is None:
            continue
        assignments = [(premise, full) for premise in r.premises]
        # evaluate the most-bound premise first: cheap failure detection
        assignments.sort(key=lambda pg: _unbound_count(pg[0], binding))
        for _ in _match_all(assignments, binding):
            return True
    return False


def _head_binding(r: Rule, goal: Triple) -> Optional[Dict[str, object]]:
    """Unify a rule's conclusion pattern with ``goal``; None on mismatch."""
    binding: Dict[str, object] = {}
    for term, value in zip(r.conclusion, goal):
        if isinstance(term, Variable):
            bound = binding.get(term.name)
            if bound is None:
                binding[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return binding


def _unbound_count(pattern: Triple, binding: Dict[str, object]) -> int:
    return sum(
        1
        for term in pattern
        if isinstance(term, Variable) and term.name not in binding
    )


def _fire_rule(
    r: Rule,
    delta: Graph,
    full: GraphView,
    base: Graph,
    derived: Graph,
    new: Graph,
    first_round: bool,
) -> int:
    """Evaluate one rule semi-naively; add fresh conclusions to ``new``.

    Returns the number of fresh triples this call produced. On the first
    round delta == base == full, so a single pass (premise 0 in delta)
    is the plain naive evaluation and the remaining positions are
    skipped.
    """
    count = 0
    positions = range(1) if first_round else range(len(r.premises))
    for delta_position in positions:
        assignments = [
            (premise, delta if i == delta_position else full)
            for i, premise in enumerate(r.premises)
        ]
        # Evaluate the delta-restricted premise first: it is the smallest.
        assignments.sort(key=lambda pg: pg[1] is not delta)
        for binding in _match_all(assignments, {}):
            try:
                conclusion = r.instantiate(binding)
            except TypeError:
                # e.g. rdfs3 concluding rdf:type about a literal object —
                # not a valid RDF triple, so the inference is dropped
                continue
            if not _storable(conclusion):
                continue
            if conclusion in base or conclusion in derived or conclusion in new:
                continue
            new.add(conclusion)
            count += 1
    return count


def _storable(t: Triple) -> bool:
    # Rules like rdfs3 (range) can conclude rdf:type about a literal
    # object; such conclusions are not valid RDF triples and are dropped.
    return t.is_ground() and not isinstance(t.subject, Literal)


def _match_all(
    assignments: Sequence[Tuple[Triple, object]],
    binding: Dict[str, object],
) -> Iterator[Dict[str, object]]:
    if not assignments:
        yield binding
        return
    (pattern, graph), rest = assignments[0], assignments[1:]
    query = []
    for term in pattern:
        if isinstance(term, Variable):
            query.append(binding.get(term.name))
        else:
            query.append(term)
    s, p, o = query
    if isinstance(s, Literal):
        return
    for triple in graph.triples(s, p, o):
        extended = dict(binding)
        consistent = True
        for term, value in zip(pattern, triple):
            if isinstance(term, Variable):
                bound = extended.get(term.name)
                if bound is None:
                    extended[term.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield from _match_all(rest, extended)
