"""Semi-naive forward chaining to a fixpoint.

:func:`closure` computes the *derived-only* closure of a graph under a
rulebase: the result contains no triple already present in the base
graph, so it can be attached directly as an entailment index
(:meth:`TripleStore.attach_index`) without duplicating base facts.

The engine is semi-naive: in every round each rule is evaluated once per
premise position, with that premise restricted to the triples derived in
the previous round (the delta) and the remaining premises matched against
the full graph. This avoids re-deriving the whole closure every round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.rdf.graph import Graph, GraphView
from repro.rdf.terms import Literal, Triple, Variable
from repro.reasoning.rulebase import Rulebase
from repro.reasoning.rules import Rule


@dataclass
class InferenceReport:
    """Statistics of one closure computation."""

    rulebase: str
    base_triples: int
    derived_triples: int = 0
    rounds: int = 0
    per_rule: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.rulebase}: {self.derived_triples} derived from "
            f"{self.base_triples} base triples in {self.rounds} round(s) "
            f"({self.seconds:.3f}s)"
        )


def closure(
    base: Graph,
    rulebase: Rulebase,
    max_rounds: Optional[int] = None,
) -> Tuple[Graph, InferenceReport]:
    """Compute the derived-only closure of ``base`` under ``rulebase``.

    Returns ``(derived, report)``. ``max_rounds`` bounds the iteration
    for pathological rule sets; the built-in rulebases always terminate
    because they only derive triples over the finite term vocabulary.
    """
    started = time.perf_counter()
    derived = Graph(name="derived")
    report = InferenceReport(rulebase=rulebase.name, base_triples=len(base))
    full = GraphView([base, derived])

    delta: Graph = base
    first_round = True
    while True:
        if max_rounds is not None and report.rounds >= max_rounds:
            break
        new = Graph()
        for r in rulebase:
            fired = _fire_rule(r, delta, full, base, derived, new, first_round)
            if fired:
                report.per_rule[r.name] = report.per_rule.get(r.name, 0) + fired
        report.rounds += 1
        first_round = False
        if not new:
            break
        derived.add_all(new)
        delta = new

    report.derived_triples = len(derived)
    report.seconds = time.perf_counter() - started
    return derived, report


def extend_closure(
    base: Graph,
    derived: Graph,
    added: Iterable[Triple],
    rulebase: Rulebase,
) -> InferenceReport:
    """Incrementally extend an existing closure after ``added`` triples
    were inserted into ``base``.

    ``derived`` is updated in place. ``added`` must already be part of
    ``base``. This is the index-maintenance path a release-cycle load
    uses instead of recomputing the full closure.
    """
    started = time.perf_counter()
    report = InferenceReport(rulebase=rulebase.name, base_triples=len(base))
    full = GraphView([base, derived])
    delta = Graph(added)
    while delta:
        new = Graph()
        for r in rulebase:
            fired = _fire_rule(r, delta, full, base, derived, new, False)
            if fired:
                report.per_rule[r.name] = report.per_rule.get(r.name, 0) + fired
        report.rounds += 1
        derived.add_all(new)
        delta = new
    report.derived_triples = len(derived)
    report.seconds = time.perf_counter() - started
    return report


def _fire_rule(
    r: Rule,
    delta: Graph,
    full: GraphView,
    base: Graph,
    derived: Graph,
    new: Graph,
    first_round: bool,
) -> int:
    """Evaluate one rule semi-naively; add fresh conclusions to ``new``.

    Returns the number of fresh triples this call produced. On the first
    round delta == base == full, so a single pass (premise 0 in delta)
    is the plain naive evaluation and the remaining positions are
    skipped.
    """
    count = 0
    positions = range(1) if first_round else range(len(r.premises))
    for delta_position in positions:
        assignments = [
            (premise, delta if i == delta_position else full)
            for i, premise in enumerate(r.premises)
        ]
        # Evaluate the delta-restricted premise first: it is the smallest.
        assignments.sort(key=lambda pg: pg[1] is not delta)
        for binding in _match_all(assignments, {}):
            try:
                conclusion = r.instantiate(binding)
            except TypeError:
                # e.g. rdfs3 concluding rdf:type about a literal object —
                # not a valid RDF triple, so the inference is dropped
                continue
            if not _storable(conclusion):
                continue
            if conclusion in base or conclusion in derived or conclusion in new:
                continue
            new.add(conclusion)
            count += 1
    return count


def _storable(t: Triple) -> bool:
    # Rules like rdfs3 (range) can conclude rdf:type about a literal
    # object; such conclusions are not valid RDF triples and are dropped.
    return t.is_ground() and not isinstance(t.subject, Literal)


def _match_all(
    assignments: Sequence[Tuple[Triple, object]],
    binding: Dict[str, object],
) -> Iterator[Dict[str, object]]:
    if not assignments:
        yield binding
        return
    (pattern, graph), rest = assignments[0], assignments[1:]
    query = []
    for term in pattern:
        if isinstance(term, Variable):
            query.append(binding.get(term.name))
        else:
            query.append(term)
    s, p, o = query
    if isinstance(s, Literal):
        return
    for triple in graph.triples(s, p, o):
        extended = dict(binding)
        consistent = True
        for term, value in zip(pattern, triple):
            if isinstance(term, Variable):
                bound = extended.get(term.name)
                if bound is None:
                    extended[term.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield from _match_all(rest, extended)
