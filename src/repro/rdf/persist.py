"""Durable storage: save and load a :class:`TripleStore` on disk.

Layout of a store directory::

    store/
      manifest.json          # models, indexes, format version
      models/<name>.nt       # one N-Triples file per model
      indexes/<model>__<rulebase>.nt

N-Triples keeps the files diffable and greppable — metadata operators
live in text tools — and the deterministic serialization means repeated
saves of the same store are byte-identical.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.store import TripleStore
from repro.resilience import faults

FORMAT_VERSION = 1


class PersistenceError(Exception):
    """A malformed or incompatible store directory."""


def _write_atomic(path: Path, text: str) -> None:
    """Write via a sibling temp file + atomic rename.

    A crash mid-write leaves either the old file or the new one, never a
    torn half — the crash-recovery guarantee the load journal depends on
    when it re-saves a recovered store.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def save_store(store: TripleStore, directory: Union[str, Path]) -> Path:
    """Write ``store`` (models and entailment indexes) to ``directory``.

    The directory is created if needed; existing contents of the
    ``models/`` and ``indexes/`` subdirectories are replaced so the
    directory always reflects exactly the saved store. Every file is
    written atomically (temp + rename) and the manifest goes last, so a
    save that crashes part-way is *detectable* on the next load (the old
    manifest disagrees with the new data files) instead of silently
    serving a mixed store; re-running the save repairs it.
    """
    root = Path(directory)
    models_dir = root / "models"
    indexes_dir = root / "indexes"
    models_dir.mkdir(parents=True, exist_ok=True)
    indexes_dir.mkdir(parents=True, exist_ok=True)

    manifest: Dict = {
        "format_version": FORMAT_VERSION,
        "models": {},
        "indexes": [],
    }
    used_filenames = set()
    for name in store.model_names():
        if _safe_filename(name) + ".nt" in used_filenames:
            raise PersistenceError(
                f"model names collide after filename sanitization: {name!r}"
            )
        used_filenames.add(_safe_filename(name) + ".nt")
    for name in store.model_names():
        graph = store.model(name)
        filename = _safe_filename(name) + ".nt"
        _write_atomic(models_dir / filename, serialize_ntriples(graph))
        manifest["models"][name] = {
            "file": filename,
            "triples": len(graph),
            "frozen": graph.frozen,
        }
    index_filenames = set()
    for model, rulebase in store.index_names():
        derived = store.index(model, rulebase)
        filename = f"{_safe_filename(model)}__{_safe_filename(rulebase)}.nt"
        _write_atomic(indexes_dir / filename, serialize_ntriples(derived))
        index_filenames.add(filename)
        manifest["indexes"].append(
            {"model": model, "rulebase": rulebase, "file": filename, "triples": len(derived)}
        )
    faults.fire("persist.save")
    # stale files from a previous, larger save go before the manifest
    # commits, so an interrupted cleanup is re-done, never half-trusted
    for stale in list(models_dir.glob("*.nt")):
        if stale.name not in used_filenames:
            stale.unlink()
    for stale in list(indexes_dir.glob("*.nt")):
        if stale.name not in index_filenames:
            stale.unlink()
    _write_atomic(
        root / "manifest.json", json.dumps(manifest, indent=2, sort_keys=True)
    )
    return root


def load_store(directory: Union[str, Path]) -> TripleStore:
    """Load a store previously written by :func:`save_store`."""
    root = Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise PersistenceError(f"no manifest.json in {root}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"corrupt manifest: {exc}") from None
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported store format {version!r} (this build reads {FORMAT_VERSION})"
        )

    store = TripleStore()
    for name, entry in sorted(manifest.get("models", {}).items()):
        path = root / "models" / entry["file"]
        if not path.exists():
            raise PersistenceError(f"manifest lists missing model file {entry['file']}")
        graph = store.create_model(name)
        graph.add_all(parse_ntriples(path.read_text(encoding="utf-8")))
        if len(graph) != entry.get("triples", len(graph)):
            raise PersistenceError(
                f"model {name!r}: manifest says {entry['triples']} triples, "
                f"file has {len(graph)}"
            )
        if entry.get("frozen"):
            graph.freeze()
    for entry in manifest.get("indexes", []):
        path = root / "indexes" / entry["file"]
        if not path.exists():
            raise PersistenceError(f"manifest lists missing index file {entry['file']}")
        derived = Graph(parse_ntriples(path.read_text(encoding="utf-8")))
        store.attach_index(entry["model"], entry["rulebase"], derived)
    return store


def _safe_filename(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)
