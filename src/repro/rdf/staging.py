"""Staging tables for the bulk-load pipeline (Figure 4 of the paper).

Meta-data arrives as XML, is transformed to RDF triples, and lands in
staging tables before the bulk load moves it into the RDF model tables.
A :class:`StagingTable` holds rows in their *lexical* (string) form —
like Oracle's ``SEM_DTYPE``-typed staging columns — so malformed rows can
be detected and quarantined by the loader rather than corrupting a model.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple

from repro.rdf.terms import BNode, IRI, Literal, Term, Triple, unescape_literal


class StagingRow(NamedTuple):
    """One staged triple in lexical form.

    The subject/predicate/object columns use N-Triples surface syntax
    (``<iri>``, ``_:label``, ``"literal"``, ``"lit"@lang``,
    ``"lit"^^<dtype>``). ``source`` records which feed produced the row,
    for load-error reporting.
    """

    subject: str
    predicate: str
    object: str
    source: str = ""


class StagingTable:
    """An append-only buffer of :class:`StagingRow` entries."""

    def __init__(self, name: str = "staging"):
        self.name = name
        self._rows: List[StagingRow] = []

    def insert(self, subject: str, predicate: str, obj: str, source: str = "") -> None:
        """Insert one lexical row."""
        self._rows.append(StagingRow(subject, predicate, obj, source))

    def insert_row(self, row: StagingRow) -> None:
        self._rows.append(row)

    def insert_triples(self, triples: Iterable[Triple], source: str = "") -> int:
        """Stage already-parsed triples; returns the number staged."""
        n = 0
        for t in triples:
            self._rows.append(
                StagingRow(t.subject.n3(), t.predicate.n3(), t.object.n3(), source)
            )
            n += 1
        return n

    def rows(self) -> Iterator[StagingRow]:
        return iter(self._rows)

    def truncate(self) -> None:
        """Empty the table (after a successful bulk load)."""
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[StagingRow]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"<StagingTable {self.name!r} rows={len(self._rows)}>"


def parse_lexical_term(text: str) -> Term:
    """Parse one N-Triples-syntax term from a staging column.

    Raises ValueError on malformed input; the bulk loader turns that into
    a quarantined row rather than a failed load.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty term")
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith("_:"):
        return BNode(text[2:])
    if text.startswith('"'):
        return _parse_lexical_literal(text)
    raise ValueError(f"unrecognized term syntax: {text!r}")


def _parse_lexical_literal(text: str) -> Literal:
    # Find the closing quote, honouring backslash escapes.
    i = 1
    n = len(text)
    while i < n:
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == '"':
            break
        i += 1
    else:
        raise ValueError(f"unterminated literal: {text!r}")
    body = unescape_literal(text[1:i])
    rest = text[i + 1 :]
    if not rest:
        return Literal(body)
    if rest.startswith("@"):
        lang = rest[1:]
        if not lang or not all(ch.isalnum() or ch == "-" for ch in lang):
            raise ValueError(f"bad language tag: {rest!r}")
        return Literal(body, language=lang)
    if rest.startswith("^^<") and rest.endswith(">"):
        return Literal(body, datatype=IRI(rest[3:-1]))
    raise ValueError(f"bad literal suffix: {rest!r}")


def row_to_triple(row: StagingRow) -> Triple:
    """Parse a staged row into a ground :class:`Triple`.

    Raises ValueError when any column is malformed or the positions are
    of the wrong kind (e.g. a literal subject).
    """
    s = parse_lexical_term(row.subject)
    p = parse_lexical_term(row.predicate)
    o = parse_lexical_term(row.object)
    try:
        return Triple(s, p, o)
    except TypeError as exc:
        raise ValueError(str(exc)) from None
