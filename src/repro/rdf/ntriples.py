"""N-Triples serialization and parsing.

N-Triples is the line-oriented exchange format the ETL pipeline uses for
flat RDF files (e.g. the DBpedia extracts the paper merges in). The
serializer emits triples in deterministic sorted order so output files
diff cleanly across versions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Union

from repro.rdf.graph import Graph
from repro.rdf.staging import parse_lexical_term
from repro.rdf.terms import IRI, Triple


class NTriplesParseError(ValueError):
    """A malformed N-Triples line, carrying its 1-based line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def serialize_ntriples(triples: Union[Graph, Iterable[Triple]]) -> str:
    """Serialize triples as N-Triples text, sorted deterministically."""
    lines = [
        f"{t.subject.n3()} {t.predicate.n3()} {t.object.n3()} ."
        for t in sorted(triples, key=lambda t: (t[0].sort_key(), t[1].sort_key(), t[2].sort_key()))
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples text, yielding triples.

    Comments (``# ...``) and blank lines are skipped. Raises
    :class:`NTriplesParseError` with the offending line number.
    """
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if not line.endswith("."):
            raise NTriplesParseError(lineno, "statement does not end with '.'")
        body = line[:-1].strip()
        try:
            terms = _split_terms(body)
        except ValueError as exc:
            raise NTriplesParseError(lineno, str(exc)) from None
        if len(terms) != 3:
            raise NTriplesParseError(lineno, f"expected 3 terms, found {len(terms)}")
        try:
            s = parse_lexical_term(terms[0])
            p = parse_lexical_term(terms[1])
            o = parse_lexical_term(terms[2])
            yield Triple(s, p, o)
        except (ValueError, TypeError) as exc:
            raise NTriplesParseError(lineno, str(exc)) from None


def parse_ntriples_graph(text: str, name: str = "") -> Graph:
    """Parse N-Triples text directly into a new :class:`Graph`."""
    return Graph(parse_ntriples(text), name=name)


def _split_terms(body: str) -> List[str]:
    """Split an N-Triples statement body into its whitespace-separated
    terms, honouring quotes and angle brackets."""
    terms: List[str] = []
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch.isspace():
            i += 1
            continue
        start = i
        if ch == "<":
            end = body.find(">", i)
            if end == -1:
                raise ValueError("unterminated IRI")
            i = end + 1
        elif ch == '"':
            i += 1
            while i < n:
                if body[i] == "\\":
                    i += 2
                    continue
                if body[i] == '"':
                    break
                i += 1
            if i >= n:
                raise ValueError("unterminated literal")
            i += 1  # past closing quote
            # optional @lang or ^^<datatype>
            if i < n and body[i] == "@":
                while i < n and not body[i].isspace():
                    i += 1
            elif body.startswith("^^<", i):
                end = body.find(">", i + 3)
                if end == -1:
                    raise ValueError("unterminated datatype IRI")
                i = end + 1
        else:
            while i < n and not body[i].isspace():
                i += 1
        terms.append(body[start:i])
    return terms
