"""RDF/XML writer.

The paper's pipeline converts source meta-data from XML into RDF; RDF/XML
output closes the loop, letting the warehouse hand meta-data back to
XML-based consumers (e.g. model-driven tooling that converts RDF to UML,
mentioned in the paper's introduction). Only serialization is provided —
ingest always goes through the domain XML transformer in
:mod:`repro.etl.transformer` or the N-Triples/Turtle parsers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union
from xml.sax.saxutils import escape, quoteattr

from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager, RDF
from repro.rdf.terms import BNode, IRI, Literal, Triple


def serialize_rdfxml(
    triples: Union[Graph, Iterable[Triple]],
    nsm: Optional[NamespaceManager] = None,
) -> str:
    """Serialize triples as RDF/XML with one ``rdf:Description`` per subject.

    Predicates must be compactable to a qname through ``nsm`` (RDF/XML
    cannot express arbitrary predicate IRIs as element names); a
    ValueError names the offending predicate otherwise.
    """
    nsm = nsm or NamespaceManager()
    by_subject: Dict = {}
    for t in triples:
        by_subject.setdefault(t.subject, []).append((t.predicate, t.object))

    used_prefixes = {"rdf"}
    bodies: List[str] = []
    for subject in sorted(by_subject, key=lambda s: s.sort_key()):
        props: List[str] = []
        for p, o in sorted(by_subject[subject], key=lambda po: (po[0].sort_key(), po[1].sort_key())):
            qname = nsm.compact(p)
            if qname is None:
                raise ValueError(
                    f"predicate {p.value} has no namespace binding; bind a prefix first"
                )
            used_prefixes.add(qname.split(":", 1)[0])
            props.append(_property_element(qname, o))
        about = (
            f"rdf:about={quoteattr(subject.value)}"
            if isinstance(subject, IRI)
            else f"rdf:nodeID={quoteattr(subject.label)}"
        )
        body = "\n".join(f"    {line}" for line in props)
        bodies.append(f"  <rdf:Description {about}>\n{body}\n  </rdf:Description>")

    ns_attrs = []
    for prefix, ns in nsm.bindings():
        if prefix in used_prefixes:
            ns_attrs.append(f"xmlns:{prefix}={quoteattr(ns.base)}")
    if "rdf" not in {a.split("=")[0][6:] for a in ns_attrs}:
        ns_attrs.insert(0, f'xmlns:rdf="{RDF.base}"')
    header = "<?xml version='1.0' encoding='UTF-8'?>\n"
    open_tag = "<rdf:RDF " + " ".join(sorted(set(ns_attrs))) + ">"
    return header + open_tag + "\n" + "\n".join(bodies) + "\n</rdf:RDF>\n"


def _property_element(qname: str, obj) -> str:
    if isinstance(obj, IRI):
        return f"<{qname} rdf:resource={quoteattr(obj.value)}/>"
    if isinstance(obj, BNode):
        return f"<{qname} rdf:nodeID={quoteattr(obj.label)}/>"
    if isinstance(obj, Literal):
        attrs = ""
        if obj.language is not None:
            attrs = f" xml:lang={quoteattr(obj.language)}"
        elif obj.datatype is not None:
            attrs = f" rdf:datatype={quoteattr(obj.datatype.value)}"
        return f"<{qname}{attrs}>{escape(obj.lexical)}</{qname}>"
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")
