"""Index statistics for the cost-based query optimizer.

Oracle's optimizer orders SEM_MATCH triple patterns from statistics it
gathers over the RDF model tables; this module is that catalog for the
in-memory graph. Per predicate it records the triple count, the number
of distinct subjects and objects, and a top-k heavy-hitter histogram of
the most frequent subjects/objects — enough for the planner to turn
"``?x dm:isMappedTo ?y`` with ``?x`` already bound" into a per-binding
probe estimate instead of a full wildcard scan (the Koch meta-level
indexing idea from PAPERS.md, applied to our own planner).

Collection walks the POS and SPO indexes once (O(triples)) at
index-build time. Between rebuilds the catalog subscribes to the
graph's change events and nets per-predicate drift: triple *counts*
stay exact (built count + net drift), while distinct counts and heavy
hitters are served stale until the accumulated churn crosses
``refresh_threshold`` × the size at build — then the next consumer
triggers a rebuild (``mdw_planner_stats_refreshes_total``). The DRed
delta trackers drive the same refresh eagerly after incremental
release maintenance, so query time rarely pays for it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

#: Keep this many heavy hitters per predicate and position.
DEFAULT_TOP_K = 8

#: Rebuild when net churn exceeds this fraction of the size at build.
DEFAULT_REFRESH_THRESHOLD = 0.25


def _planner_metrics():
    """The mdw_planner_* stats families (memoized; off every hot path)."""
    from repro.obs.registry import get_registry

    registry = get_registry()
    return registry.counter(
        "mdw_planner_stats_refreshes_total",
        help="Statistics catalog rebuilds, by trigger",
        labels=("trigger",),
    )


class PredicateStats:
    """Statistics of one predicate: cardinality, distincts, heavy hitters.

    ``top_subjects`` / ``top_objects`` are ``(term id, frequency)``
    pairs sorted by descending frequency — the selectivity histogram's
    heavy-hitter buckets; everything below them is assumed uniform.
    """

    __slots__ = (
        "predicate_id", "count", "distinct_subjects", "distinct_objects",
        "top_subjects", "top_objects", "_wsub", "_wobj",
    )

    def __init__(
        self,
        predicate_id: int,
        count: int,
        distinct_subjects: int,
        distinct_objects: int,
        top_subjects: Tuple[Tuple[int, int], ...] = (),
        top_objects: Tuple[Tuple[int, int], ...] = (),
    ):
        self.predicate_id = predicate_id
        self.count = count
        self.distinct_subjects = distinct_subjects
        self.distinct_objects = distinct_objects
        self.top_subjects = top_subjects
        self.top_objects = top_objects
        self._wsub: Optional[float] = None
        self._wobj: Optional[float] = None

    def subject_fanout(self) -> float:
        """Mean triples per distinct subject (uniform assumption)."""
        return self.count / self.distinct_subjects if self.distinct_subjects else 0.0

    def object_fanout(self) -> float:
        """Mean triples per distinct object (uniform assumption)."""
        return self.count / self.distinct_objects if self.distinct_objects else 0.0

    def _weighted(self, top: Tuple[Tuple[int, int], ...], distinct: int) -> float:
        """Expected matches for a probe value drawn frequency-weighted
        (sum f_i^2 / count): heavy hitters exact, the tail uniform."""
        if not self.count or not distinct:
            return 0.0
        head_sq = sum(f * f for _, f in top)
        head_total = sum(f for _, f in top)
        tail_values = distinct - len(top)
        tail_total = self.count - head_total
        tail_sq = (tail_total * tail_total / tail_values) if tail_values > 0 else 0.0
        return (head_sq + tail_sq) / self.count

    def weighted_subject_fanout(self) -> float:
        """Skew-aware per-subject fanout: what a probe should *expect*
        when its bindings are correlated with the data (worst common case)."""
        if self._wsub is None:
            self._wsub = self._weighted(self.top_subjects, self.distinct_subjects)
        return self._wsub

    def weighted_object_fanout(self) -> float:
        if self._wobj is None:
            self._wobj = self._weighted(self.top_objects, self.distinct_objects)
        return self._wobj

    def skew(self) -> float:
        """Ratio of the heaviest subject/object frequency to the mean;
        1.0 means perfectly uniform."""
        peaks = []
        if self.top_subjects and self.distinct_subjects:
            peaks.append(self.top_subjects[0][1] / self.subject_fanout())
        if self.top_objects and self.distinct_objects:
            peaks.append(self.top_objects[0][1] / self.object_fanout())
        return max(peaks) if peaks else 1.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
            "top_subjects": list(self.top_subjects),
            "top_objects": list(self.top_objects),
        }

    def __repr__(self) -> str:
        return (
            f"<PredicateStats p={self.predicate_id} n={self.count} "
            f"ds={self.distinct_subjects} do={self.distinct_objects}>"
        )


class StatsCatalog:
    """The per-graph statistics catalog the planner costs plans from.

    Created lazily via :attr:`Graph.stats`; subscribes to the graph's
    change events from then on. Every event is an O(1) drift bump —
    the O(triples) collection pass only runs on first use and when the
    churn since the last build crosses the refresh threshold.
    """

    _serials = itertools.count(1)

    def __init__(
        self,
        graph,
        refresh_threshold: float = DEFAULT_REFRESH_THRESHOLD,
        top_k: int = DEFAULT_TOP_K,
    ):
        if refresh_threshold <= 0:
            raise ValueError("refresh_threshold must be positive")
        self._serial = next(StatsCatalog._serials)
        self._graph = graph
        self.refresh_threshold = refresh_threshold
        self.top_k = top_k
        self._predicates: Dict[int, PredicateStats] = {}
        self._built = False
        self._built_size = 0
        self._built_generation: Optional[int] = None
        # net triple drift per predicate id since the last build, plus
        # the total event churn (adds + removes, never netted: two
        # compensating events still age the distinct counts)
        self._drift: Dict[int, int] = {}
        self._churn = 0
        self.refreshes = 0
        graph.subscribe(self._on_change)

    # -- change tracking ----------------------------------------------------

    def _on_change(self, action: str, triple) -> None:
        pid = self._graph.dictionary.lookup(triple.predicate)
        if pid is None:  # removal of a term-interned triple always resolves
            return
        self._drift[pid] = self._drift.get(pid, 0) + (1 if action == "add" else -1)
        self._churn += 1

    def close(self) -> None:
        self._graph.unsubscribe(self._on_change)

    # -- freshness ----------------------------------------------------------

    @property
    def built(self) -> bool:
        return self._built

    @property
    def churn(self) -> int:
        """Change events since the last build (adds + removes, unnetted)."""
        return self._churn

    def is_stale(self) -> bool:
        """True when enough churn accumulated that the distinct counts
        and histograms can no longer be trusted."""
        if not self._built:
            return True
        budget = max(1.0, self.refresh_threshold * max(self._built_size, 1))
        return self._churn > budget

    def ensure_fresh(self, trigger: str = "drift") -> bool:
        """Rebuild when stale; returns True when a rebuild ran."""
        if not self._built:
            self.rebuild(trigger="initial")
            return True
        if self.is_stale():
            self.rebuild(trigger=trigger)
            return True
        return False

    def rebuild(self, trigger: str = "forced") -> None:
        """Recollect every per-predicate statistic from the indexes."""
        graph = self._graph
        top_k = self.top_k
        predicates: Dict[int, PredicateStats] = {}
        # one POS pass: counts, distinct objects, object heavy hitters,
        # distinct subjects via union of the per-object subject sets
        for pid, by_o in graph._pos.items():
            count = 0
            subjects: Dict[int, int] = {}
            obj_freq: List[Tuple[int, int]] = []
            for oid, subs in by_o.items():
                n = len(subs)
                count += n
                obj_freq.append((n, oid))
                for sid in subs:
                    subjects[sid] = subjects.get(sid, 0) + 1
            obj_freq.sort(key=lambda t: (-t[0], t[1]))
            subj_freq = sorted(
                ((n, sid) for sid, n in subjects.items()),
                key=lambda t: (-t[0], t[1]),
            )
            predicates[pid] = PredicateStats(
                pid,
                count,
                distinct_subjects=len(subjects),
                distinct_objects=len(by_o),
                top_subjects=tuple((sid, n) for n, sid in subj_freq[:top_k]),
                top_objects=tuple((oid, n) for n, oid in obj_freq[:top_k]),
            )
        self._predicates = predicates
        self._built = True
        self._built_size = len(graph)
        self._built_generation = getattr(graph, "generation", None)
        self._drift.clear()
        self._churn = 0
        self.refreshes += 1
        _planner_metrics().inc(trigger=trigger)

    # -- lookups ------------------------------------------------------------

    def predicate(self, predicate_id: int) -> Optional[PredicateStats]:
        """Stats for a predicate id, building the catalog on first use.

        Counts stay exact while stale (built count + net drift);
        distinct counts and histograms are the as-built values until
        the churn threshold forces a rebuild.
        """
        self.ensure_fresh()
        stats = self._predicates.get(predicate_id)
        drift = self._drift.get(predicate_id, 0)
        if stats is None:
            if drift <= 0:
                return None
            # predicate appeared entirely after the last build
            return PredicateStats(
                predicate_id, drift,
                distinct_subjects=max(1, drift), distinct_objects=max(1, drift),
            )
        if not drift:
            return stats
        corrected = max(0, stats.count + drift)
        return PredicateStats(
            predicate_id,
            corrected,
            distinct_subjects=min(stats.distinct_subjects, corrected) or (1 if corrected else 0),
            distinct_objects=min(stats.distinct_objects, corrected) or (1 if corrected else 0),
            top_subjects=stats.top_subjects,
            top_objects=stats.top_objects,
        )

    def predicate_count(self) -> int:
        self.ensure_fresh()
        return len(self._predicates)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view (CLI / debugging)."""
        self.ensure_fresh()
        term = self._graph.dictionary.term
        return {
            "built_size": self._built_size,
            "churn": self._churn,
            "refreshes": self.refreshes,
            "predicates": {
                term(pid).n3(): stats.snapshot()
                for pid, stats in sorted(self._predicates.items())
            },
        }

    def __repr__(self) -> str:
        state = f"predicates={len(self._predicates)}" if self._built else "unbuilt"
        return f"<StatsCatalog {self._graph.name!r} {state} churn={self._churn}>"


class CombinedStats:
    """Per-predicate statistics merged over a :class:`GraphView`'s layers.

    Counts add exactly; heavy hitters merge by id. Distinct counts take
    the **max** across layers (a union lower bound): the usual layering
    is the base model plus its entailment index, which share nearly all
    their subjects, so summing would double-count terms and halve every
    estimated fanout — the classic way an optimizer talks itself into a
    cheap-looking anchor that explodes downstream. Undercounting skews
    the other way (overestimated fanouts), which only makes plans more
    conservative.
    """

    # Merged results cached across instances: GraphView.stats() builds a
    # fresh CombinedStats per call, so the cache must outlive any one
    # wrapper. Keyed by catalog identity (monotonic serial, never a
    # reusable id()) plus each layer's rebuild/churn counters — any
    # change that could alter a layer's answer changes the key.
    _merge_cache: Dict[tuple, Optional[PredicateStats]] = {}
    _MERGE_CACHE_CAP = 4096

    def __init__(self, catalogs):
        self._catalogs = tuple(catalogs)

    def predicate(self, predicate_id: int) -> Optional[PredicateStats]:
        for catalog in self._catalogs:
            catalog.ensure_fresh()
        key = (predicate_id,) + tuple(
            (c._serial, c.refreshes, c._churn) for c in self._catalogs
        )
        cache = CombinedStats._merge_cache
        if key in cache:
            return cache[key]
        merged = self._merge(predicate_id)
        if len(cache) >= CombinedStats._MERGE_CACHE_CAP:
            cache.clear()
        cache[key] = merged
        return merged

    def _merge(self, predicate_id: int) -> Optional[PredicateStats]:
        parts = [
            stats
            for catalog in self._catalogs
            if (stats := catalog.predicate(predicate_id)) is not None
        ]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        merged_subjects: Dict[int, int] = {}
        merged_objects: Dict[int, int] = {}
        for stats in parts:
            for sid, n in stats.top_subjects:
                merged_subjects[sid] = merged_subjects.get(sid, 0) + n
            for oid, n in stats.top_objects:
                merged_objects[oid] = merged_objects.get(oid, 0) + n
        top_k = max(len(p.top_subjects) for p in parts)
        top_subjects = tuple(
            sorted(merged_subjects.items(), key=lambda t: (-t[1], t[0]))[:top_k]
        )
        top_objects = tuple(
            sorted(merged_objects.items(), key=lambda t: (-t[1], t[0]))[:top_k]
        )
        return PredicateStats(
            predicate_id,
            sum(p.count for p in parts),
            distinct_subjects=max(p.distinct_subjects for p in parts),
            distinct_objects=max(p.distinct_objects for p in parts),
            top_subjects=top_subjects,
            top_objects=top_objects,
        )

    def ensure_fresh(self, trigger: str = "drift") -> bool:
        return any([c.ensure_fresh(trigger) for c in self._catalogs])

    def __repr__(self) -> str:
        return f"<CombinedStats layers={len(self._catalogs)}>"


def stats_of(graph):
    """The statistics provider for a Graph or GraphView (or None when
    the object supports neither — e.g. a bare mock in tests)."""
    getter = getattr(graph, "stats", None)
    if getter is None:
        return None
    return getter() if callable(getter) else getter
