"""Indexed in-memory RDF graph.

The Oracle RDF model tables of the paper are replicated as a triple-indexed
in-memory graph: three nested dictionaries (SPO, POS, OSP) so any triple
pattern with one or two bound positions is answered without a full scan.
Like Oracle's ``RDF_VALUE$`` dictionary encoding, terms are interned to
integer ids through a :class:`~repro.rdf.dictionary.TermDictionary` and
the indexes key on ints — pattern matching and joins compare ids instead
of re-hashing term objects (see :mod:`repro.sparql.evaluator` for the
id-space join operators built on :meth:`Graph.triples_ids`).

:class:`GraphView` overlays several graphs read-only — this is how a query
that names ``SEM_RULEBASES('OWLPRIME')`` sees the base model *plus* the
entailment index without the derived triples ever being merged into the
base facts (Section III.B of the paper). When the caller can prove the
layers pairwise disjoint (base model vs. a freshly built entailment
index), ``disjoint_hint=True`` skips the per-triple dedup set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.dictionary import DEFAULT_DICTIONARY, TermDictionary
from repro.rdf.terms import IRI, Literal, Term, Triple

_Index = Dict[int, Dict[int, Set[int]]]

#: id-space triple: (subject id, predicate id, object id)
IdTriple = Tuple[int, int, int]

_COUNT_CACHE_LIMIT = 4096


class ReadOnlyGraphError(Exception):
    """Raised when mutating a read-only graph or view."""


class Graph:
    """A mutable set of triples with SPO / POS / OSP indexes.

    >>> g = Graph()
    >>> g.add(Triple(IRI("ex:s"), IRI("ex:p"), Literal("o")))
    >>> len(g)
    1
    """

    __slots__ = (
        "_dict",
        "_spo",
        "_pos",
        "_osp",
        "_size",
        "_frozen",
        "_listeners",
        "_generation",
        "_count_cache",
        "_count_cache_gen",
        "_cow",
        "_owned_s",
        "_owned_p",
        "_owned_o",
        "_stats",
        "name",
    )

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        name: str = "",
        dictionary: Optional[TermDictionary] = None,
    ):
        self._dict = dictionary if dictionary is not None else DEFAULT_DICTIONARY
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._frozen = False
        self._listeners = ()
        self._generation = 0
        self._count_cache: Dict[tuple, int] = {}
        self._count_cache_gen = 0
        # copy-on-write state: after cow_copy() the inner dicts/sets may
        # be shared with another graph; a mutator privatizes the touched
        # subtrees first (see _privatize)
        self._cow = False
        self._owned_s: Set[int] = set()
        self._owned_p: Set[int] = set()
        self._owned_o: Set[int] = set()
        self._stats = None
        self.name = name
        if triples is not None:
            for t in triples:
                self.add(t)

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary this graph interns into."""
        return self._dict

    @property
    def generation(self) -> int:
        """Monotonic change counter: bumps on every effective mutation.

        Plan caches, selectivity caches, and the hierarchy memoization
        compare generations instead of subscribing to individual change
        events — equal generation means bit-identical triple content.
        """
        return self._generation

    # -- change notification ------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register ``listener(action, triple)`` for change events.

        ``action`` is ``"add"`` or ``"remove"``; only effective changes
        notify (duplicate adds and missed removes are silent). The audit
        journal and index-staleness tracking build on this.
        """
        self._listeners = (*self._listeners, listener)

    def unsubscribe(self, listener) -> None:
        # equality, not identity: bound methods are recreated per access
        self._listeners = tuple(l for l in self._listeners if l != listener)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a ground triple. Returns True when it was not present."""
        self._check_writable()
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if not triple.is_ground():
            raise ValueError(f"cannot store non-ground triple: {triple.n3()}")
        intern = self._dict.intern
        s, p, o = triple
        si, pi, oi = intern(s), intern(p), intern(o)
        if self._cow:
            self._privatize(si, pi, oi)
        objs = self._spo.setdefault(si, {}).setdefault(pi, set())
        if oi in objs:
            return False
        objs.add(oi)
        self._pos.setdefault(pi, {}).setdefault(oi, set()).add(si)
        self._osp.setdefault(oi, {}).setdefault(si, set()).add(pi)
        self._size += 1
        self._generation += 1
        for listener in self._listeners:
            listener("add", triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> None:
        """Remove a triple; raises KeyError when absent."""
        if not self.discard(triple):
            raise KeyError(triple)

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present. Returns True when it was removed."""
        self._check_writable()
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        lookup = self._dict.lookup
        si, pi, oi = lookup(triple[0]), lookup(triple[1]), lookup(triple[2])
        if si is None or pi is None or oi is None:
            return False
        if self._cow:
            self._privatize(si, pi, oi)
        try:
            self._spo[si][pi].remove(oi)
        except KeyError:
            return False
        _prune(self._spo, si, pi)
        self._pos[pi][oi].remove(si)
        _prune(self._pos, pi, oi)
        self._osp[oi][si].remove(pi)
        _prune(self._osp, oi, si)
        self._size -= 1
        self._generation += 1
        for listener in self._listeners:
            listener("remove", triple)
        return True

    def remove_pattern(self, s=None, p=None, o=None) -> int:
        """Remove every triple matching the pattern; returns the count."""
        doomed = list(self.triples(s, p, o))
        for t in doomed:
            self.discard(t)
        return len(doomed)

    def clear(self) -> None:
        self._check_writable()
        if self._listeners:
            for t in list(self.triples()):
                self.discard(t)
            return
        if self._size:
            self._generation += 1
        # outer index dicts are never shared (cow_copy shallow-copies
        # them), so clearing them drops every shared inner structure at
        # once — afterwards nothing is shared and CoW mode can end
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0
        if self._cow:
            self._cow = False
            self._owned_s.clear()
            self._owned_p.clear()
            self._owned_o.clear()

    def freeze(self) -> "Graph":
        """Make the graph immutable (used by historized snapshots)."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _check_writable(self) -> None:
        if self._frozen:
            raise ReadOnlyGraphError(f"graph {self.name!r} is frozen")

    def _privatize(self, si: int, pi: int, oi: int) -> None:
        """Unshare the index subtrees a mutation of (si, pi, oi) touches.

        After :meth:`cow_copy` the *inner* dicts and sets may be shared
        with the other graph; cloning just the three touched subtrees
        (cost O(degree of the term)) keeps a delta-sized write after a
        CoW publication proportional to the delta, not the graph.
        """
        if si not in self._owned_s:
            self._owned_s.add(si)
            by_p = self._spo.get(si)
            if by_p is not None:
                self._spo[si] = {p: set(objs) for p, objs in by_p.items()}
        if pi not in self._owned_p:
            self._owned_p.add(pi)
            by_o = self._pos.get(pi)
            if by_o is not None:
                self._pos[pi] = {o: set(subs) for o, subs in by_o.items()}
        if oi not in self._owned_o:
            self._owned_o.add(oi)
            by_s = self._osp.get(oi)
            if by_s is not None:
                self._osp[oi] = {s: set(preds) for s, preds in by_s.items()}

    # -- id-space access ----------------------------------------------------

    def _encode_pattern(self, s, p, o):
        """Terms → ids for a pattern; None wildcards pass through.

        Returns None when a bound term is unknown to the dictionary —
        no stored triple can match it.
        """
        lookup = self._dict.lookup
        if s is not None:
            s = lookup(s)
            if s is None:
                return None
        if p is not None:
            p = lookup(p)
            if p is None:
                return None
        if o is not None:
            o = lookup(o)
            if o is None:
                return None
        return s, p, o

    def triples_ids(self, s=None, p=None, o=None) -> Iterator[IdTriple]:
        """Yield id-triples matching the id pattern (None = wildcard).

        Arguments are dictionary ids (ints), not terms. This is the
        fast path the join operators run on: no term objects are built
        and no term hashing happens during iteration.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objs = by_p.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield (s, p, o)
                else:
                    for obj in objs:
                        yield (s, p, obj)
            else:
                for pred, objs in by_p.items():
                    if o is not None:
                        if o in objs:
                            yield (s, pred, o)
                    else:
                        for obj in objs:
                            yield (s, pred, obj)
        elif p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjs in by_o.items():
                    for subj in subjs:
                        yield (subj, p, obj)
        elif o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, o)
        else:
            for subj, by_p in self._spo.items():
                for pred, objs in by_p.items():
                    for obj in objs:
                        yield (subj, pred, obj)

    def has_ids(self, s: int, p: int, o: int) -> bool:
        """Membership test over dictionary ids (no term hashing).

        The release differ iterates one graph in id space and probes the
        other with this — sharing a dictionary makes the whole diff run
        on ints.
        """
        return o in self._spo.get(s, {}).get(p, ())

    def count_ids(self, s=None, p=None, o=None) -> int:
        """Like :meth:`count` but over dictionary ids."""
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return 0
            if p is not None:
                objs = by_p.get(p)
                if objs is None:
                    return 0
                if o is not None:
                    return 1 if o in objs else 0
                return len(objs)
            if o is not None:
                preds = self._osp.get(o, {}).get(s)
                return len(preds) if preds is not None else 0
            return sum(len(objs) for objs in by_p.values())
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return 0
            if o is not None:
                subjs = by_o.get(o)
                return len(subjs) if subjs is not None else 0
            return sum(len(subjs) for subjs in by_o.values())
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return 0
            return sum(len(preds) for preds in by_s.values())
        return self._size

    # -- matching ----------------------------------------------------------

    def triples(self, s=None, p=None, o=None) -> Iterator[Triple]:
        """Yield every triple matching the pattern (None = wildcard).

        Dispatches to the most selective index for the bound positions.
        """
        encoded = self._encode_pattern(s, p, o)
        if encoded is None:
            return
        term = self._dict.term
        for si, pi, oi in self.triples_ids(*encoded):
            yield Triple(term(si), term(pi), term(oi))

    def count(self, s=None, p=None, o=None) -> int:
        """Number of triples matching the pattern, without materializing.

        Every bound/unbound combination is answered directly from one of
        the three indexes — no pattern falls back to an iteration over
        matching triples, so the planner can call this in a loop.
        """
        encoded = self._encode_pattern(s, p, o)
        if encoded is None:
            return 0
        return self.count_ids(*encoded)

    def cached_count(self, s=None, p=None, o=None) -> int:
        """Memoized :meth:`count`, invalidated by the generation counter.

        The join planner estimates every pattern of every query against
        the same handful of (predicate, class) shapes; caching per
        (pattern, generation) turns re-planning into dict lookups.
        """
        if self._count_cache_gen != self._generation:
            self._count_cache.clear()
            self._count_cache_gen = self._generation
        key = (s, p, o)
        cached = self._count_cache.get(key)
        if cached is None:
            if len(self._count_cache) >= _COUNT_CACHE_LIMIT:
                self._count_cache.clear()
            cached = self.count(s, p, o)
            self._count_cache[key] = cached
        return cached

    def stats(self):
        """The graph's :class:`~repro.rdf.stats.StatsCatalog` (created
        lazily; it subscribes to change events from then on).

        Copies (:meth:`copy` / :meth:`cow_copy`) do not inherit the
        catalog — each graph collects its own on first use.
        """
        if self._stats is None:
            from repro.rdf.stats import StatsCatalog

            self._stats = StatsCatalog(self)
        return self._stats

    def distinct_subject_count(self) -> int:
        """Number of distinct subjects over all triples — O(1)."""
        return len(self._spo)

    def distinct_predicate_count(self) -> int:
        """Number of distinct predicates over all triples — O(1)."""
        return len(self._pos)

    def distinct_object_count(self) -> int:
        """Number of distinct objects over all triples — O(1)."""
        return len(self._osp)

    def __contains__(self, triple) -> bool:
        lookup = self._dict.lookup
        s, p, o = triple
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        return oi in self._spo.get(si, {}).get(pi, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, (Graph, GraphView)):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __hash__(self):
        raise TypeError("Graph is unhashable (mutable)")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} size={self._size}>"

    # -- convenience accessors ----------------------------------------------

    def subjects(self, p=None, o=None) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, p, o)``."""
        if p is not None and o is not None:
            encoded = self._encode_pattern(None, p, o)
            if encoded is None:
                return
            term = self._dict.term
            for si in self._pos.get(encoded[1], {}).get(encoded[2], ()):
                yield term(si)
        else:
            seen = set()
            for t in self.triples(None, p, o):
                if t.subject not in seen:
                    seen.add(t.subject)
                    yield t.subject

    def objects(self, s=None, p=None) -> Iterator[Term]:
        """Distinct objects of triples matching ``(s, p, ?)``."""
        if s is not None and p is not None:
            encoded = self._encode_pattern(s, p, None)
            if encoded is None:
                return
            term = self._dict.term
            for oi in self._spo.get(encoded[0], {}).get(encoded[1], ()):
                yield term(oi)
        else:
            seen = set()
            for t in self.triples(s, p, None):
                if t.object not in seen:
                    seen.add(t.object)
                    yield t.object

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(s, ?, o)``."""
        if s is not None and o is not None:
            encoded = self._encode_pattern(s, None, o)
            if encoded is None:
                return
            term = self._dict.term
            for pi in self._osp.get(encoded[2], {}).get(encoded[0], ()):
                yield term(pi)
        else:
            seen = set()
            for t in self.triples(s, None, o):
                if t.predicate not in seen:
                    seen.add(t.predicate)
                    yield t.predicate

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        """The unique term filling the single unbound position, or None.

        Exactly one of s/p/o must be None. Returns None when no triple
        matches; when several match, an arbitrary one is returned.
        """
        unbound = [name for name, t in zip("spo", (s, p, o)) if t is None]
        if len(unbound) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for t in self.triples(s, p, o):
            return {"s": t.subject, "p": t.predicate, "o": t.object}[unbound[0]]
        return None

    def nodes(self) -> Iterator[Term]:
        """Distinct terms appearing in subject or object position."""
        term = self._dict.term
        seen: Set[int] = set()
        for si in self._spo:
            if si not in seen:
                seen.add(si)
                yield term(si)
        for oi in self._osp:
            if oi not in seen:
                seen.add(oi)
                yield term(oi)

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    # -- set operations ------------------------------------------------------

    def copy(self, name: str = "") -> "Graph":
        """A mutable copy sharing this graph's term dictionary.

        Copies the three indexes structurally (dict/set comprehensions
        over ids) instead of re-interning term objects — an order of
        magnitude faster, which matters because the query service
        publishes a copy as the new reader snapshot after every write
        epoch. Listeners and frozen-ness are not carried over.
        """
        g = Graph(name=name or self.name, dictionary=self._dict)
        g._spo = {
            s: {p: set(objs) for p, objs in by_p.items()}
            for s, by_p in self._spo.items()
        }
        g._pos = {
            p: {o: set(subs) for o, subs in by_o.items()}
            for p, by_o in self._pos.items()
        }
        g._osp = {
            o: {s: set(preds) for s, preds in by_s.items()}
            for o, by_s in self._osp.items()
        }
        g._size = self._size
        return g

    def cow_copy(self, name: str = "") -> "Graph":
        """A copy-on-write copy: O(distinct subjects/predicates/objects)
        instead of O(triples).

        Only the three *outer* index dicts are copied; the inner dicts
        and sets stay shared until one side mutates the corresponding
        subtree (see :meth:`_privatize`). Both graphs enter CoW mode —
        the source's previous ownership knowledge is reset because every
        inner structure is now shared again. Snapshot publication
        freezes the copy, so in practice only the live side ever pays
        privatization cost, and only for subtrees the next delta
        touches. Listeners and frozen-ness are not carried over.
        """
        g = Graph(name=name or self.name, dictionary=self._dict)
        g._spo = dict(self._spo)
        g._pos = dict(self._pos)
        g._osp = dict(self._osp)
        g._size = self._size
        g._cow = True
        self._cow = True
        self._owned_s.clear()
        self._owned_p.clear()
        self._owned_o.clear()
        return g

    def union(self, other: Iterable[Triple], name: str = "") -> "Graph":
        g = self.copy(name)
        g.add_all(other)
        return g

    def intersection(self, other: "Graph", name: str = "") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph((t for t in small if t in large), name=name, dictionary=self._dict)

    def difference(self, other: "Graph", name: str = "") -> "Graph":
        return Graph((t for t in self if t not in other), name=name, dictionary=self._dict)

    def __or__(self, other) -> "Graph":
        return self.union(other)

    def __and__(self, other) -> "Graph":
        return self.intersection(other)

    def __sub__(self, other) -> "Graph":
        return self.difference(other)


def _prune(index: _Index, k1: int, k2: int) -> None:
    inner = index[k1]
    if not inner[k2]:
        del inner[k2]
        if not inner:
            del index[k1]


class GraphView:
    """A read-only union of several graphs.

    Duplicate triples across layers are reported once. The store hands a
    view of [model graphs..., entailment index] to the query engine, so
    derived triples exist "only through the indexes" exactly as the paper
    describes.

    ``disjoint_hint=True`` asserts the layers are pairwise disjoint;
    iteration then skips the dedup set and ``count``/``__len__`` sum the
    layer counts directly. The caller owns the proof — the store sets it
    only for a base model stacked with a freshly built entailment index
    (the reasoner never emits triples already asserted in the base).
    """

    __slots__ = ("_layers", "_disjoint")

    def __init__(self, layers: Iterable[Graph], disjoint_hint: bool = False):
        self._layers: Tuple[Graph, ...] = tuple(layers)
        if not self._layers:
            raise ValueError("GraphView requires at least one layer")
        self._disjoint = disjoint_hint or len(self._layers) == 1

    @property
    def layers(self) -> Tuple[Graph, ...]:
        return self._layers

    @property
    def disjoint_hint(self) -> bool:
        return self._disjoint

    @property
    def dictionary(self) -> Optional[TermDictionary]:
        """The shared term dictionary, or None when the layers disagree
        (id-space iteration is then unavailable)."""
        first = self._layers[0].dictionary
        for layer in self._layers[1:]:
            if layer.dictionary is not first:
                return None
        return first

    @property
    def generation(self) -> Tuple[Tuple[int, int], ...]:
        """A composite change stamp over the layers.

        Two equal stamps mean every layer object is the same and none
        has mutated — the invariant plan and selectivity caches key on.
        """
        return tuple((id(layer), layer.generation) for layer in self._layers)

    def triples(self, s=None, p=None, o=None) -> Iterator[Triple]:
        if len(self._layers) == 1:
            yield from self._layers[0].triples(s, p, o)
            return
        if self._disjoint:
            for layer in self._layers:
                yield from layer.triples(s, p, o)
            return
        seen: Set[Triple] = set()
        for layer in self._layers:
            for t in layer.triples(s, p, o):
                if t not in seen:
                    seen.add(t)
                    yield t

    def triples_ids(self, s=None, p=None, o=None) -> Iterator[IdTriple]:
        """Merged id-space iteration (see :meth:`Graph.triples_ids`).

        Requires a shared dictionary; dedup across layers happens on
        int tuples (or not at all under ``disjoint_hint``).
        """
        if len(self._layers) == 1:
            yield from self._layers[0].triples_ids(s, p, o)
            return
        if self._disjoint:
            for layer in self._layers:
                yield from layer.triples_ids(s, p, o)
            return
        seen: Set[IdTriple] = set()
        for layer in self._layers:
            for t in layer.triples_ids(s, p, o):
                if t not in seen:
                    seen.add(t)
                    yield t

    def count_ids(self, s=None, p=None, o=None) -> int:
        if self._disjoint:
            return sum(layer.count_ids(s, p, o) for layer in self._layers)
        return sum(1 for _ in self.triples_ids(s, p, o))

    def count(self, s=None, p=None, o=None) -> int:
        if self._disjoint:
            return sum(layer.count(s, p, o) for layer in self._layers)
        return sum(1 for _ in self.triples(s, p, o))

    def cached_count(self, s=None, p=None, o=None) -> int:
        """Layer-cached cardinality; exact when disjoint, an upper bound
        otherwise (good enough for join ordering)."""
        return sum(layer.cached_count(s, p, o) for layer in self._layers)

    def stats(self):
        """Combined per-predicate statistics over the layers (see
        :class:`~repro.rdf.stats.CombinedStats`)."""
        from repro.rdf.stats import CombinedStats

        if len(self._layers) == 1:
            return self._layers[0].stats()
        return CombinedStats(layer.stats() for layer in self._layers)

    def distinct_subject_count(self) -> int:
        return sum(layer.distinct_subject_count() for layer in self._layers)

    def distinct_predicate_count(self) -> int:
        return sum(layer.distinct_predicate_count() for layer in self._layers)

    def distinct_object_count(self) -> int:
        return sum(layer.distinct_object_count() for layer in self._layers)

    def subjects(self, p=None, o=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(None, p, o):
            if t.subject not in seen:
                seen.add(t.subject)
                yield t.subject

    def objects(self, s=None, p=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(s, p, None):
            if t.object not in seen:
                seen.add(t.object)
                yield t.object

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(s, None, o):
            if t.predicate not in seen:
                seen.add(t.predicate)
                yield t.predicate

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        unbound = [name for name, t in zip("spo", (s, p, o)) if t is None]
        if len(unbound) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for t in self.triples(s, p, o):
            return {"s": t.subject, "p": t.predicate, "o": t.object}[unbound[0]]
        return None

    def __contains__(self, triple) -> bool:
        return any(triple in layer for layer in self._layers)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        if len(self._layers) == 1:
            return len(self._layers[0])
        if self._disjoint:
            return sum(len(layer) for layer in self._layers)
        return sum(1 for _ in self.triples())

    def __bool__(self) -> bool:
        return any(self._layers)

    def __repr__(self) -> str:
        names = ", ".join(repr(layer.name or "?") for layer in self._layers)
        hint = " disjoint" if self._disjoint and len(self._layers) > 1 else ""
        return f"<GraphView layers=[{names}]{hint}>"

    def add(self, triple) -> None:
        raise ReadOnlyGraphError("GraphView is read-only")

    def discard(self, triple) -> None:
        raise ReadOnlyGraphError("GraphView is read-only")

    remove = discard
