"""Indexed in-memory RDF graph.

The Oracle RDF model tables of the paper are replicated as a triple-indexed
in-memory graph: three nested dictionaries (SPO, POS, OSP) so any triple
pattern with one or two bound positions is answered without a full scan.
:class:`GraphView` overlays several graphs read-only — this is how a query
that names ``SEM_RULEBASES('OWLPRIME')`` sees the base model *plus* the
entailment index without the derived triples ever being merged into the
base facts (Section III.B of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.terms import IRI, Literal, Term, Triple

_Index = Dict[Term, Dict[Term, Set[Term]]]


class ReadOnlyGraphError(Exception):
    """Raised when mutating a read-only graph or view."""


class Graph:
    """A mutable set of triples with SPO / POS / OSP indexes.

    >>> g = Graph()
    >>> g.add(Triple(IRI("ex:s"), IRI("ex:p"), Literal("o")))
    >>> len(g)
    1
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "_frozen", "_listeners", "name")

    def __init__(self, triples: Optional[Iterable[Triple]] = None, name: str = ""):
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._frozen = False
        self._listeners = ()
        self.name = name
        if triples is not None:
            for t in triples:
                self.add(t)

    # -- change notification ------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register ``listener(action, triple)`` for change events.

        ``action`` is ``"add"`` or ``"remove"``; only effective changes
        notify (duplicate adds and missed removes are silent). The audit
        journal and index-staleness tracking build on this.
        """
        self._listeners = (*self._listeners, listener)

    def unsubscribe(self, listener) -> None:
        # equality, not identity: bound methods are recreated per access
        self._listeners = tuple(l for l in self._listeners if l != listener)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a ground triple. Returns True when it was not present."""
        self._check_writable()
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if not triple.is_ground():
            raise ValueError(f"cannot store non-ground triple: {triple.n3()}")
        s, p, o = triple
        objs = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objs:
            return False
        objs.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        for listener in self._listeners:
            listener("add", triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> None:
        """Remove a triple; raises KeyError when absent."""
        if not self.discard(triple):
            raise KeyError(triple)

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present. Returns True when it was removed."""
        self._check_writable()
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        s, p, o = triple
        try:
            self._spo[s][p].remove(o)
        except KeyError:
            return False
        _prune(self._spo, s, p)
        self._pos[p][o].remove(s)
        _prune(self._pos, p, o)
        self._osp[o][s].remove(p)
        _prune(self._osp, o, s)
        self._size -= 1
        for listener in self._listeners:
            listener("remove", triple)
        return True

    def remove_pattern(self, s=None, p=None, o=None) -> int:
        """Remove every triple matching the pattern; returns the count."""
        doomed = list(self.triples(s, p, o))
        for t in doomed:
            self.discard(t)
        return len(doomed)

    def clear(self) -> None:
        self._check_writable()
        if self._listeners:
            for t in list(self.triples()):
                self.discard(t)
            return
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    def freeze(self) -> "Graph":
        """Make the graph immutable (used by historized snapshots)."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _check_writable(self) -> None:
        if self._frozen:
            raise ReadOnlyGraphError(f"graph {self.name!r} is frozen")

    # -- matching ----------------------------------------------------------

    def triples(self, s=None, p=None, o=None) -> Iterator[Triple]:
        """Yield every triple matching the pattern (None = wildcard).

        Dispatches to the most selective index for the bound positions.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objs = by_p.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                else:
                    for obj in objs:
                        yield Triple(s, p, obj)
            else:
                for pred, objs in by_p.items():
                    if o is not None:
                        if o in objs:
                            yield Triple(s, pred, o)
                    else:
                        for obj in objs:
                            yield Triple(s, pred, obj)
        elif p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield Triple(subj, p, o)
            else:
                for obj, subjs in by_o.items():
                    for subj in subjs:
                        yield Triple(subj, p, obj)
        elif o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            for subj, by_p in self._spo.items():
                for pred, objs in by_p.items():
                    for obj in objs:
                        yield Triple(subj, pred, obj)

    def count(self, s=None, p=None, o=None) -> int:
        """Number of triples matching the pattern, without materializing."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for _ in self.triples(s, p, o))

    def __contains__(self, triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, set())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, (Graph, GraphView)):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __hash__(self):
        raise TypeError("Graph is unhashable (mutable)")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} size={self._size}>"

    # -- convenience accessors ----------------------------------------------

    def subjects(self, p=None, o=None) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, p, o)``."""
        if p is not None and o is not None:
            yield from self._pos.get(p, {}).get(o, ())
        else:
            seen = set()
            for t in self.triples(None, p, o):
                if t.subject not in seen:
                    seen.add(t.subject)
                    yield t.subject

    def objects(self, s=None, p=None) -> Iterator[Term]:
        """Distinct objects of triples matching ``(s, p, ?)``."""
        if s is not None and p is not None:
            yield from self._spo.get(s, {}).get(p, ())
        else:
            seen = set()
            for t in self.triples(s, p, None):
                if t.object not in seen:
                    seen.add(t.object)
                    yield t.object

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(s, ?, o)``."""
        if s is not None and o is not None:
            yield from self._osp.get(o, {}).get(s, ())
        else:
            seen = set()
            for t in self.triples(s, None, o):
                if t.predicate not in seen:
                    seen.add(t.predicate)
                    yield t.predicate

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        """The unique term filling the single unbound position, or None.

        Exactly one of s/p/o must be None. Returns None when no triple
        matches; when several match, an arbitrary one is returned.
        """
        unbound = [name for name, t in zip("spo", (s, p, o)) if t is None]
        if len(unbound) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for t in self.triples(s, p, o):
            return {"s": t.subject, "p": t.predicate, "o": t.object}[unbound[0]]
        return None

    def nodes(self) -> Iterator[Term]:
        """Distinct terms appearing in subject or object position."""
        seen: Set[Term] = set()
        for s in self._spo:
            if s not in seen:
                seen.add(s)
                yield s
        for o in self._osp:
            if o not in seen:
                seen.add(o)
                yield o

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    # -- set operations ------------------------------------------------------

    def copy(self, name: str = "") -> "Graph":
        return Graph(self.triples(), name=name or self.name)

    def union(self, other: Iterable[Triple], name: str = "") -> "Graph":
        g = self.copy(name)
        g.add_all(other)
        return g

    def intersection(self, other: "Graph", name: str = "") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph((t for t in small if t in large), name=name)

    def difference(self, other: "Graph", name: str = "") -> "Graph":
        return Graph((t for t in self if t not in other), name=name)

    def __or__(self, other) -> "Graph":
        return self.union(other)

    def __and__(self, other) -> "Graph":
        return self.intersection(other)

    def __sub__(self, other) -> "Graph":
        return self.difference(other)


def _prune(index: _Index, k1: Term, k2: Term) -> None:
    inner = index[k1]
    if not inner[k2]:
        del inner[k2]
        if not inner:
            del index[k1]


class GraphView:
    """A read-only union of several graphs.

    Duplicate triples across layers are reported once. The store hands a
    view of [model graphs..., entailment index] to the query engine, so
    derived triples exist "only through the indexes" exactly as the paper
    describes.
    """

    __slots__ = ("_layers",)

    def __init__(self, layers: Iterable[Graph]):
        self._layers: Tuple[Graph, ...] = tuple(layers)
        if not self._layers:
            raise ValueError("GraphView requires at least one layer")

    @property
    def layers(self) -> Tuple[Graph, ...]:
        return self._layers

    def triples(self, s=None, p=None, o=None) -> Iterator[Triple]:
        if len(self._layers) == 1:
            yield from self._layers[0].triples(s, p, o)
            return
        seen: Set[Triple] = set()
        for layer in self._layers:
            for t in layer.triples(s, p, o):
                if t not in seen:
                    seen.add(t)
                    yield t

    def count(self, s=None, p=None, o=None) -> int:
        if len(self._layers) == 1:
            return self._layers[0].count(s, p, o)
        return sum(1 for _ in self.triples(s, p, o))

    def subjects(self, p=None, o=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(None, p, o):
            if t.subject not in seen:
                seen.add(t.subject)
                yield t.subject

    def objects(self, s=None, p=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(s, p, None):
            if t.object not in seen:
                seen.add(t.object)
                yield t.object

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        seen = set()
        for t in self.triples(s, None, o):
            if t.predicate not in seen:
                seen.add(t.predicate)
                yield t.predicate

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        unbound = [name for name, t in zip("spo", (s, p, o)) if t is None]
        if len(unbound) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for t in self.triples(s, p, o):
            return {"s": t.subject, "p": t.predicate, "o": t.object}[unbound[0]]
        return None

    def __contains__(self, triple) -> bool:
        return any(triple in layer for layer in self._layers)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        if len(self._layers) == 1:
            return len(self._layers[0])
        return sum(1 for _ in self.triples())

    def __bool__(self) -> bool:
        return any(self._layers)

    def __repr__(self) -> str:
        names = ", ".join(repr(layer.name or "?") for layer in self._layers)
        return f"<GraphView layers=[{names}]>"

    def add(self, triple) -> None:
        raise ReadOnlyGraphError("GraphView is read-only")

    def discard(self, triple) -> None:
        raise ReadOnlyGraphError("GraphView is read-only")

    remove = discard
