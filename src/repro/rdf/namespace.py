"""Namespaces and the well-known RDF / RDFS / OWL / XSD vocabularies.

The paper aliases two Credit Suisse namespaces in its SPARQL listings::

    dm: http://www.credit-suisse.com/dwh/mdm/data_modeling#
    dt: http://www.credit-suisse.com/dwh/mdm/data_transfer#

Both are provided here (as ``DM`` and ``DT``) so the listings run verbatim
through :mod:`repro.oracle`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.rdf.terms import IRI


class Namespace:
    """A namespace prefix factory.

    Attribute and item access both mint IRIs inside the namespace::

        DM = Namespace("http://www.credit-suisse.com/dwh/mdm/data_modeling#")
        DM.hasName          # IRI(".../data_modeling#hasName")
        DM["Source Column"] # spaces are percent-free but allowed via [] form
    """

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash((Namespace, self._base))

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

# The Credit Suisse namespaces used throughout the paper's listings.
DM = Namespace("http://www.credit-suisse.com/dwh/mdm/data_modeling#")
DT = Namespace("http://www.credit-suisse.com/dwh/mdm/data_transfer#")

#: Prefixes bound by default in every :class:`NamespaceManager`.
DEFAULT_PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
}


class NamespaceManager:
    """Bi-directional prefix <-> namespace registry.

    Used by the Turtle serializer to compact IRIs into qnames and by the
    SPARQL parser to expand prefixed names. Rebinding a prefix to a new
    namespace is allowed (the paper's meta-data schema evolves); binding
    two prefixes to the same namespace keeps the most recent for
    compaction.
    """

    def __init__(self, bind_defaults: bool = True):
        self._by_prefix: Dict[str, Namespace] = {}
        self._by_base: Dict[str, str] = {}
        if bind_defaults:
            for prefix, ns in DEFAULT_PREFIXES.items():
                self.bind(prefix, ns)

    def bind(self, prefix: str, namespace) -> None:
        """Bind ``prefix`` to ``namespace`` (a Namespace or base string)."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        if not isinstance(namespace, Namespace):
            raise TypeError("namespace must be a Namespace or base IRI string")
        if prefix is None or any(ch in prefix for ch in " :<>"):
            raise ValueError(f"invalid prefix: {prefix!r}")
        old = self._by_prefix.get(prefix)
        if old is not None and self._by_base.get(old.base) == prefix:
            del self._by_base[old.base]
        self._by_prefix[prefix] = namespace
        self._by_base[namespace.base] = prefix

    def namespace(self, prefix: str) -> Optional[Namespace]:
        """The namespace bound to ``prefix``, or None."""
        return self._by_prefix.get(prefix)

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name like ``dm:hasName`` into an IRI."""
        if ":" not in qname:
            raise ValueError(f"not a prefixed name: {qname!r}")
        prefix, local = qname.split(":", 1)
        ns = self._by_prefix.get(prefix)
        if ns is None:
            raise KeyError(f"unbound prefix: {prefix!r}")
        return ns.term(local)

    def compact(self, iri: IRI) -> Optional[str]:
        """Compact an IRI into ``prefix:local`` if a binding covers it.

        Returns None when no bound namespace is a prefix of the IRI or the
        local part would not be a valid qname local name.
        """
        best: Optional[Tuple[str, str]] = None
        for base, prefix in self._by_base.items():
            if iri.value.startswith(base):
                local = iri.value[len(base) :]
                if _valid_local(local) and (best is None or len(base) > len(best[1])):
                    best = (prefix, base)
        if best is None:
            return None
        prefix, base = best
        return f"{prefix}:{iri.value[len(base):]}"

    def bindings(self) -> Iterator[Tuple[str, Namespace]]:
        """Iterate over (prefix, namespace) pairs, sorted by prefix."""
        return iter(sorted(self._by_prefix.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __len__(self) -> int:
        return len(self._by_prefix)


def _valid_local(local: str) -> bool:
    if not local:
        return False
    if local[0].isdigit() or local[0] in ".-":
        return False
    return all(ch.isalnum() or ch in "_-." for ch in local) and not local.endswith(".")
