"""Triple store with named models — the analog of Oracle's ``SEM_MODELS``.

The paper stores the meta-data warehouse in RDF model tables inside an
Oracle database and addresses them by model name (``SEM_MODELS('DWH_CURR')``
in Listings 1 and 2). :class:`TripleStore` keeps one :class:`Graph` per
model name and can produce a read-only :class:`GraphView` over any
combination of models, optionally stacked with entailment indexes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.rdf.graph import Graph, GraphView


class ModelNotFoundError(KeyError):
    """Raised when a query names a model the store does not contain."""

    def __init__(self, name: str, known: Iterable[str]):
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self) -> str:
        return f"unknown model {self.name!r}; known models: {self.known}"


class TripleStore:
    """A collection of named RDF models plus attached entailment indexes.

    Entailment indexes are registered by rulebase name (e.g. ``OWLPRIME``)
    per model and are *not* part of the model's triples: they only become
    visible through :meth:`view` when the caller names the rulebase —
    mirroring how Oracle's derived triples "only exist through the
    indexes" (Section III.B).
    """

    def __init__(self):
        self._models: Dict[str, Graph] = {}
        # (model name, rulebase name) -> derived-triples graph
        self._indexes: Dict[tuple, Graph] = {}
        # (model name, rulebase name) -> model generation at attach time;
        # while the model is unchanged since, model and index are known
        # disjoint (the reasoner only emits triples absent from the base)
        self._index_base_generation: Dict[tuple, int] = {}

    # -- model management ----------------------------------------------------

    def create_model(self, name: str) -> Graph:
        """Create an empty model; error if the name is taken."""
        if not name:
            raise ValueError("model name must be non-empty")
        if name in self._models:
            raise ValueError(f"model {name!r} already exists")
        graph = Graph(name=name)
        self._models[name] = graph
        return graph

    def get_or_create_model(self, name: str) -> Graph:
        if name in self._models:
            return self._models[name]
        return self.create_model(name)

    def adopt_model(self, name: str, graph: Graph) -> Graph:
        """Register an existing graph as the model ``name``.

        Used by snapshot publication: the query service copies the live
        model, freezes the copy, and adopts it into a private store so a
        read-only warehouse facade can be built over it. The graph's
        ``name`` is updated to match.
        """
        if not name:
            raise ValueError("model name must be non-empty")
        if name in self._models:
            raise ValueError(f"model {name!r} already exists")
        graph.name = name
        self._models[name] = graph
        return graph

    def replace_model(self, name: str, graph: Graph) -> Graph:
        """Swap the graph registered under ``name`` for another one.

        Attached entailment indexes are kept as-is — the storage tier
        uses this to materialize a mapped model for delta-segment
        replay, where the indexes are replayed separately.
        """
        if name not in self._models:
            raise ModelNotFoundError(name, self._models)
        graph.name = name
        self._models[name] = graph
        return graph

    def model(self, name: str) -> Graph:
        """The graph for ``name``; raises :class:`ModelNotFoundError`."""
        try:
            return self._models[name]
        except KeyError:
            raise ModelNotFoundError(name, self._models) from None

    def drop_model(self, name: str) -> None:
        """Drop a model and every entailment index built over it."""
        if name not in self._models:
            raise ModelNotFoundError(name, self._models)
        del self._models[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
            self._index_base_generation.pop(key, None)

    def rename_model(self, old: str, new: str) -> None:
        """Rename a model, carrying its entailment indexes along."""
        if old not in self._models:
            raise ModelNotFoundError(old, self._models)
        if new in self._models:
            raise ValueError(f"model {new!r} already exists")
        graph = self._models.pop(old)
        graph.name = new
        self._models[new] = graph
        for key in [k for k in self._indexes if k[0] == old]:
            self._indexes[(new, key[1])] = self._indexes.pop(key)
            if key in self._index_base_generation:
                self._index_base_generation[(new, key[1])] = (
                    self._index_base_generation.pop(key)
                )

    def has_model(self, name: str) -> bool:
        return name in self._models

    def model_names(self) -> List[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._models))

    def __repr__(self) -> str:
        sizes = {n: len(g) for n, g in sorted(self._models.items())}
        return f"<TripleStore models={sizes} indexes={len(self._indexes)}>"

    # -- entailment indexes ----------------------------------------------------

    def attach_index(self, model: str, rulebase: str, derived: Graph) -> None:
        """Attach the derived triples of ``rulebase`` over ``model``.

        ``derived`` should contain only triples *not* already in the model;
        the reasoner guarantees this. Re-attaching replaces the old index
        (re-derivation after a model change).
        """
        if model not in self._models:
            raise ModelNotFoundError(model, self._models)
        derived.name = f"{model}[{rulebase}]"
        self._indexes[(model, rulebase)] = derived
        self._index_base_generation[(model, rulebase)] = self._models[model].generation
        # derived triples just changed wholesale relative to whatever a
        # planner saw before; fold the churn into the stats catalog now
        # (no-op unless the catalog was already built and drifted)
        derived.stats().ensure_fresh(trigger="index-attach")

    def detach_index(self, model: str, rulebase: str) -> None:
        self._indexes.pop((model, rulebase), None)
        self._index_base_generation.pop((model, rulebase), None)

    def index(self, model: str, rulebase: str) -> Optional[Graph]:
        """The derived-triples graph for (model, rulebase), or None."""
        return self._indexes.get((model, rulebase))

    def index_names(self, model: Optional[str] = None) -> List[tuple]:
        """(model, rulebase) pairs of all attached indexes."""
        keys = self._indexes.keys()
        if model is not None:
            keys = [k for k in keys if k[0] == model]
        return sorted(keys)

    # -- query-time views --------------------------------------------------------

    def view(
        self,
        models: Sequence[str],
        rulebases: Sequence[str] = (),
    ) -> GraphView:
        """A read-only view over ``models``, plus the entailment indexes of
        the named ``rulebases`` where they exist.

        Naming a rulebase for which no index was built is *not* an error —
        it simply contributes nothing, matching the behaviour of querying
        before the index build has run.
        """
        if not models:
            raise ValueError("view requires at least one model name")
        layers: List[Graph] = [self.model(name) for name in models]
        index_keys: List[tuple] = []
        for model_name in models:
            for rb in rulebases:
                derived = self._indexes.get((model_name, rb))
                if derived is not None:
                    layers.append(derived)
                    index_keys.append((model_name, rb))
        # One model plus one index whose base is unchanged since the
        # build: provably disjoint, so the view can skip per-triple
        # dedup. Several models (or several indexes) may overlap.
        disjoint = (
            len(models) == 1
            and len(index_keys) == 1
            and self._index_base_generation.get(index_keys[0])
            == layers[0].generation
        )
        return GraphView(layers, disjoint_hint=disjoint)

    # -- aggregate statistics ------------------------------------------------------

    def stats_catalog(self, model: str):
        """The planner statistics catalog of a model's graph (see
        :mod:`repro.rdf.stats`)."""
        return self.model(model).stats()

    def total_triples(self, include_indexes: bool = False) -> int:
        total = sum(len(g) for g in self._models.values())
        if include_indexes:
            total += sum(len(g) for g in self._indexes.values())
        return total
