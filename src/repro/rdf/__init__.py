"""RDF substrate for the meta-data warehouse.

This package provides the storage layer the paper implements on top of the
Oracle Spatial (Semantic Web) option: RDF terms and triples, an indexed
in-memory graph, a store of named models (the analog of ``SEM_MODELS``),
staging tables with a bulk loader (Figure 4 of the paper), and parsers /
serializers for N-Triples, a Turtle subset, and RDF/XML output.

The public surface is re-exported here so application code can write::

    from repro.rdf import IRI, Literal, Triple, Graph, TripleStore
"""

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    Triple,
    Variable,
)
from repro.rdf.namespace import (
    DM,
    DT,
    Namespace,
    NamespaceManager,
    OWL,
    RDF,
    RDFS,
    XSD,
)
from repro.rdf.dictionary import DEFAULT_DICTIONARY, TermDictionary
from repro.rdf.graph import Graph, GraphView, ReadOnlyGraphError
from repro.rdf.stats import CombinedStats, PredicateStats, StatsCatalog, stats_of
from repro.rdf.store import ModelNotFoundError, TripleStore
from repro.rdf.staging import StagingRow, StagingTable
from repro.rdf.bulkload import BulkLoader, BulkLoadError, BulkLoadReport
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.turtle import TurtleParseError, parse_turtle, serialize_turtle
from repro.rdf.rdfxml import serialize_rdfxml
from repro.rdf.persist import PersistenceError, load_store, save_store

__all__ = [
    "BNode",
    "BulkLoader",
    "BulkLoadError",
    "BulkLoadReport",
    "DEFAULT_DICTIONARY",
    "DM",
    "DT",
    "Graph",
    "GraphView",
    "IRI",
    "Literal",
    "ModelNotFoundError",
    "Namespace",
    "NamespaceManager",
    "NTriplesParseError",
    "OWL",
    "CombinedStats",
    "PredicateStats",
    "PersistenceError",
    "RDF",
    "RDFS",
    "ReadOnlyGraphError",
    "StagingRow",
    "StagingTable",
    "StatsCatalog",
    "Term",
    "TermDictionary",
    "Triple",
    "TripleStore",
    "TurtleParseError",
    "Variable",
    "XSD",
    "load_store",
    "parse_ntriples",
    "parse_turtle",
    "save_store",
    "serialize_ntriples",
    "serialize_rdfxml",
    "serialize_turtle",
    "stats_of",
]
