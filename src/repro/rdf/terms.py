"""RDF terms: IRIs, blank nodes, literals, variables, and triples.

Terms are immutable and hashable so they can live in the nested dictionary
indexes of :class:`repro.rdf.graph.Graph`. A total order is defined across
term kinds (IRI < BNode < Literal) so query results and serializations are
deterministic, which the test-suite and the benchmark harness rely on.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"

# Sort keys per term kind; used by Term.sort_key for the cross-kind order.
_KIND_ORDER = {"IRI": 0, "BNode": 1, "Literal": 2, "Variable": 3}


class Term:
    """Abstract base class of every RDF term.

    Subclasses must define ``__slots__``, equality, hashing, and
    :meth:`n3` (the N-Triples surface form).
    """

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples/Turtle surface syntax of the term."""
        raise NotImplementedError

    def sort_key(self) -> Tuple:
        """Key defining the deterministic total order across all terms."""
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An IRI reference, e.g. ``IRI("http://example.org/Customer")``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be non-empty")
        if any(ch in value for ch in "<>\" {}|\\^`\n\r\t"):
            raise ValueError(f"IRI contains characters forbidden in IRIs: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("IRI is immutable")

    def __reduce__(self):
        # immutable __slots__ classes need explicit pickle support (the
        # default slot-state path calls the blocked __setattr__); query
        # results cross process boundaries in the query service's
        # fork-mode worker pool
        return (IRI, (self.value,))

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return hash((IRI, self.value))

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> Tuple:
        return (_KIND_ORDER["IRI"], self.value)

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` separator."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    @property
    def namespace(self) -> str:
        """The IRI up to and including the last ``#`` or ``/`` separator."""
        return self.value[: len(self.value) - len(self.local_name)]


_bnode_counter = itertools.count()


class BNode(Term):
    """A blank node. Fresh labels are generated when none is supplied."""

    __slots__ = ("label",)

    def __init__(self, label: Optional[str] = None):
        if label is None:
            label = f"b{next(_bnode_counter)}"
        if not isinstance(label, str) or not label:
            raise ValueError("BNode label must be a non-empty string")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("BNode is immutable")

    def __reduce__(self):
        return (BNode, (self.label,))

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self) -> int:
        return hash((BNode, self.label))

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> Tuple:
        return (_KIND_ORDER["BNode"], self.label)


class Literal(Term):
    """An RDF literal with optional datatype IRI or language tag.

    The lexical form is always stored as a string; :meth:`to_python`
    converts the common XSD datatypes back to native values. Python
    ``int``/``float``/``bool`` values passed as the lexical form are
    converted and given the corresponding XSD datatype automatically::

        Literal(42)       # datatype xsd:integer
        Literal("Zurich") # plain string literal
    """

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        lexical: Union[str, int, float, bool],
        datatype: Optional[IRI] = None,
        language: Optional[str] = None,
    ):
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both a datatype and a language")
        if isinstance(lexical, bool):
            lexical = "true" if lexical else "false"
            datatype = datatype or IRI(XSD_BOOLEAN)
        elif isinstance(lexical, int):
            lexical = str(lexical)
            datatype = datatype or IRI(XSD_INTEGER)
        elif isinstance(lexical, float):
            lexical = repr(lexical)
            datatype = datatype or IRI(XSD_DOUBLE)
        elif not isinstance(lexical, str):
            raise TypeError(
                f"Literal lexical form must be str/int/float/bool, got {type(lexical).__name__}"
            )
        if language is not None:
            language = language.lower()
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        return (Literal, (self.lexical, self.datatype, self.language))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return hash((Literal, self.lexical, self.datatype, self.language))

    def __repr__(self) -> str:
        parts = [repr(self.lexical)]
        if self.datatype is not None:
            parts.append(f"datatype={self.datatype!r}")
        if self.language is not None:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def n3(self) -> str:
        escaped = escape_literal(self.lexical)
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def sort_key(self) -> Tuple:
        return (
            _KIND_ORDER["Literal"],
            self.lexical,
            self.datatype.value if self.datatype else "",
            self.language or "",
        )

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to the native Python value of the XSD datatype."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        if dt == XSD_INTEGER:
            return int(self.lexical)
        if dt in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if dt == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    def is_numeric(self) -> bool:
        """True when the datatype is one of the numeric XSD types."""
        return self.datatype is not None and self.datatype.value in (
            XSD_INTEGER,
            XSD_DECIMAL,
            XSD_DOUBLE,
        )


class Variable(Term):
    """A query variable (``?name``). Only valid inside query patterns."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("Variable name must be a non-empty string")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def __reduce__(self):
        return (Variable, (self.name,))

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Variable, self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def n3(self) -> str:
        return f"?{self.name}"

    def sort_key(self) -> Tuple:
        return (_KIND_ORDER["Variable"], self.name)


class Triple(tuple):
    """An RDF triple ``(subject, predicate, object)``.

    Implemented as a tuple subclass so triples unpack naturally::

        s, p, o = triple

    Ground triples (those stored in a graph) must have an IRI or BNode
    subject, an IRI predicate, and any term as object; query patterns may
    additionally contain :class:`Variable` or ``None`` wildcards, so the
    constructor only enforces the type envelope, and
    :meth:`is_ground` distinguishes storable triples.
    """

    __slots__ = ()

    def __new__(cls, subject, predicate, obj):
        _check_position("subject", subject, (IRI, BNode, Variable))
        _check_position("predicate", predicate, (IRI, Variable))
        _check_position("object", obj, (IRI, BNode, Literal, Variable))
        return tuple.__new__(cls, (subject, predicate, obj))

    @property
    def subject(self):
        return self[0]

    @property
    def predicate(self):
        return self[1]

    @property
    def object(self):
        return self[2]

    def __reduce__(self):
        # tuple subclasses with a required-argument __new__ need this
        return (Triple, tuple(self))

    def is_ground(self) -> bool:
        """True when the triple contains no variables or wildcards."""
        return all(t is not None and not isinstance(t, Variable) for t in self)

    def n3(self) -> str:
        return " ".join("?" if t is None else t.n3() for t in self) + " ."

    def __repr__(self) -> str:
        return f"Triple({self[0]!r}, {self[1]!r}, {self[2]!r})"


def _check_position(position: str, term, allowed) -> None:
    if term is None:
        return
    if not isinstance(term, allowed):
        names = "/".join(t.__name__ for t in allowed)
        raise TypeError(
            f"triple {position} must be {names} or None, got {type(term).__name__}"
        )


def escape_literal(text: str) -> str:
    """Escape a literal's lexical form for N-Triples/Turtle output."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def unescape_literal(text: str) -> str:
    """Reverse :func:`escape_literal` plus ``\\uXXXX`` escapes."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ValueError("dangling backslash in literal")
        nxt = text[i + 1]
        simple = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}
        if nxt in simple:
            out.append(simple[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape sequence \\{nxt}")
    return "".join(out)
