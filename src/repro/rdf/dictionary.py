"""Term interning: the dictionary-encoding layer of the RDF substrate.

Oracle's RDF model tables never store lexical values inline — every IRI
and literal is mapped to a numeric ``VALUE_ID`` in ``MDSYS.RDF_VALUE$``
and the triple tables hold only ids. :class:`TermDictionary` replicates
that design for the in-memory substrate: terms are interned to dense
integer ids once, the graph indexes (:mod:`repro.rdf.graph`) key on
ints, and the query engine's join operators compare and hash ints
instead of re-hashing frozen term objects on every probe.

All graphs share one process-wide dictionary by default so that ids are
comparable across the layers of a :class:`~repro.rdf.graph.GraphView`
(base model plus entailment indexes) — exactly the property the
hash-join executor relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.rdf.terms import Term


class TermDictionary:
    """A bijective mapping between RDF terms and dense integer ids.

    Ids are allocated on first interning, start at 0, and are never
    reused — a term keeps its id for the lifetime of the dictionary, so
    cached query plans and hash tables stay valid across graph
    mutations (removal only drops index entries, not dictionary rows).
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self):
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []

    def intern(self, term: Term) -> int:
        """The id of ``term``, allocating one when unseen."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def lookup(self, term: Term) -> Optional[int]:
        """The id of ``term`` without allocating; None when unseen.

        A ``None`` here means no stored triple can contain the term —
        the query engine uses this to prove a pattern empty without
        touching an index.
        """
        return self._ids.get(term)

    def term(self, tid: int) -> Term:
        """The term with id ``tid`` (ids come only from this dictionary)."""
        return self._terms[tid]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"<TermDictionary terms={len(self._terms)}>"


#: The process-wide default dictionary every :class:`Graph` interns into
#: unless it is constructed with an explicit one.
DEFAULT_DICTIONARY = TermDictionary()
