"""Bulk loader: staging tables -> RDF model tables (Figure 4).

The loader drains one or more staging tables into a named model of a
:class:`~repro.rdf.store.TripleStore`. Malformed rows are quarantined and
reported, not fatal — a large meta-data feed with a handful of bad rows
still loads (the behaviour operations teams expect of a warehouse bulk
load). A :class:`BulkLoadReport` summarizes inserted / duplicate /
rejected counts per source feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.rdf.staging import StagingRow, StagingTable, row_to_triple
from repro.rdf.store import TripleStore


class BulkLoadError(Exception):
    """Raised in strict mode when any staged row fails to parse.

    ``loaded`` is the number of rows already applied to the model before
    the failure — 0 for a single-table strict load (it parses everything
    up front), but a multi-table :meth:`BulkLoader.load_many` may have
    committed whole earlier tables, and callers resuming or rolling back
    need to know how far it got.
    """

    def __init__(
        self,
        rejected: Sequence[Tuple[StagingRow, str]],
        loaded: int = 0,
    ):
        self.rejected = list(rejected)
        self.loaded = loaded
        preview = "; ".join(reason for _, reason in self.rejected[:3])
        progress = f" after {loaded} row(s) loaded" if loaded else ""
        super().__init__(
            f"bulk load rejected {len(self.rejected)} row(s){progress}: {preview}"
        )


@dataclass
class BulkLoadReport:
    """Outcome of one bulk load.

    ``rejected`` holds rows a lenient in-memory load dropped;
    ``quarantined`` holds rows the resilient (journaled) load path
    diverted to the persistent quarantine — entries are
    :class:`~repro.resilience.quarantine.QuarantinedRow` objects with
    reason codes.
    """

    model: str
    inserted: int = 0
    duplicates: int = 0
    rejected: List[Tuple[StagingRow, str]] = field(default_factory=list)
    quarantined: List[object] = field(default_factory=list)
    per_source: Dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return (
            self.inserted
            + self.duplicates
            + len(self.rejected)
            + len(self.quarantined)
        )

    def summary(self) -> str:
        text = (
            f"bulk load into {self.model!r}: {self.inserted} inserted, "
            f"{self.duplicates} duplicate, {len(self.rejected)} rejected"
        )
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        return text


class BulkLoader:
    """Drains staging tables into models of a :class:`TripleStore`.

    ``strict=True`` aborts (raising :class:`BulkLoadError`) without
    touching the model when any row is malformed; the default lenient
    mode loads good rows and quarantines bad ones in the report.
    """

    def __init__(self, store: TripleStore, strict: bool = False):
        self._store = store
        self._strict = strict

    def load(
        self,
        staging: StagingTable,
        model: str,
        truncate_staging: bool = True,
    ) -> BulkLoadReport:
        """Load every row of ``staging`` into ``model``.

        The model is created when missing (first load of a new release
        version). On success the staging table is truncated unless
        ``truncate_staging=False``.
        """
        parsed = []
        rejected: List[Tuple[StagingRow, str]] = []
        for row in staging.rows():
            try:
                parsed.append((row, row_to_triple(row)))
            except ValueError as exc:
                rejected.append((row, str(exc)))
        if rejected and self._strict:
            raise BulkLoadError(rejected)

        graph = self._store.get_or_create_model(model)
        report = BulkLoadReport(model=model, rejected=rejected)
        for row, triple in parsed:
            if graph.add(triple):
                report.inserted += 1
                key = row.source or "<unknown>"
                report.per_source[key] = report.per_source.get(key, 0) + 1
            else:
                report.duplicates += 1
        if truncate_staging:
            staging.truncate()
        return report

    def load_many(
        self,
        tables: Sequence[StagingTable],
        model: str,
    ) -> BulkLoadReport:
        """Load several staging tables into one model, merging reports.

        In strict mode a failing table aborts the remainder, but earlier
        tables have already been committed — the re-raised
        :class:`BulkLoadError` carries that progress in ``loaded``.
        """
        merged = BulkLoadReport(model=model)
        for table in tables:
            try:
                r = self.load(table, model)
            except BulkLoadError as exc:
                raise BulkLoadError(
                    exc.rejected, loaded=merged.inserted + exc.loaded
                ) from None
            merged.inserted += r.inserted
            merged.duplicates += r.duplicates
            merged.rejected.extend(r.rejected)
            merged.quarantined.extend(r.quarantined)
            for src, n in r.per_source.items():
                merged.per_source[src] = merged.per_source.get(src, 0) + n
        return merged
