"""Turtle (subset) serialization and parsing.

The ontology files exported from the hierarchy-authoring tool (Protégé in
the paper, :mod:`repro.etl.ontology_io` here) use Turtle because it is the
human-readable form practitioners actually review. The supported subset:

* ``@prefix`` directives and prefixed names
* the ``a`` keyword for ``rdf:type``
* predicate lists (``;``) and object lists (``,``)
* plain / language-tagged / datatyped literals, and bare integer,
  decimal, and boolean shorthands
* blank-node labels (``_:x``); anonymous ``[...]`` nodes are rejected
  with a clear error since the warehouse never emits them
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    Triple,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
    escape_literal,
    unescape_literal,
)

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class TurtleParseError(ValueError):
    """A Turtle syntax error with position information."""

    def __init__(self, message: str, position: int = -1):
        suffix = f" (at offset {position})" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_turtle(
    triples: Union[Graph, Iterable[Triple]],
    nsm: Optional[NamespaceManager] = None,
) -> str:
    """Serialize triples as Turtle, grouped by subject with ``;`` lists.

    Output is deterministic: subjects, predicates, and objects appear in
    term sort order, ``rdf:type`` (as ``a``) first among predicates.
    """
    nsm = nsm or NamespaceManager()
    by_subject = {}
    for t in triples:
        by_subject.setdefault(t.subject, []).append((t.predicate, t.object))

    lines: List[str] = []
    for prefix, ns in nsm.bindings():
        lines.append(f"@prefix {prefix}: <{ns.base}> .")
    if lines:
        lines.append("")

    for subject in sorted(by_subject, key=lambda s: s.sort_key()):
        pairs = by_subject[subject]
        by_pred = {}
        for p, o in pairs:
            by_pred.setdefault(p, []).append(o)
        pred_order = sorted(by_pred, key=lambda p: (p != _RDF_TYPE, p.sort_key()))
        chunks = []
        for p in pred_order:
            objs = ", ".join(
                _term_out(o, nsm) for o in sorted(by_pred[p], key=lambda o: o.sort_key())
            )
            pred_text = "a" if p == _RDF_TYPE else _term_out(p, nsm)
            chunks.append(f"{pred_text} {objs}")
        body = " ;\n    ".join(chunks)
        lines.append(f"{_term_out(subject, nsm)} {body} .")
    return "\n".join(lines) + ("\n" if lines else "")


def _term_out(term: Term, nsm: NamespaceManager) -> str:
    if isinstance(term, IRI):
        qname = nsm.compact(term)
        return qname if qname is not None else term.n3()
    if isinstance(term, Literal) and term.datatype is not None:
        dt = term.datatype
        qname = nsm.compact(dt)
        if qname is not None:
            return f'"{escape_literal(term.lexical)}"^^{qname}'
    return term.n3()


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_turtle(text: str, nsm: Optional[NamespaceManager] = None) -> Graph:
    """Parse Turtle text (the subset above) into a new :class:`Graph`.

    When ``nsm`` is given, prefixes declared in the document are bound
    into it, so callers can reuse the bindings for later serialization.
    """
    parser = _TurtleParser(text, nsm or NamespaceManager())
    return parser.parse()


class _TurtleParser:
    def __init__(self, text: str, nsm: NamespaceManager):
        self.text = text
        self.pos = 0
        self.nsm = nsm
        self.graph = Graph()

    # -- low-level ------------------------------------------------------

    def error(self, message: str) -> TurtleParseError:
        return TurtleParseError(message, self.pos)

    def skip_ws(self) -> None:
        n = len(self.text)
        while self.pos < n:
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "#":
                nl = self.text.find("\n", self.pos)
                self.pos = n if nl == -1 else nl + 1
            else:
                return

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, token: str) -> None:
        self.skip_ws()
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Graph:
        while not self.at_end():
            if self.text.startswith("@prefix", self.pos):
                self.parse_prefix()
            else:
                self.parse_statement()
        return self.graph

    def parse_prefix(self) -> None:
        self.expect("@prefix")
        self.skip_ws()
        colon = self.text.find(":", self.pos)
        if colon == -1:
            raise self.error("malformed @prefix")
        prefix = self.text[self.pos : colon].strip()
        self.pos = colon + 1
        self.skip_ws()
        if self.peek() != "<":
            raise self.error("expected <iri> in @prefix")
        iri = self.parse_iri()
        self.nsm.bind(prefix, iri.value)
        self.expect(".")

    def parse_statement(self) -> None:
        subject = self.parse_term(position="subject")
        while True:
            predicate = self.parse_predicate()
            while True:
                obj = self.parse_term(position="object")
                self.graph.add(Triple(subject, predicate, obj))
                self.skip_ws()
                if self.peek() == ",":
                    self.pos += 1
                    continue
                break
            self.skip_ws()
            if self.peek() == ";":
                self.pos += 1
                self.skip_ws()
                # tolerate trailing ';' before '.'
                if self.peek() == ".":
                    break
                continue
            break
        self.expect(".")

    def parse_predicate(self) -> IRI:
        self.skip_ws()
        if self.text.startswith("a", self.pos):
            after = self.pos + 1
            if after >= len(self.text) or self.text[after].isspace():
                self.pos += 1
                return _RDF_TYPE
        term = self.parse_term(position="predicate")
        if not isinstance(term, IRI):
            raise self.error("predicate must be an IRI")
        return term

    def parse_term(self, position: str) -> Term:
        self.skip_ws()
        ch = self.peek()
        if not ch:
            raise self.error(f"unexpected end of input reading {position}")
        if ch == "<":
            return self.parse_iri()
        if ch == '"':
            if position != "object":
                raise self.error(f"literal not allowed as {position}")
            return self.parse_literal()
        if ch == "[":
            raise self.error("anonymous blank nodes [...] are not supported")
        if ch == "(":
            raise self.error("RDF collections (...) are not supported")
        if self.text.startswith("_:", self.pos):
            return self.parse_bnode()
        return self.parse_qname_or_shorthand(position)

    def parse_iri(self) -> IRI:
        end = self.text.find(">", self.pos)
        if end == -1:
            raise self.error("unterminated IRI")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return IRI(value)

    def parse_bnode(self) -> BNode:
        self.pos += 2
        start = self.pos
        n = len(self.text)
        while self.pos < n and (self.text[self.pos].isalnum() or self.text[self.pos] in "_-"):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank-node label")
        return BNode(self.text[start : self.pos])

    def parse_literal(self) -> Literal:
        # opening quote at self.pos
        i = self.pos + 1
        n = len(self.text)
        while i < n:
            if self.text[i] == "\\":
                i += 2
                continue
            if self.text[i] == '"':
                break
            i += 1
        if i >= n:
            raise self.error("unterminated literal")
        body = unescape_literal(self.text[self.pos + 1 : i])
        self.pos = i + 1
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < n and (self.text[self.pos].isalnum() or self.text[self.pos] == "-"):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(body, language=self.text[start : self.pos])
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            self.skip_ws()
            if self.peek() == "<":
                return Literal(body, datatype=self.parse_iri())
            dt = self.parse_qname_or_shorthand("datatype")
            if not isinstance(dt, IRI):
                raise self.error("datatype must be an IRI")
            return Literal(body, datatype=dt)
        return Literal(body)

    def parse_qname_or_shorthand(self, position: str) -> Term:
        start = self.pos
        n = len(self.text)
        while self.pos < n and not self.text[self.pos].isspace() and self.text[self.pos] not in ",;.":
            self.pos += 1
        # A trailing '.' may belong to a decimal number; re-attach digits.
        token = self.text[start : self.pos]
        if (
            self.pos < n
            and self.text[self.pos] == "."
            and token
            and token.lstrip("+-").isdigit()
            and self.pos + 1 < n
            and self.text[self.pos + 1].isdigit()
        ):
            self.pos += 1
            while self.pos < n and self.text[self.pos].isdigit():
                self.pos += 1
            token = self.text[start : self.pos]
        if not token:
            raise self.error(f"empty token reading {position}")
        if position == "object":
            shorthand = _shorthand_literal(token)
            if shorthand is not None:
                return shorthand
        if ":" in token:
            try:
                return self.nsm.expand(token)
            except KeyError as exc:
                raise self.error(str(exc)) from None
        raise self.error(f"cannot interpret token {token!r} as {position}")


def _shorthand_literal(token: str) -> Optional[Literal]:
    if token in ("true", "false"):
        return Literal(token, datatype=IRI(XSD_BOOLEAN))
    stripped = token.lstrip("+-")
    if stripped.isdigit():
        return Literal(token, datatype=IRI(XSD_INTEGER))
    if stripped and stripped.count(".") == 1:
        left, right = stripped.split(".")
        if (left or right) and (left.isdigit() or not left) and (right.isdigit() or not right):
            return Literal(token, datatype=IRI(XSD_DECIMAL))
    return None
