"""Query algebra: the tree the parser produces and the evaluator walks.

A deliberately small algebra in the style of the SPARQL 1.1 spec:

* :class:`BGP` — a basic graph pattern (list of triple patterns)
* :class:`Join` — natural join of two patterns
* :class:`LeftJoin` — OPTIONAL
* :class:`Union` — UNION
* :class:`Filter` — FILTER over a pattern
* solution modifiers: :class:`Distinct`, :class:`OrderBy`, :class:`Slice`
* :class:`Projection` with optional :class:`Aggregate` columns (GROUP BY)

Query roots: :class:`SelectQuery`, :class:`AskQuery`,
:class:`ConstructQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.rdf.terms import Triple, Variable
from repro.sparql.expressions import Expression
from repro.sparql.paths import Path


class Pattern:
    """Base class of algebra pattern nodes."""

    def variables(self) -> set:
        raise NotImplementedError


@dataclass
class PathTriple:
    """A triple pattern whose predicate is a property path."""

    subject: object  # Variable | IRI | BNode
    path: Path
    object: object   # Variable | IRI | BNode | Literal

    def variables(self) -> set:
        out = set()
        for term in (self.subject, self.object):
            if isinstance(term, Variable):
                out.add(term.name)
        return out


@dataclass
class BGP(Pattern):
    """A basic graph pattern: triple patterns plus property-path patterns."""

    patterns: List[Triple] = field(default_factory=list)
    paths: List[PathTriple] = field(default_factory=list)

    def variables(self) -> set:
        out = set()
        for t in self.patterns:
            for term in t:
                if isinstance(term, Variable):
                    out.add(term.name)
        for p in self.paths:
            out |= p.variables()
        return out


@dataclass
class Join(Pattern):
    left: Pattern
    right: Pattern

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass
class LeftJoin(Pattern):
    """OPTIONAL: keep left rows even when the right side has no match."""

    left: Pattern
    right: Pattern
    condition: Optional[Expression] = None

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass
class Union(Pattern):
    left: Pattern
    right: Pattern

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass
class Filter(Pattern):
    condition: Expression
    pattern: Pattern

    def variables(self) -> set:
        return self.pattern.variables()


@dataclass
class Minus(Pattern):
    """MINUS: left solutions with no compatible right solution."""

    left: Pattern
    right: Pattern

    def variables(self) -> set:
        return self.left.variables()


@dataclass
class Extend(Pattern):
    """BIND(expr AS ?var): extend each solution with a computed value."""

    pattern: Pattern
    variable: str
    expression: Expression

    def variables(self) -> set:
        return self.pattern.variables() | {self.variable}


@dataclass
class ValuesPattern(Pattern):
    """Inline data: VALUES (?x ?y) { (a b) (UNDEF c) }.

    Each row maps the variables positionally; None means UNDEF.
    """

    names: List[str] = field(default_factory=list)
    rows: List[Tuple] = field(default_factory=list)

    def variables(self) -> set:
        return set(self.names)


@dataclass
class Aggregate:
    """An aggregate projection column, e.g. ``COUNT(DISTINCT ?x) AS ?n``."""

    function: str           # COUNT | SUM | MIN | MAX | AVG | SAMPLE | GROUP_CONCAT
    expression: Optional[Expression]  # None means COUNT(*)
    alias: str
    distinct: bool = False
    separator: str = " "     # GROUP_CONCAT only


@dataclass
class Projection:
    """SELECT column list: plain variables and/or aggregates."""

    variables: List[str] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    select_all: bool = False

    def output_names(self) -> List[str]:
        return list(self.variables) + [a.alias for a in self.aggregates]


@dataclass
class OrderCondition:
    expression: Expression
    descending: bool = False


class Query:
    """Base class of query roots."""


@dataclass
class SelectQuery(Query):
    projection: Projection
    pattern: Pattern
    distinct: bool = False
    group_by: List[str] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0


@dataclass
class AskQuery(Query):
    pattern: Pattern


@dataclass
class ConstructQuery(Query):
    template: List[Triple]
    pattern: Pattern


@dataclass
class DescribeQuery(Query):
    """DESCRIBE: the concise bounded description of resources.

    ``resources`` are IRIs given directly; ``variables`` are projected
    from the WHERE pattern (which may be None for plain
    ``DESCRIBE <iri>``).
    """

    resources: List[object] = field(default_factory=list)
    variables: List[str] = field(default_factory=list)
    pattern: Optional[Pattern] = None


# Solution-modifier wrappers used internally by the evaluator; exposed for
# completeness and for tests that build algebra by hand.


@dataclass
class Distinct(Pattern):
    pattern: Pattern

    def variables(self) -> set:
        return self.pattern.variables()


@dataclass
class OrderBy(Pattern):
    pattern: Pattern
    conditions: List[OrderCondition] = field(default_factory=list)

    def variables(self) -> set:
        return self.pattern.variables()


@dataclass
class Slice(Pattern):
    pattern: Pattern
    limit: Optional[int] = None
    offset: int = 0

    def variables(self) -> set:
        return self.pattern.variables()
