"""SPARQL (subset) query engine.

The paper queries the meta-data graph through Oracle's ``SEM_MATCH``
SPARQL support (Listings 1 and 2). This package implements the SPARQL
fragment those use cases need — basic graph patterns, FILTER expressions
(including ``REGEX``), OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET,
and GROUP BY with aggregates — over the graphs of :mod:`repro.rdf`.

Typical use::

    from repro.sparql import execute
    rows = execute(graph, '''
        PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
        SELECT ?class ?object WHERE {
            ?object rdf:type ?c .
            ?c rdfs:label ?class .
            ?object dm:hasName ?term .
            FILTER regex(?term, "customer", "i")
        }
    ''')

The Oracle-flavoured entry point (``SEM_MODELS`` / ``SEM_RULEBASES`` /
``SEM_ALIASES``) lives in :mod:`repro.oracle`.
"""

from repro.sparql.errors import SparqlError, SparqlParseError, SparqlEvalError
from repro.sparql.paths import (
    Path,
    PathAlternative,
    PathInverse,
    PathOptional,
    PathPlus,
    PathSequence,
    PathStar,
    PathStep,
    eval_path,
)
from repro.sparql.tokenizer import Token, tokenize
from repro.sparql.algebra import (
    Aggregate,
    AskQuery,
    BGP,
    ConstructQuery,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    Projection,
    Query,
    SelectQuery,
    Slice,
    Union,
)
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    Expression,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
)
from repro.sparql.parser import parse_query
from repro.sparql.evaluator import DEFAULT_STRATEGY, STRATEGIES, evaluate
from repro.sparql.explain import explain
from repro.sparql.plancache import PlanCache, PreparedQuery
from repro.sparql.update import UpdateResult, execute_update, parse_update
from repro.sparql.results import Row, SolutionSequence
from repro.sparql.planner import (
    BGPPlan,
    order_patterns,
    pattern_selectivity,
    plan_bgp,
    planner_mode,
)


def execute(graph, query_text, nsm=None, bindings=None, strategy=None, plan_cache=None):
    """Parse and evaluate ``query_text`` against ``graph``.

    ``graph`` is a :class:`~repro.rdf.Graph` or
    :class:`~repro.rdf.GraphView`. Returns a
    :class:`~repro.sparql.results.SolutionSequence` for SELECT, a bool
    for ASK, and a :class:`~repro.rdf.Graph` for CONSTRUCT.

    ``strategy`` picks the physical BGP execution (one of
    :data:`STRATEGIES`; default adaptive). Passing a :class:`PlanCache`
    as ``plan_cache`` reuses parsed queries and join orders across
    calls.
    """
    if plan_cache is not None:
        return plan_cache.execute(
            graph, query_text, nsm=nsm, bindings=bindings, strategy=strategy
        )
    query = parse_query(query_text, nsm=nsm)
    return evaluate(graph, query, initial_bindings=bindings, strategy=strategy)


__all__ = [
    "Aggregate",
    "AskQuery",
    "BGP",
    "BGPPlan",
    "DEFAULT_STRATEGY",
    "STRATEGIES",
    "BinaryExpr",
    "ConstExpr",
    "ConstructQuery",
    "Distinct",
    "Expression",
    "Filter",
    "FunctionExpr",
    "Join",
    "LeftJoin",
    "OrderBy",
    "Path",
    "PathAlternative",
    "PathInverse",
    "PathOptional",
    "PathPlus",
    "PathSequence",
    "PathStar",
    "PathStep",
    "PlanCache",
    "PreparedQuery",
    "Projection",
    "Query",
    "Row",
    "SelectQuery",
    "Slice",
    "SolutionSequence",
    "SparqlError",
    "SparqlEvalError",
    "SparqlParseError",
    "Token",
    "UnaryExpr",
    "Union",
    "UpdateResult",
    "VarExpr",
    "eval_path",
    "evaluate",
    "execute",
    "execute_update",
    "explain",
    "parse_update",
    "order_patterns",
    "parse_query",
    "pattern_selectivity",
    "plan_bgp",
    "planner_mode",
    "tokenize",
]
