"""FILTER expression trees and their evaluation.

Expression evaluation follows the SPARQL error model: an error inside a
FILTER (unbound variable, type mismatch) raises :class:`ExpressionError`,
which the evaluator treats as "effective boolean value false" for the row
instead of failing the query.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional

from repro.obs.profile import current_profile
from repro.rdf.terms import BNode, IRI, Literal, Term
from repro.sparql.errors import ExpressionError

_TRUE = Literal("true", datatype=IRI("http://www.w3.org/2001/XMLSchema#boolean"))
_FALSE = Literal("false", datatype=IRI("http://www.w3.org/2001/XMLSchema#boolean"))


def boolean(value: bool) -> Literal:
    return _TRUE if value else _FALSE


class Expression:
    """Base class of expression-tree nodes."""

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        raise NotImplementedError

    def variables(self) -> set:
        raise NotImplementedError


class VarExpr(Expression):
    """A variable reference ``?x``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name[1:] if name.startswith("?") else name

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        try:
            return binding[self.name]
        except KeyError:
            raise ExpressionError(f"unbound variable ?{self.name}") from None

    def variables(self) -> set:
        return {self.name}

    def __repr__(self) -> str:
        return f"VarExpr(?{self.name})"

    def __eq__(self, other):
        return isinstance(other, VarExpr) and other.name == self.name

    def __hash__(self):
        return hash((VarExpr, self.name))


class ConstExpr(Expression):
    """A constant term."""

    __slots__ = ("term",)

    def __init__(self, term: Term):
        self.term = term

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        return self.term

    def variables(self) -> set:
        return set()

    def __repr__(self) -> str:
        return f"ConstExpr({self.term!r})"

    def __eq__(self, other):
        return isinstance(other, ConstExpr) and other.term == self.term

    def __hash__(self):
        return hash((ConstExpr, self.term))


class UnaryExpr(Expression):
    """``!expr``, ``-expr``, ``+expr``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        self.op = op
        self.operand = operand

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        if self.op == "!":
            return boolean(not effective_boolean_value(self.operand.evaluate(binding)))
        value = _numeric(self.operand.evaluate(binding))
        return Literal(-value if self.op == "-" else value)

    def variables(self) -> set:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"UnaryExpr({self.op!r}, {self.operand!r})"


class BinaryExpr(Expression):
    """Binary operators: comparison, logic, arithmetic."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        op = self.op
        if op == "&&":
            # SPARQL logical-and error semantics: false wins over error.
            left = _ebv_or_error(self.left, binding)
            right = _ebv_or_error(self.right, binding)
            if left is False or right is False:
                return boolean(False)
            if left is None or right is None:
                raise ExpressionError("error in && operand")
            return boolean(True)
        if op == "||":
            left = _ebv_or_error(self.left, binding)
            right = _ebv_or_error(self.right, binding)
            if left is True or right is True:
                return boolean(True)
            if left is None or right is None:
                raise ExpressionError("error in || operand")
            return boolean(False)

        lhs = self.left.evaluate(binding)
        rhs = self.right.evaluate(binding)
        if op == "=":
            return boolean(_term_equal(lhs, rhs))
        if op == "!=":
            return boolean(not _term_equal(lhs, rhs))
        if op in ("<", ">", "<=", ">="):
            return boolean(_order_compare(op, lhs, rhs))
        if op in ("+", "-", "*", "/"):
            a, b = _numeric(lhs), _numeric(rhs)
            try:
                result = {"+": a + b, "-": a - b, "*": a * b}.get(op)
                if op == "/":
                    result = a / b
            except ZeroDivisionError:
                raise ExpressionError("division by zero") from None
            if isinstance(result, float) and result.is_integer() and isinstance(a, int) and isinstance(b, int) and op != "/":
                result = int(result)
            return Literal(result)
        raise ExpressionError(f"unknown operator {op!r}")

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"BinaryExpr({self.op!r}, {self.left!r}, {self.right!r})"


class ExistsExpr(Expression):
    """``EXISTS { pattern }`` / ``NOT EXISTS { pattern }``.

    Correlated against the row under test: the pattern is evaluated with
    the current bindings. The evaluator injects the graph before testing
    (expressions are otherwise graph-free).
    """

    __slots__ = ("pattern", "negated", "graph")

    def __init__(self, pattern, negated: bool = False):
        self.pattern = pattern
        self.negated = negated
        self.graph = None

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        if self.graph is None:
            raise ExpressionError("EXISTS evaluated outside a FILTER context")
        from repro.sparql.evaluator import eval_pattern

        found = any(True for _ in eval_pattern(self.graph, self.pattern, dict(binding)))
        return boolean(found != self.negated)

    def variables(self) -> set:
        return self.pattern.variables()

    def __repr__(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"ExistsExpr({keyword} ...)"


class FunctionExpr(Expression):
    """A built-in function call, e.g. ``regex(?term, "customer", "i")``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expression]):
        self.name = name.lower()
        self.args = args

    def evaluate(self, binding: Dict[str, Term]) -> Term:
        fn = _FUNCTIONS.get(self.name)
        if fn is None:
            raise ExpressionError(f"unknown function {self.name!r}")
        return fn(self.args, binding)

    def variables(self) -> set:
        out = set()
        for a in self.args:
            out |= a.variables()
        return out

    def __repr__(self) -> str:
        return f"FunctionExpr({self.name!r}, {self.args!r})"


# ---------------------------------------------------------------------------
# Semantics helpers
# ---------------------------------------------------------------------------


def effective_boolean_value(term: Term) -> bool:
    """The SPARQL effective boolean value (EBV) of a term."""
    if isinstance(term, Literal):
        if term.datatype is not None and term.datatype.local_name == "boolean":
            return term.lexical in ("true", "1")
        if term.is_numeric():
            return term.to_python() != 0
        if term.datatype is None and term.language is None:
            return bool(term.lexical)
        if term.language is not None:
            return bool(term.lexical)
    raise ExpressionError(f"no effective boolean value for {term!r}")


def _ebv_or_error(expr: Expression, binding) -> Optional[bool]:
    try:
        return effective_boolean_value(expr.evaluate(binding))
    except ExpressionError:
        return None


def _numeric(term: Term):
    if isinstance(term, Literal) and term.is_numeric():
        return term.to_python()
    raise ExpressionError(f"not a numeric literal: {term!r}")


def _term_equal(a: Term, b: Term) -> bool:
    if isinstance(a, Literal) and isinstance(b, Literal):
        if a.is_numeric() and b.is_numeric():
            return a.to_python() == b.to_python()
    return a == b


def _order_compare(op: str, a: Term, b: Term) -> bool:
    if isinstance(a, Literal) and isinstance(b, Literal):
        if a.is_numeric() and b.is_numeric():
            x, y = a.to_python(), b.to_python()
        elif a.datatype is None and b.datatype is None:
            x, y = a.lexical, b.lexical
        else:
            raise ExpressionError(f"incomparable literals {a!r} / {b!r}")
        return {"<": x < y, ">": x > y, "<=": x <= y, ">=": x >= y}[op]
    if isinstance(a, IRI) and isinstance(b, IRI):
        return {"<": a.value < b.value, ">": a.value > b.value, "<=": a.value <= b.value, ">=": a.value >= b.value}[op]
    raise ExpressionError(f"incomparable terms {a!r} / {b!r}")


# ---------------------------------------------------------------------------
# Built-in functions
# ---------------------------------------------------------------------------


def compile_regex(pattern: str, flag_text: str = "") -> "re.Pattern":
    """Compile a SPARQL regex() pattern + flag string, with caching.

    FILTER regex() runs once per candidate row, always with the same
    pattern; the cache turns per-row compilation (including re's flag
    handling) into a dict hit. Raises :class:`ExpressionError` on bad
    patterns or flags.

    The cache is module-level and shared by every concurrent query
    worker, so eviction and insertion are guarded by a lock (the hit
    path stays lock-free: a plain dict read is atomic under the GIL and
    a stale hit is impossible because entries are immutable).
    """
    cached = _REGEX_CACHE.get((pattern, flag_text))
    if cached is not None:
        prof = current_profile()
        if prof is not None:
            prof.count("regex_cache_hits")
        return cached
    prof = current_profile()
    if prof is not None:
        prof.count("regex_cache_misses")
    flags = 0
    mapping = {"i": re.IGNORECASE, "s": re.DOTALL, "m": re.MULTILINE, "x": re.VERBOSE}
    for ch in flag_text:
        if ch not in mapping:
            raise ExpressionError(f"unknown regex flag {ch!r}")
        flags |= mapping[ch]
    try:
        compiled = re.compile(pattern, flags)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from None
    with _REGEX_CACHE_LOCK:
        if len(_REGEX_CACHE) >= _REGEX_CACHE_LIMIT:
            _REGEX_CACHE.clear()
        _REGEX_CACHE[(pattern, flag_text)] = compiled
    return compiled


_REGEX_CACHE: Dict[tuple, "re.Pattern"] = {}
_REGEX_CACHE_LIMIT = 512
_REGEX_CACHE_LOCK = threading.Lock()


def _fn_regex(args, binding):
    if len(args) not in (2, 3):
        raise ExpressionError("regex() takes 2 or 3 arguments")
    text = _string_value(args[0].evaluate(binding))
    pattern = _string_value(args[1].evaluate(binding))
    flag_text = _string_value(args[2].evaluate(binding)) if len(args) == 3 else ""
    return boolean(compile_regex(pattern, flag_text).search(text) is not None)


def _fn_bound(args, binding):
    if len(args) != 1 or not isinstance(args[0], VarExpr):
        raise ExpressionError("bound() takes one variable argument")
    return boolean(args[0].name in binding)


def _fn_str(args, binding):
    term = _single(args, binding, "str")
    if isinstance(term, Literal):
        return Literal(term.lexical)
    if isinstance(term, IRI):
        return Literal(term.value)
    raise ExpressionError("str() of a blank node")


def _fn_lang(args, binding):
    term = _single(args, binding, "lang")
    if isinstance(term, Literal):
        return Literal(term.language or "")
    raise ExpressionError("lang() of a non-literal")


def _fn_datatype(args, binding):
    term = _single(args, binding, "datatype")
    if isinstance(term, Literal):
        if term.datatype is not None:
            return term.datatype
        return IRI("http://www.w3.org/2001/XMLSchema#string")
    raise ExpressionError("datatype() of a non-literal")


def _fn_isiri(args, binding):
    return boolean(isinstance(_single(args, binding, "isIRI"), IRI))


def _fn_isliteral(args, binding):
    return boolean(isinstance(_single(args, binding, "isLiteral"), Literal))


def _fn_isblank(args, binding):
    return boolean(isinstance(_single(args, binding, "isBlank"), BNode))


def _fn_contains(args, binding):
    a, b = _two_strings(args, binding, "contains")
    return boolean(b in a)


def _fn_strstarts(args, binding):
    a, b = _two_strings(args, binding, "strstarts")
    return boolean(a.startswith(b))


def _fn_strends(args, binding):
    a, b = _two_strings(args, binding, "strends")
    return boolean(a.endswith(b))


def _fn_ucase(args, binding):
    return Literal(_string_value(_single(args, binding, "ucase")).upper())


def _fn_lcase(args, binding):
    return Literal(_string_value(_single(args, binding, "lcase")).lower())


def _fn_strlen(args, binding):
    return Literal(len(_string_value(_single(args, binding, "strlen"))))


def _fn_if(args, binding):
    if len(args) != 3:
        raise ExpressionError("if() takes three arguments")
    condition = effective_boolean_value(args[0].evaluate(binding))
    return args[1].evaluate(binding) if condition else args[2].evaluate(binding)


def _fn_coalesce(args, binding):
    for argument in args:
        try:
            return argument.evaluate(binding)
        except ExpressionError:
            continue
    raise ExpressionError("coalesce(): every argument errored")


def _fn_concat(args, binding):
    return Literal("".join(_string_value(a.evaluate(binding)) for a in args))


def _fn_substr(args, binding):
    if len(args) not in (2, 3):
        raise ExpressionError("substr() takes 2 or 3 arguments")
    text = _string_value(args[0].evaluate(binding))
    start = _integer(args[1].evaluate(binding))
    if start < 1:
        raise ExpressionError("substr() start is 1-based")
    if len(args) == 3:
        length = _integer(args[2].evaluate(binding))
        return Literal(text[start - 1 : start - 1 + length])
    return Literal(text[start - 1 :])


def _fn_replace(args, binding):
    if len(args) not in (3, 4):
        raise ExpressionError("replace() takes 3 or 4 arguments")
    text = _string_value(args[0].evaluate(binding))
    pattern = _string_value(args[1].evaluate(binding))
    replacement = _string_value(args[2].evaluate(binding))
    flags = 0
    if len(args) == 4 and "i" in _string_value(args[3].evaluate(binding)):
        flags = re.IGNORECASE
    try:
        return Literal(re.sub(pattern, replacement, text, flags=flags))
    except re.error as exc:
        raise ExpressionError(f"bad replace pattern: {exc}") from None


def _fn_strbefore(args, binding):
    a, b = _two_strings(args, binding, "strbefore")
    index = a.find(b)
    return Literal(a[:index] if index >= 0 else "")


def _fn_strafter(args, binding):
    a, b = _two_strings(args, binding, "strafter")
    index = a.find(b)
    return Literal(a[index + len(b):] if index >= 0 else "")


def _fn_abs(args, binding):
    return Literal(abs(_numeric(_single(args, binding, "abs"))))


def _fn_round(args, binding):
    value = _numeric(_single(args, binding, "round"))
    import math

    # SPARQL rounds halves away from zero, unlike Python's banker's rounding
    return Literal(int(math.floor(value + 0.5)) if value >= 0 else int(math.ceil(value - 0.5)))


def _fn_ceil(args, binding):
    import math

    return Literal(math.ceil(_numeric(_single(args, binding, "ceil"))))


def _fn_floor(args, binding):
    import math

    return Literal(math.floor(_numeric(_single(args, binding, "floor"))))


def _integer(term: Term) -> int:
    value = _numeric(term)
    if isinstance(value, float) and not value.is_integer():
        raise ExpressionError(f"expected an integer, got {value}")
    return int(value)


def _single(args, binding, name) -> Term:
    if len(args) != 1:
        raise ExpressionError(f"{name}() takes one argument")
    return args[0].evaluate(binding)


def _two_strings(args, binding, name):
    if len(args) != 2:
        raise ExpressionError(f"{name}() takes two arguments")
    return (
        _string_value(args[0].evaluate(binding)),
        _string_value(args[1].evaluate(binding)),
    )


def _string_value(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError(f"no string value for {term!r}")


_FUNCTIONS: Dict[str, Callable] = {
    "regex": _fn_regex,
    "regexp_like": _fn_regex,  # Oracle spelling used in the paper's listings
    "bound": _fn_bound,
    "str": _fn_str,
    "lang": _fn_lang,
    "datatype": _fn_datatype,
    "isiri": _fn_isiri,
    "isuri": _fn_isiri,
    "isliteral": _fn_isliteral,
    "isblank": _fn_isblank,
    "contains": _fn_contains,
    "strstarts": _fn_strstarts,
    "strends": _fn_strends,
    "ucase": _fn_ucase,
    "lcase": _fn_lcase,
    "strlen": _fn_strlen,
    "if": _fn_if,
    "coalesce": _fn_coalesce,
    "concat": _fn_concat,
    "substr": _fn_substr,
    "replace": _fn_replace,
    "strbefore": _fn_strbefore,
    "strafter": _fn_strafter,
    "abs": _fn_abs,
    "round": _fn_round,
    "ceil": _fn_ceil,
    "floor": _fn_floor,
}


def builtin_function_names():
    """Sorted names of all supported FILTER functions."""
    return sorted(_FUNCTIONS)
