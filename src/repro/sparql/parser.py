"""Recursive-descent parser producing the query algebra.

Supports the SPARQL fragment the meta-data warehouse needs: SELECT / ASK /
CONSTRUCT forms, basic graph patterns with ``;`` and ``,`` abbreviations,
``a`` for ``rdf:type``, FILTER with full expression syntax, OPTIONAL,
UNION, GROUP BY + aggregates, HAVING, ORDER BY, LIMIT and OFFSET.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import BNode, IRI, Literal, Triple, Variable
from repro.sparql.algebra import (
    Aggregate,
    AskQuery,
    BGP,
    ConstructQuery,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderCondition,
    Pattern,
    Projection,
    Query,
    SelectQuery,
    Union,
    ValuesPattern,
)
from repro.sparql.algebra import PathTriple
from repro.sparql.errors import SparqlParseError
from repro.sparql.paths import (
    Path,
    PathAlternative,
    PathInverse,
    PathOptional,
    PathPlus,
    PathSequence,
    PathStar,
    PathStep,
)
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    ExistsExpr,
    Expression,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
)
from repro.sparql.tokenizer import Token, tokenize

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"}


def parse_query(text: str, nsm: Optional[NamespaceManager] = None) -> Query:
    """Parse a query string into an algebra :class:`Query`.

    ``nsm`` provides pre-bound prefixes (the SEM_ALIASES mechanism);
    PREFIX declarations in the query extend a copy, never the caller's
    manager.
    """
    parser = _Parser(tokenize(text), nsm)
    return parser.parse_query()


class _Parser:
    def __init__(self, tokens: List[Token], nsm: Optional[NamespaceManager]):
        self.tokens = tokens
        self.pos = 0
        self.nsm = NamespaceManager()
        if nsm is not None:
            for prefix, ns in nsm.bindings():
                self.nsm.bind(prefix, ns)

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, kind: str, value: str = None) -> bool:
        return self.peek().matches(kind, value)

    def accept(self, kind: str, value: str = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: str = None) -> Token:
        tok = self.peek()
        if not tok.matches(kind, value):
            want = value or kind
            raise SparqlParseError(
                f"expected {want!r}, found {tok.value or tok.kind!r}", tok.position, tok.line
            )
        return self.next()

    def error(self, message: str) -> SparqlParseError:
        tok = self.peek()
        return SparqlParseError(message, tok.position, tok.line)

    # -- prologue -----------------------------------------------------------

    def parse_prologue(self) -> None:
        while True:
            if self.accept("KEYWORD", "PREFIX"):
                pname = self.expect("PNAME")
                prefix = pname.value.split(":", 1)[0]
                iriref = self.expect("IRIREF")
                self.nsm.bind(prefix, iriref.value)
            elif self.accept("KEYWORD", "BASE"):
                self.expect("IRIREF")  # accepted and ignored (no relative IRIs)
            else:
                return

    # -- query roots ---------------------------------------------------------

    def parse_query(self) -> Query:
        self.parse_prologue()
        if self.at("KEYWORD", "SELECT"):
            query = self.parse_select()
        elif self.at("KEYWORD", "ASK"):
            query = self.parse_ask()
        elif self.at("KEYWORD", "CONSTRUCT"):
            query = self.parse_construct()
        elif self.at("KEYWORD", "DESCRIBE"):
            query = self.parse_describe()
        else:
            raise self.error("expected SELECT, ASK, CONSTRUCT, or DESCRIBE")
        self.expect("EOF")
        return query

    def parse_select(self) -> SelectQuery:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        self.accept("KEYWORD", "REDUCED")
        projection = self.parse_projection()
        self.accept("KEYWORD", "WHERE")
        pattern = self.parse_group_graph_pattern()

        group_by: List[str] = []
        having = None
        order_by: List[OrderCondition] = []
        limit = None
        offset = 0
        while True:
            if self.accept("KEYWORD", "GROUP"):
                self.expect("KEYWORD", "BY")
                while self.at("VAR"):
                    group_by.append(self.next().value)
                if not group_by:
                    raise self.error("GROUP BY requires at least one variable")
            elif self.accept("KEYWORD", "HAVING"):
                having = self.parse_constraint()
            elif self.accept("KEYWORD", "ORDER"):
                self.expect("KEYWORD", "BY")
                order_by = self.parse_order_conditions()
            elif self.accept("KEYWORD", "LIMIT"):
                limit = int(self.expect("NUMBER").value)
            elif self.accept("KEYWORD", "OFFSET"):
                offset = int(self.expect("NUMBER").value)
            else:
                break
        return SelectQuery(
            projection=projection,
            pattern=pattern,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def parse_ask(self) -> AskQuery:
        self.expect("KEYWORD", "ASK")
        self.accept("KEYWORD", "WHERE")
        return AskQuery(pattern=self.parse_group_graph_pattern())

    def parse_describe(self) -> "DescribeQuery":
        from repro.sparql.algebra import DescribeQuery

        self.expect("KEYWORD", "DESCRIBE")
        resources: List[IRI] = []
        variables: List[str] = []
        while True:
            tok = self.peek()
            if tok.kind == "IRIREF":
                resources.append(IRI(self.next().value))
            elif tok.kind == "PNAME":
                resources.append(self.expand_pname(self.next()))
            elif tok.kind == "VAR":
                variables.append(self.next().value)
            else:
                break
        if not resources and not variables:
            raise self.error("DESCRIBE requires at least one IRI or variable")
        pattern = None
        if self.at("KEYWORD", "WHERE") or self.at("PUNCT", "{"):
            self.accept("KEYWORD", "WHERE")
            pattern = self.parse_group_graph_pattern()
        elif variables:
            raise self.error("DESCRIBE with variables requires a WHERE pattern")
        return DescribeQuery(resources=resources, variables=variables, pattern=pattern)

    def parse_construct(self) -> ConstructQuery:
        self.expect("KEYWORD", "CONSTRUCT")
        template_bgp = self.parse_braced_triples()
        self.expect("KEYWORD", "WHERE")
        pattern = self.parse_group_graph_pattern()
        return ConstructQuery(template=template_bgp, pattern=pattern)

    # -- projection -----------------------------------------------------------

    def parse_projection(self) -> Projection:
        if self.accept("PUNCT", "*"):
            return Projection(select_all=True)
        proj = Projection()
        while True:
            if self.at("VAR"):
                proj.variables.append(self.next().value)
            elif self.at("PUNCT", "("):
                proj.aggregates.append(self.parse_aggregate_column())
            elif self.peek().kind == "KEYWORD" and self.peek().value in _AGGREGATES:
                proj.aggregates.append(self.parse_aggregate_column(parenthesized=False))
            else:
                break
        if not proj.variables and not proj.aggregates:
            raise self.error("SELECT requires * or at least one column")
        return proj

    def parse_aggregate_column(self, parenthesized: bool = True) -> Aggregate:
        if parenthesized:
            self.expect("PUNCT", "(")
        tok = self.peek()
        if tok.kind != "KEYWORD" or tok.value not in _AGGREGATES:
            raise self.error("expected aggregate function")
        function = self.next().value
        self.expect("PUNCT", "(")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        expression = None
        separator = " "
        if self.accept("PUNCT", "*"):
            if function != "COUNT":
                raise self.error("only COUNT accepts *")
        else:
            expression = self.parse_expression()
        if function == "GROUP_CONCAT" and self.accept("PUNCT", ";"):
            name = self.expect("NAME")
            if name.value.lower() != "separator":
                raise self.error("expected 'separator'")
            self.expect("PUNCT", "=")
            separator = self.expect("STRING").value
        self.expect("PUNCT", ")")
        self.expect("KEYWORD", "AS")
        alias = self.expect("VAR").value
        if parenthesized:
            self.expect("PUNCT", ")")
        return Aggregate(
            function=function,
            expression=expression,
            alias=alias,
            distinct=distinct,
            separator=separator,
        )

    def parse_order_conditions(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        while True:
            if self.accept("KEYWORD", "ASC"):
                self.expect("PUNCT", "(")
                expr = self.parse_expression()
                self.expect("PUNCT", ")")
                conditions.append(OrderCondition(expr, descending=False))
            elif self.accept("KEYWORD", "DESC"):
                self.expect("PUNCT", "(")
                expr = self.parse_expression()
                self.expect("PUNCT", ")")
                conditions.append(OrderCondition(expr, descending=True))
            elif self.at("VAR"):
                conditions.append(OrderCondition(VarExpr(self.next().value)))
            else:
                break
        if not conditions:
            raise self.error("ORDER BY requires at least one condition")
        return conditions

    # -- graph patterns ---------------------------------------------------------

    def parse_group_graph_pattern(self) -> Pattern:
        self.expect("PUNCT", "{")
        pattern: Optional[Pattern] = None
        filters: List[Expression] = []

        def combine(next_pattern: Pattern):
            nonlocal pattern
            pattern = next_pattern if pattern is None else Join(pattern, next_pattern)

        while not self.at("PUNCT", "}"):
            if self.accept("KEYWORD", "FILTER"):
                filters.append(self.parse_constraint())
                self.accept("PUNCT", ".")
            elif self.accept("KEYWORD", "OPTIONAL"):
                right = self.parse_group_graph_pattern()
                left = pattern if pattern is not None else BGP([])
                pattern = LeftJoin(left, right)
                self.accept("PUNCT", ".")
            elif self.accept("KEYWORD", "MINUS"):
                right = self.parse_group_graph_pattern()
                left = pattern if pattern is not None else BGP([])
                pattern = Minus(left, right)
                self.accept("PUNCT", ".")
            elif self.accept("KEYWORD", "BIND"):
                self.expect("PUNCT", "(")
                expression = self.parse_expression()
                self.expect("KEYWORD", "AS")
                variable = self.expect("VAR").value
                self.expect("PUNCT", ")")
                left = pattern if pattern is not None else BGP([])
                pattern = Extend(left, variable, expression)
                self.accept("PUNCT", ".")
            elif self.accept("KEYWORD", "VALUES"):
                combine(self.parse_values())
                self.accept("PUNCT", ".")
            elif self.at("PUNCT", "{"):
                sub = self.parse_group_or_union()
                combine(sub)
                self.accept("PUNCT", ".")
            else:
                bgp = self.parse_triples_block()
                combine(bgp)
        self.expect("PUNCT", "}")
        if pattern is None:
            pattern = BGP([])
        for condition in filters:
            pattern = Filter(condition, pattern)
        return pattern

    def parse_group_or_union(self) -> Pattern:
        left = self.parse_group_graph_pattern()
        while self.accept("KEYWORD", "UNION"):
            right = self.parse_group_graph_pattern()
            left = Union(left, right)
        return left

    def parse_braced_triples(self) -> List[Triple]:
        self.expect("PUNCT", "{")
        triples: List[Triple] = []
        while not self.at("PUNCT", "}"):
            plain, paths = self.parse_triples_same_subject()
            if paths:
                raise self.error("property paths are not allowed in CONSTRUCT templates")
            triples.extend(plain)
            if not self.accept("PUNCT", "."):
                break
        self.expect("PUNCT", "}")
        return triples

    def parse_triples_block(self) -> BGP:
        triples: List[Triple] = []
        paths: List[PathTriple] = []
        while True:
            t, p = self.parse_triples_same_subject()
            triples.extend(t)
            paths.extend(p)
            if not self.accept("PUNCT", "."):
                break
            if self.at("PUNCT", "}") or self.at("PUNCT", "{") or self.peek().kind == "KEYWORD":
                break
        return BGP(triples, paths)

    def parse_triples_same_subject(self):
        subject = self.parse_var_or_term("subject")
        triples: List[Triple] = []
        paths: List[PathTriple] = []
        while True:
            predicate = self.parse_verb()
            while True:
                obj = self.parse_var_or_term("object")
                if isinstance(predicate, Path):
                    paths.append(PathTriple(subject, predicate, obj))
                else:
                    triples.append(Triple(subject, predicate, obj))
                if not self.accept("PUNCT", ","):
                    break
            if not self.accept("PUNCT", ";"):
                break
            if self.at("PUNCT", ".") or self.at("PUNCT", "}"):
                break
        return triples, paths

    def parse_verb(self):
        """A predicate: variable, plain IRI, or a property path.

        A path consisting of a single unmodified step collapses to its
        IRI so plain triples keep their (plannable) form.
        """
        if self.peek().kind == "VAR":
            return Variable(self.next().value)
        path = self.parse_path()
        if isinstance(path, PathStep):
            return path.predicate
        return path

    # -- property paths -----------------------------------------------------

    def parse_path(self) -> Path:
        choices = [self.parse_path_sequence()]
        while self.accept("PUNCT", "|"):
            choices.append(self.parse_path_sequence())
        return choices[0] if len(choices) == 1 else PathAlternative(choices)

    def parse_path_sequence(self) -> Path:
        parts = [self.parse_path_elt()]
        while self.accept("PUNCT", "/"):
            parts.append(self.parse_path_elt())
        return parts[0] if len(parts) == 1 else PathSequence(parts)

    def parse_path_elt(self) -> Path:
        if self.accept("PUNCT", "^"):
            primary = PathInverse(self.parse_path_primary())
        else:
            primary = self.parse_path_primary()
        return self.parse_path_modifier(primary)

    def parse_path_modifier(self, path: Path) -> Path:
        if self.accept("PUNCT", "*"):
            return PathStar(path)
        if self.accept("PUNCT", "+"):
            return PathPlus(path)
        if self.accept("PUNCT", "?"):
            return PathOptional(path)
        return path

    def parse_path_primary(self) -> Path:
        tok = self.peek()
        if tok.matches("NAME", "a"):
            self.next()
            return PathStep(_RDF_TYPE)
        if tok.kind == "IRIREF":
            return PathStep(IRI(self.next().value))
        if tok.kind == "PNAME":
            return PathStep(self.expand_pname(self.next()))
        if tok.matches("PUNCT", "("):
            self.next()
            inner = self.parse_path()
            self.expect("PUNCT", ")")
            return inner
        raise self.error(
            "expected predicate (IRI, prefixed name, ?var, 'a', or a property path)"
        )

    def parse_var_or_term(self, position: str):
        tok = self.peek()
        if tok.kind == "VAR":
            return Variable(self.next().value)
        if tok.kind == "IRIREF":
            return IRI(self.next().value)
        if tok.kind == "PNAME":
            return self.expand_pname(self.next())
        if tok.kind == "BNODE":
            return BNode(self.next().value)
        if tok.kind == "STRING":
            return self.parse_literal_tail(self.next().value)
        if tok.kind == "NUMBER":
            return _number_literal(self.next().value)
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self.next()
            return Literal(tok.value == "TRUE")
        raise self.error(f"expected term in {position} position, found {tok.value or tok.kind!r}")

    def parse_literal_tail(self, body: str) -> Literal:
        if self.peek().kind == "LANGTAG":
            return Literal(body, language=self.next().value)
        if self.accept("PUNCT", "^^"):
            tok = self.peek()
            if tok.kind == "IRIREF":
                return Literal(body, datatype=IRI(self.next().value))
            if tok.kind == "PNAME":
                return Literal(body, datatype=self.expand_pname(self.next()))
            raise self.error("expected datatype IRI after ^^")
        return Literal(body)

    def expand_pname(self, tok: Token) -> IRI:
        try:
            return self.nsm.expand(tok.value)
        except KeyError as exc:
            raise SparqlParseError(str(exc), tok.position, tok.line) from None

    # -- VALUES ---------------------------------------------------------------

    def parse_values(self) -> ValuesPattern:
        """``VALUES ?x { a b }`` or ``VALUES (?x ?y) { (a b) (UNDEF c) }``."""
        names: List[str] = []
        single = False
        if self.at("VAR"):
            names.append(self.next().value)
            single = True
        else:
            self.expect("PUNCT", "(")
            while self.at("VAR"):
                names.append(self.next().value)
            self.expect("PUNCT", ")")
        if not names:
            raise self.error("VALUES requires at least one variable")
        rows = []
        self.expect("PUNCT", "{")
        while not self.at("PUNCT", "}"):
            if single:
                rows.append((self.parse_values_term(),))
            else:
                self.expect("PUNCT", "(")
                row = []
                while not self.at("PUNCT", ")"):
                    row.append(self.parse_values_term())
                self.expect("PUNCT", ")")
                if len(row) != len(names):
                    raise self.error(
                        f"VALUES row has {len(row)} terms for {len(names)} variables"
                    )
                rows.append(tuple(row))
        self.expect("PUNCT", "}")
        return ValuesPattern(names=names, rows=rows)

    def parse_values_term(self):
        if self.accept("KEYWORD", "UNDEF"):
            return None
        tok = self.peek()
        if tok.kind == "IRIREF":
            return IRI(self.next().value)
        if tok.kind == "PNAME":
            return self.expand_pname(self.next())
        if tok.kind == "STRING":
            return self.parse_literal_tail(self.next().value)
        if tok.kind == "NUMBER":
            return _number_literal(self.next().value)
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self.next()
            return Literal(tok.value == "TRUE")
        raise self.error("expected a term or UNDEF in VALUES data")

    # -- expressions --------------------------------------------------------------

    def parse_constraint(self) -> Expression:
        if self.at("KEYWORD", "EXISTS") or self.at("KEYWORD", "NOT"):
            return self.parse_exists()
        if self.at("PUNCT", "("):
            return self.parse_bracketted()
        if self.peek().kind in ("NAME", "KEYWORD"):
            return self.parse_function_call()
        raise self.error("expected FILTER constraint")

    def parse_exists(self) -> Expression:
        negated = bool(self.accept("KEYWORD", "NOT"))
        self.expect("KEYWORD", "EXISTS")
        pattern = self.parse_group_graph_pattern()
        return ExistsExpr(pattern, negated=negated)

    def parse_bracketted(self) -> Expression:
        self.expect("PUNCT", "(")
        expr = self.parse_expression()
        self.expect("PUNCT", ")")
        return expr

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept("PUNCT", "||"):
            left = BinaryExpr("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_relational()
        while self.accept("PUNCT", "&&"):
            left = BinaryExpr("&&", left, self.parse_relational())
        return left

    def parse_relational(self) -> Expression:
        left = self.parse_additive()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self.at("PUNCT", op):
                self.next()
                return BinaryExpr(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            if self.accept("PUNCT", "+"):
                left = BinaryExpr("+", left, self.parse_multiplicative())
            elif self.accept("PUNCT", "-"):
                left = BinaryExpr("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            if self.accept("PUNCT", "*"):
                left = BinaryExpr("*", left, self.parse_unary())
            elif self.accept("PUNCT", "/"):
                left = BinaryExpr("/", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        if self.accept("PUNCT", "!"):
            return UnaryExpr("!", self.parse_unary())
        if self.accept("PUNCT", "-"):
            return UnaryExpr("-", self.parse_unary())
        if self.accept("PUNCT", "+"):
            return UnaryExpr("+", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "(":
            return self.parse_bracketted()
        if tok.kind == "VAR":
            return VarExpr(self.next().value)
        if tok.kind == "STRING":
            return ConstExpr(self.parse_literal_tail(self.next().value))
        if tok.kind == "NUMBER":
            return ConstExpr(_number_literal(self.next().value))
        if tok.kind == "IRIREF":
            return ConstExpr(IRI(self.next().value))
        if tok.kind == "PNAME":
            return ConstExpr(self.expand_pname(self.next()))
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self.next()
            return ConstExpr(Literal(tok.value == "TRUE"))
        if tok.kind == "KEYWORD" and tok.value in ("EXISTS", "NOT"):
            return self.parse_exists()
        if tok.kind in ("NAME", "KEYWORD"):
            return self.parse_function_call()
        raise self.error(f"unexpected token {tok.value or tok.kind!r} in expression")

    def parse_function_call(self) -> Expression:
        name = self.next().value
        self.expect("PUNCT", "(")
        args: List[Expression] = []
        if not self.at("PUNCT", ")"):
            args.append(self.parse_expression())
            while self.accept("PUNCT", ","):
                args.append(self.parse_expression())
        self.expect("PUNCT", ")")
        return FunctionExpr(name, args)


def _number_literal(text: str) -> Literal:
    if "." in text:
        return Literal(text, datatype=IRI("http://www.w3.org/2001/XMLSchema#decimal"))
    return Literal(int(text))
