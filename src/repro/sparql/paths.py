"""SPARQL 1.1 property paths.

The paper describes the lineage tool's driving path as the regular
expression ``(isMappedTo)* rdf:type`` (Section IV.B) — exactly a SPARQL
property path. The engine supports:

=========== =====================================
``iri``      a single predicate step
``^path``    inverse
``p1/p2``    sequence
``p1|p2``    alternative
``path*``    zero or more
``path+``    one or more
``path?``    zero or one
``(path)``   grouping
=========== =====================================

Evaluation is set-based: :func:`eval_path` yields (subject, object)
pairs, using BFS from whichever side is bound (or both, or neither).
Zero-length matches follow the SPARQL spec: ``path*`` and ``path?``
relate every graph node to itself.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import IRI, Literal, Term


class Path:
    """Base class of property-path expressions."""

    def text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Path {self.text()}>"

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self), self.text()))


class PathStep(Path):
    """One predicate hop."""

    def __init__(self, predicate: IRI):
        self.predicate = predicate

    def text(self) -> str:
        return f"<{self.predicate.value}>"

    def __eq__(self, other):
        return isinstance(other, PathStep) and other.predicate == self.predicate

    def __hash__(self):
        return hash((PathStep, self.predicate))


class PathInverse(Path):
    def __init__(self, inner: Path):
        self.inner = inner

    def text(self) -> str:
        return f"^({self.inner.text()})"


class PathSequence(Path):
    def __init__(self, parts: List[Path]):
        if len(parts) < 2:
            raise ValueError("a sequence path needs at least two parts")
        self.parts = list(parts)

    def text(self) -> str:
        return "/".join(p.text() for p in self.parts)


class PathAlternative(Path):
    def __init__(self, choices: List[Path]):
        if len(choices) < 2:
            raise ValueError("an alternative path needs at least two choices")
        self.choices = list(choices)

    def text(self) -> str:
        return "|".join(c.text() for c in self.choices)


class PathStar(Path):
    """Zero or more repetitions."""

    def __init__(self, inner: Path):
        self.inner = inner

    def text(self) -> str:
        return f"({self.inner.text()})*"


class PathPlus(Path):
    """One or more repetitions."""

    def __init__(self, inner: Path):
        self.inner = inner

    def text(self) -> str:
        return f"({self.inner.text()})+"


class PathOptional(Path):
    """Zero or one occurrence."""

    def __init__(self, inner: Path):
        self.inner = inner

    def text(self) -> str:
        return f"({self.inner.text()})?"


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def eval_path(
    graph,
    path: Path,
    start: Optional[Term] = None,
    end: Optional[Term] = None,
) -> Iterator[Tuple[Term, Term]]:
    """Yield (subject, object) pairs related by ``path``.

    ``start``/``end`` bind the endpoints; unbound endpoints are
    enumerated. Results are deduplicated.
    """
    if start is not None:
        if isinstance(start, Literal):
            return  # literals have no outgoing edges
        seen: Set[Term] = set()
        for target in _forward(graph, path, start):
            if end is not None:
                if target == end:
                    yield (start, end)
                    return
            elif target not in seen:
                seen.add(target)
                yield (start, target)
        return
    if end is not None:
        seen = set()
        for source in _backward(graph, path, end):
            if source not in seen:
                seen.add(source)
                yield (source, end)
        return
    # both unbound: enumerate candidate subjects
    emitted: Set[Tuple[Term, Term]] = set()
    for candidate in _candidate_subjects(graph, path):
        for target in set(_forward(graph, path, candidate)):
            pair = (candidate, target)
            if pair not in emitted:
                emitted.add(pair)
                yield pair


def _candidate_subjects(graph, path: Path) -> Iterator[Term]:
    """Nodes that could start a match (all graph nodes for zero-length-
    capable paths, else subjects of the path's first predicates)."""
    if _matches_zero_length(path):
        yield from graph.nodes() if hasattr(graph, "nodes") else _all_nodes(graph)
        return
    seen: Set[Term] = set()
    for predicate, inverse in _first_steps(path):
        if inverse:
            nodes = graph.objects(None, predicate)
        else:
            nodes = graph.subjects(predicate, None)
        for node in nodes:
            if node not in seen:
                seen.add(node)
                yield node


def _all_nodes(graph) -> Iterator[Term]:
    seen: Set[Term] = set()
    for t in graph.triples(None, None, None):
        for node in (t.subject, t.object):
            if node not in seen:
                seen.add(node)
                yield node


def _matches_zero_length(path: Path) -> bool:
    if isinstance(path, (PathStar, PathOptional)):
        return True
    if isinstance(path, PathSequence):
        return all(_matches_zero_length(p) for p in path.parts)
    if isinstance(path, PathAlternative):
        return any(_matches_zero_length(c) for c in path.choices)
    if isinstance(path, PathInverse):
        return _matches_zero_length(path.inner)
    return False


def _first_steps(path: Path, inverted: bool = False) -> Iterator[Tuple[IRI, bool]]:
    """The predicates (with inversion flags) a match can start with."""
    if isinstance(path, PathStep):
        yield (path.predicate, inverted)
    elif isinstance(path, PathInverse):
        yield from _first_steps(path.inner, not inverted)
    elif isinstance(path, PathSequence):
        for part in path.parts:
            yield from _first_steps(part, inverted)
            if not _matches_zero_length(part):
                return
    elif isinstance(path, PathAlternative):
        for choice in path.choices:
            yield from _first_steps(choice, inverted)
    elif isinstance(path, (PathStar, PathPlus, PathOptional)):
        yield from _first_steps(path.inner, inverted)


def _forward(graph, path: Path, node: Term) -> Iterator[Term]:
    """All targets reachable from ``node`` via ``path`` (may repeat)."""
    if isinstance(node, Literal):
        return
    if isinstance(path, PathStep):
        yield from graph.objects(node, path.predicate)
    elif isinstance(path, PathInverse):
        yield from _backward(graph, path.inner, node)
    elif isinstance(path, PathSequence):
        frontier = {node}
        for part in path.parts:
            nxt: Set[Term] = set()
            for current in frontier:
                nxt.update(_forward(graph, part, current))
            frontier = nxt
            if not frontier:
                return
        yield from frontier
    elif isinstance(path, PathAlternative):
        for choice in path.choices:
            yield from _forward(graph, choice, node)
    elif isinstance(path, PathStar):
        yield from _closure(graph, path.inner, node, include_start=True)
    elif isinstance(path, PathPlus):
        yield from _closure(graph, path.inner, node, include_start=False)
    elif isinstance(path, PathOptional):
        yield node
        yield from _forward(graph, path.inner, node)
    else:
        raise TypeError(f"unknown path node {type(path).__name__}")


def _backward(graph, path: Path, node: Term) -> Iterator[Term]:
    """All sources from which ``node`` is reachable via ``path``."""
    if isinstance(path, PathStep):
        yield from graph.subjects(path.predicate, node)
    elif isinstance(path, PathInverse):
        yield from _forward(graph, path.inner, node)
    elif isinstance(path, PathSequence):
        frontier = {node}
        for part in reversed(path.parts):
            nxt: Set[Term] = set()
            for current in frontier:
                nxt.update(_backward(graph, part, current))
            frontier = nxt
            if not frontier:
                return
        yield from frontier
    elif isinstance(path, PathAlternative):
        for choice in path.choices:
            yield from _backward(graph, choice, node)
    elif isinstance(path, PathStar):
        yield from _closure(graph, path.inner, node, include_start=True, backward=True)
    elif isinstance(path, PathPlus):
        yield from _closure(graph, path.inner, node, include_start=False, backward=True)
    elif isinstance(path, PathOptional):
        yield node
        yield from _backward(graph, path.inner, node)
    else:
        raise TypeError(f"unknown path node {type(path).__name__}")


def _closure(
    graph,
    inner: Path,
    node: Term,
    include_start: bool,
    backward: bool = False,
) -> Iterator[Term]:
    from repro.sparql.cancel import current_cancel

    token = current_cancel()
    step = _backward if backward else _forward
    visited: Set[Term] = set()
    if include_start:
        visited.add(node)
        yield node
    frontier = [node]
    expanded = 0
    while frontier:
        if token is not None:
            expanded += 1
            if not (expanded & 255):
                token.check()
        current = frontier.pop()
        for neighbour in set(step(graph, inner, current)):
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
                yield neighbour
