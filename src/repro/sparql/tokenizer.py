"""Tokenizer for the SPARQL subset.

Produces a flat token list for the recursive-descent parser. Token kinds:

========= ==========================================================
kind       examples
========= ==========================================================
IRIREF     ``<http://...>``
PNAME      ``dm:hasName``, ``rdf:type``, ``dm:`` (prefix declaration)
VAR        ``?term``, ``$term``
STRING     ``"customer"``, ``'customer'``
NUMBER     ``42``, ``-3.5``
KEYWORD    ``SELECT``, ``WHERE``, ``FILTER``, ... (case-insensitive)
NAME       bare identifiers — function names like ``regex``, and ``a``
PUNCT      ``{ } ( ) . ; , * = != < > <= >= && || ! + - /``
========= ==========================================================
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.sparql.errors import SparqlParseError

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "REDUCED",
    "WHERE",
    "FILTER",
    "OPTIONAL",
    "UNION",
    "PREFIX",
    "BASE",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "GROUP",
    "HAVING",
    "ASK",
    "CONSTRUCT",
    "DESCRIBE",
    "AS",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "GROUP_CONCAT",
    "SAMPLE",
    "NOT",
    "IN",
    "TRUE",
    "FALSE",
    "BIND",
    "VALUES",
    "MINUS",
    "EXISTS",
    "UNDEF",
}

_PUNCT_2 = ("<=", ">=", "!=", "&&", "||", "^^")
_PUNCT_1 = "{}().;,*=<>!+-/|^"


class Token(NamedTuple):
    kind: str
    value: str
    position: int
    line: int

    def matches(self, kind: str, value: str = None) -> bool:
        if self.kind != kind:
            return False
        if value is None:
            return True
        if kind == "KEYWORD":
            return self.value.upper() == value.upper()
        return self.value == value


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SparqlParseError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "#":
            nl = text.find("\n", i)
            i = n if nl == -1 else nl
            continue
        start = i
        if ch == "<":
            # IRIREF only when it looks like one; otherwise '<' comparison.
            end = _find_iri_end(text, i)
            if end is not None:
                tokens.append(Token("IRIREF", text[i + 1 : end], start, line))
                i = end + 1
                continue
            if text.startswith("<=", i):
                tokens.append(Token("PUNCT", "<=", start, line))
                i += 2
            else:
                tokens.append(Token("PUNCT", "<", start, line))
                i += 1
            continue
        if ch in "?$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                if ch == "?":
                    # a bare '?' is the zero-or-one property-path modifier
                    tokens.append(Token("PUNCT", "?", start, line))
                    i += 1
                    continue
                raise SparqlParseError("empty variable name", start, line)
            tokens.append(Token("VAR", text[i + 1 : j], start, line))
            i = j
            continue
        if ch in "\"'":
            value, i = _read_string(text, i, line)
            tokens.append(Token("STRING", value, start, line))
            continue
        two = text[i : i + 2]
        if two in _PUNCT_2:
            tokens.append(Token("PUNCT", two, start, line))
            i += 2
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot and j + 1 < n and text[j + 1].isdigit())):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], start, line))
            i = j
            continue
        if ch in _PUNCT_1:
            tokens.append(Token("PUNCT", ch, start, line))
            i += 1
            continue
        if ch == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "-"):
                j += 1
            if j == i + 1:
                raise SparqlParseError("empty language tag", start, line)
            tokens.append(Token("LANGTAG", text[i + 1 : j], start, line))
            i = j
            continue
        if ch == "_" and text.startswith("_:", i):
            j = i + 2
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            tokens.append(Token("BNODE", text[i + 2 : j], start, line))
            i = j
            continue
        if ch.isalpha():
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_-."):
                j += 1
            # back off trailing dots (statement terminators)
            while j > i and text[j - 1] == ".":
                j -= 1
            word = text[i:j]
            if j < n and text[j] == ":":
                # prefixed name: prefix ':' local?
                k = j + 1
                while k < n and (text[k].isalnum() or text[k] in "_-."):
                    k += 1
                while k > j + 1 and text[k - 1] == ".":
                    k -= 1
                tokens.append(Token("PNAME", text[i:k], start, line))
                i = k
                continue
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start, line))
            else:
                tokens.append(Token("NAME", word, start, line))
            i = j
            continue
        if ch == ":":
            # default-prefix name  :local
            k = i + 1
            while k < n and (text[k].isalnum() or text[k] in "_-."):
                k += 1
            while k > i + 1 and text[k - 1] == ".":
                k -= 1
            tokens.append(Token("PNAME", text[i:k], start, line))
            i = k
            continue
        raise SparqlParseError(f"unexpected character {ch!r}", start, line)
    tokens.append(Token("EOF", "", n, line))
    return tokens


def _find_iri_end(text: str, i: int):
    """Return the index of the closing '>' if text[i:] starts an IRIREF."""
    j = i + 1
    n = len(text)
    while j < n:
        ch = text[j]
        if ch == ">":
            return j if j > i + 1 else None  # '<>' is never an IRIREF
        if ch.isspace() or ch in "<\"{}|^`":
            return None
        j += 1
    return None


def _read_string(text: str, i: int, line: int):
    quote = text[i]
    j = i + 1
    n = len(text)
    out = []
    while j < n:
        ch = text[j]
        if ch == "\\":
            if j + 1 >= n:
                raise SparqlParseError("dangling backslash in string", i, line)
            esc = text[j + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'"}
            if esc in mapping:
                out.append(mapping[esc])
                j += 2
                continue
            if esc == "u":
                out.append(chr(int(text[j + 2 : j + 6], 16)))
                j += 6
                continue
            raise SparqlParseError(f"unknown escape \\{esc}", i, line)
        if ch == quote:
            return "".join(out), j + 1
        if ch == "\n":
            raise SparqlParseError("newline in string literal", i, line)
        out.append(ch)
        j += 1
    raise SparqlParseError("unterminated string literal", i, line)
